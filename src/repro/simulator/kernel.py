"""Vectorised batch routing kernel behind a scalar-equivalent boundary.

:class:`BatchKernel` advances *all* in-flight messages one generation of
hops at a time over the struct-of-arrays
:class:`~repro.simulator.message.MessageBatch`.  Each generation splits
the cohort (the messages whose ready time equals the current simulated
time) into two lanes:

* the **fast lane** — messages whose next step is provably a clean
  advance or a clean delivery.  Eligibility is decided by pure numpy mask
  algebra over precomputed lookups: the scheme's dense next-hop matrix
  (:meth:`~repro.graphs.context.GraphContext.next_hop_matrix`), the
  failure masks (:func:`~repro.simulator.chaos.failure_masks`), the live
  adjacency under churn (:func:`~repro.simulator.churn.adjacency_mask`)
  and overlay masks for corrupted/quarantined/healed/updated tables.
  Fast rows gather their next hop from the matrix and scatter it back in
  one vector operation — no Python per message.
* the **slow lane** — everything else: traced messages (span emission),
  arrivals needing promotion, anything adjacent to a failure, overlay or
  churn boundary, stateful headers, hop-limit and loop candidates.  Slow
  rows replay the *exact* scalar step of
  :class:`~repro.simulator.network.EventDrivenSimulator` (same check
  order, same :meth:`~repro.simulator.network.Network._choose_hop`, same
  drop details, spans and counters), in ascending row order.

Because fast-lane eligibility is deliberately conservative — a row is
fast only when no shared state it touches can change this generation —
``batch=True`` and ``batch=False`` (every row through the slow lane)
produce **bit-identical** :class:`~repro.simulator.message.DeliveryRecord`
streams.  That equivalence is the batch boundary's contract, enforced by
a hypothesis property over every registered scheme with chaos, churn and
corruption enabled.

Relation to the event engine: the kernel is the engine restricted to
``link_latency=1.0``, ``node_service_time=0``, unbounded queues and
instantaneous churn installs (``churn_repair_rate`` has no batched
counterpart).  One deliberate divergence: retry backoff jitter draws from
a *per-message* :class:`random.Random` seeded as
``retry_seed * 1_000_003 + msg_id`` (the engine shares one stream in
completion order, which has no stable batched analogue), so engine and
kernel runs only match bit-for-bit when retries are disabled.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core import RoutingScheme
from repro.core.full_information import FullInformationFunction
from repro.core.repair import RepairPlan, plan_repair
from repro.errors import IntegrityError, RoutingError
from repro.observability.registry import get_registry
from repro.observability.tracer import Tracer, link_subject, node_subject
from repro.simulator.chaos import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    failure_masks,
)
from repro.simulator.churn import (
    ChurnSchedule,
    TopologyMutation,
    adjacency_mask,
)
from repro.simulator.message import (
    DeliveryRecord,
    DropReason,
    Message,
    MessageBatch,
)
from repro.simulator.network import (
    _RETRYABLE,
    Network,
    _live_tracer,
    _mutation_subject,
)
from repro.simulator.recovery import RetryPolicy

__all__ = ["BatchKernel", "run_batch"]

_HOP_LATENCY = 1.0


@dataclass(frozen=True)
class _RepairTick:
    """Internal event: plan and apply the repair for one churn generation."""

    generation: int


_Event = Union[FaultEvent, TopologyMutation, _RepairTick]
_EventEntry = Tuple[float, int, _Event]


class BatchKernel:
    """Generation-stepped batch execution of one routing scheme.

    Accepts the same fault/churn/retry configuration as the event engine
    (minus service times, queue capacities and rate-staggered installs);
    :meth:`inject` schedules messages and :meth:`run` drains them,
    returning one record per message **in injection order** (the batch's
    row order — stable across worker counts and lane splits, unlike the
    engine's completion order).

    ``batch=False`` routes every row through the scalar slow lane — the
    reference stream the vectorised mode must reproduce bit-for-bit.
    """

    def __init__(
        self,
        scheme: Optional[RoutingScheme] = None,
        *,
        network: Optional[Network] = None,
        failed_links: Iterable[Tuple[int, int]] = (),
        failed_nodes: Iterable[int] = (),
        fault_schedule: Optional[FaultSchedule] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_seed: int = 0,
        tracer: Optional[Tracer] = None,
        repair_delay: Optional[float] = None,
        churn_schedule: Optional[ChurnSchedule] = None,
        churn_repair_delay: float = 5.0,
        incremental_repair: bool = True,
        batch: bool = True,
    ) -> None:
        if network is not None:
            self._network = network
        elif scheme is not None:
            self._network = Network(scheme, failed_links, failed_nodes)
        else:
            raise RoutingError("BatchKernel needs a scheme or a network")
        if repair_delay is not None and repair_delay <= 0:
            raise RoutingError(
                f"repair delay must be positive, got {repair_delay}"
            )
        if churn_repair_delay <= 0:
            raise RoutingError(
                f"churn repair delay must be positive, got {churn_repair_delay}"
            )
        if (
            churn_schedule is not None
            and self._network.scheme.address_of(1) != 1
        ):
            raise RoutingError(
                "live topology churn requires a plain-label scheme "
                "(address_of(u) == u)"
            )
        self._batch = batch
        self._schedule = fault_schedule
        self._retry = retry_policy
        self._retry_seed = retry_seed
        self._retry_rngs: Dict[int, random.Random] = {}
        self._repair_delay = repair_delay
        self._tracer = _live_tracer(tracer)
        self._pending: List[Tuple[int, int, int, float, bool]] = []
        self._events: List[_EventEntry] = []
        self._sequence = itertools.count()
        self._control_events = 0
        self._limit = 0
        self._corrupted_at: Dict[int, float] = {}
        self._reacted: Set[int] = set()
        self._hop_sets: Dict[Tuple[int, int], Set[Tuple[int, Any]]] = {}
        self._addresses: Dict[int, Any] = {}
        self._forward_counts: Dict[int, int] = {}
        # Live topology churn state (instant installs: no staggered plan).
        self._churn = churn_schedule
        self._churn_delay = churn_repair_delay
        self._incremental = incremental_repair
        self._base_scheme = self._network.scheme
        self._generation = 0
        self._pending_mutations: List[TopologyMutation] = []
        self._stale_since: Optional[float] = None
        self._convergence_times: List[float] = []
        self._churn_stats: Dict[str, int] = {
            "mutations": 0,
            "repairs": 0,
            "tables_rebuilt": 0,
            "tables_reused": 0,
            "bits_rewritten": 0,
            "bits_reused": 0,
        }
        self._corrupt_spans: Dict[int, int] = {}
        self._mutate_span: Optional[int] = None
        self._episode_root_span: Optional[int] = None
        # Vectorised state caches, keyed on Network.state_epoch.
        self._mask_epoch = -1
        self._mask_scheme: Optional[RoutingScheme] = None
        self._matrix: Optional[np.ndarray] = None
        self._scheme_adj: Optional[np.ndarray] = None
        self._fa_nodes: Optional[np.ndarray] = None
        self._fa_any = False
        self._fa_guard = False
        self._link_down: Optional[np.ndarray] = None
        self._node_down: Optional[np.ndarray] = None
        self._quar_like: Optional[np.ndarray] = None
        self._override: Optional[np.ndarray] = None
        self._live_adj: Optional[np.ndarray] = None
        self._node_clear: Optional[np.ndarray] = None
        self._all_clear = False
        self._matrix_complete = False
        self._fwd_vec: Optional[np.ndarray] = None
        self._fwd_pending: List[np.ndarray] = []
        # Per-row kernel bookkeeping (sized at run()).
        self._has_state = np.zeros(0, dtype=bool)
        self.batch: Optional[MessageBatch] = None

    # -- public surface -------------------------------------------------------

    @property
    def network(self) -> Network:
        """The underlying failure-state holder (live during a run)."""
        return self._network

    @property
    def forward_counts(self) -> Dict[int, int]:
        """Messages forwarded per node in the last :meth:`run`."""
        if self._fwd_pending:
            # The quiescent drain defers its (0-based) hop sources here;
            # one bincount on first read replaces a per-step accumulate.
            vec = self._fwd_vec
            if vec is None:
                n = self._network.scheme.graph.n
                vec = self._fwd_vec = np.zeros(n + 1, dtype=np.int64)
            hop0 = np.concatenate(self._fwd_pending)
            self._fwd_pending = []
            vec[1:] += np.bincount(hop0, minlength=vec.size - 1)
        counts = dict(self._forward_counts)
        if self._fwd_vec is not None:
            for node, count in enumerate(self._fwd_vec.tolist()):
                if count:
                    counts[node] = counts.get(node, 0) + count
        return counts

    def churn_summary(self) -> Dict[str, object]:
        """Episode accounting mirroring the event engine's summary."""
        stats = self._churn_stats
        return {
            "mutations": stats["mutations"],
            "repairs": stats["repairs"],
            "tables_rebuilt": stats["tables_rebuilt"],
            "tables_reused": stats["tables_reused"],
            "bits_rewritten": stats["bits_rewritten"],
            "bits_reused": stats["bits_reused"],
            "bits_full": stats["bits_rewritten"] + stats["bits_reused"],
            "convergence_times": list(self._convergence_times),
            "converged": self._stale_since is None,
        }

    def inject(self, source: int, destination: int, at_time: float = 0.0) -> None:
        """Schedule one message (call before :meth:`run`)."""
        msg_id = next(self._network._counter)
        traced = False
        tracer = self._tracer
        if tracer is not None:
            if tracer.wants(msg_id):
                tracer.inject(msg_id, source, destination, time=at_time)
                traced = True
        self._pending.append((msg_id, source, destination, at_time, traced))

    def run(self) -> List[DeliveryRecord]:
        """Drain every injected message; one record per row, row order."""
        return self.drain().records()

    def drain(self) -> MessageBatch:
        """Route every injected message, leaving outcomes in SoA form.

        Returns the finished :class:`MessageBatch` with every row
        inactive.  :meth:`run` is this plus the per-row
        ``DeliveryRecord`` materialisation; consumers that aggregate
        straight from the arrays (the throughput bench's batched lane)
        can stay on the vector side of the boundary.
        """
        nw = self._network
        self._limit = nw.scheme.hop_limit()
        self._hop_sets = {}
        self._retry_rngs = {}
        self._forward_counts = {}
        self._fwd_vec = None
        self._fwd_pending = []
        msg_ids = [p[0] for p in self._pending]
        sources = [p[1] for p in self._pending]
        destinations = [p[2] for p in self._pending]
        times = [p[3] for p in self._pending]
        batch = MessageBatch(msg_ids, sources, destinations, times, self._limit)
        for i, pending in enumerate(self._pending):
            batch.traced[i] = pending[4]
        self._pending = []
        self._has_state = np.zeros(batch.size, dtype=bool)
        self.batch = batch
        if self._schedule is not None:
            for event in self._schedule:
                heapq.heappush(
                    self._events,
                    (event.time, next(self._sequence), event),
                )
        if self._churn is not None:
            for mutation in self._churn:
                self._push_control(mutation, mutation.time)
        while True:
            if bool(batch.active.any()):
                now = float(batch.ready[batch.active].min())
                while self._events and self._events[0][0] <= now:
                    time, _, payload = heapq.heappop(self._events)
                    self._dispatch_event(payload, time)
                # The retry RNG is seeded from retry_seed and msg_id only;
                # the simulated clock never feeds it.
                self._step_cohort(batch, now)  # repro-lint: disable=R010
            elif self._control_events:
                if not self._events:  # pragma: no cover - defensive
                    break
                time, _, payload = heapq.heappop(self._events)
                self._dispatch_event(payload, time)
            else:
                break
        self._events = []
        self._control_events = 0
        return batch

    # -- event plumbing -------------------------------------------------------

    def _push_control(self, payload: _Event, at_time: float) -> None:
        """Queue a churn control event; keeps the drain loop alive."""
        heapq.heappush(
            self._events, (at_time, next(self._sequence), payload)
        )
        self._control_events += 1

    def _dispatch_event(self, payload: _Event, now: float) -> None:
        if isinstance(payload, FaultEvent):
            self._apply_timed_fault(payload, now)
        else:
            self._control_events -= 1
            if isinstance(payload, TopologyMutation):
                self._apply_mutation_event(payload, now)
            else:
                self._start_repair(payload, now)

    def _apply_timed_fault(self, event: FaultEvent, now: float) -> None:
        """Mirror of the engine's fault application and lifecycle spans.

        The kernel's own network is untraced, so corruption spans are
        emitted here with simulated timestamps; when the kernel adopts an
        externally traced network (:meth:`Network.route_batch`) span
        emission stays with the network and is skipped here.
        """
        tracer = self._tracer
        network_traced = self._network._tracer is not None
        if event.kind is FaultKind.TABLE_CORRUPT:
            node = event.subject[0]
            self._network.apply_fault(event)
            self._corrupted_at[node] = now
            self._reacted.discard(node)
            if tracer is not None:
                if not network_traced:
                    detail = (
                        event.mutation.describe()
                        if event.mutation is not None
                        else None
                    )
                    self._corrupt_spans[node] = tracer.corrupt(
                        node=node, time=now, detail=detail
                    )
            return
        if event.kind is FaultKind.TABLE_REPAIR:
            node = event.subject[0]
            healed = self._network.heal_table(node)
            self._corrupted_at.pop(node, None)
            self._reacted.discard(node)
            if healed and tracer is not None:
                if not network_traced:
                    tracer.heal(
                        node=node, time=now,
                        cause=self._corrupt_spans.pop(node, None),
                    )
            return
        if tracer is not None:
            subject = (
                link_subject(*event.subject)
                if len(event.subject) == 2
                else node_subject(event.subject[0])
            )
            tracer.fault(kind=event.kind.value, subject=subject, time=now)
        self._network.apply_fault(event)

    def _on_detection(self, node: int, now: float) -> None:
        """React once per corruption episode, as the engine does."""
        if node in self._reacted:
            return
        self._reacted.add(node)
        tracer = self._tracer
        if tracer is not None:
            if self._network._tracer is None:
                tracer.quarantine(
                    node=node, time=now, cause=self._corrupt_spans.get(node)
                )
        corrupted_since = self._corrupted_at.pop(node, None)
        if corrupted_since is not None:
            get_registry().histogram(
                "repro_corruption_detection_latency"
            ).observe(now - corrupted_since)
        if self._repair_delay is not None:
            heal_time = now + self._repair_delay
            heapq.heappush(
                self._events,
                (
                    heal_time,
                    next(self._sequence),
                    FaultEvent.table_repair(heal_time, node),
                ),
            )

    # -- live topology churn (instant installs) -------------------------------

    def _apply_mutation_event(
        self, mutation: TopologyMutation, now: float
    ) -> None:
        self._network.apply_mutation(mutation)
        self._pending_mutations.append(mutation)
        self._churn_stats["mutations"] += 1
        if self._stale_since is None:
            self._stale_since = now
        self._generation += 1
        tracer = self._tracer
        if tracer is not None:
            if self._network._tracer is None:
                self._mutate_span = tracer.mutate(
                    kind=mutation.kind.value,
                    subject=_mutation_subject(mutation),
                    time=now,
                    detail=mutation.describe(),
                )
            else:
                # Adopted traced network: apply_mutation already emitted
                # the span; reuse it as the episode cause.
                self._mutate_span = self._network._mutate_span
            if self._episode_root_span is None:
                self._episode_root_span = self._mutate_span
        self._push_control(
            _RepairTick(self._generation), now + self._churn_delay
        )

    def _start_repair(self, tick: _RepairTick, now: float) -> None:
        """Plan, install and converge in one step (instant installs)."""
        if tick.generation != self._generation:
            return  # superseded by a newer mutation
        plan = plan_repair(
            self._base_scheme,
            self._network.live_graph,
            full=not self._incremental,
        )
        stats = self._churn_stats
        stats["repairs"] += 1
        stats["tables_rebuilt"] += len(plan.dirty)
        stats["tables_reused"] += len(plan.clean)
        stats["bits_rewritten"] += plan.bits_rewritten
        stats["bits_reused"] += plan.bits_reused
        get_registry().counter("repro_churn_repairs_total").inc()
        for node, _bits in plan.table_bits:
            self._install_node(plan, node, now)
        self._finalize_convergence(plan, now)

    def _install_node(self, plan: RepairPlan, node: int, now: float) -> None:
        scheme = plan.new_scheme
        bits = scheme.ctx.pristine_bits(scheme, node)
        self._network.install_table(node, scheme.decode_function(node, bits))
        tracer = self._tracer
        if tracer is not None:
            tracer.repair(
                node=node, time=now,
                detail=f"{len(bits)} bits reinstalled",
                cause=self._mutate_span,
            )

    def _finalize_convergence(self, plan: RepairPlan, now: float) -> None:
        self._network.install_scheme(plan.new_scheme)
        self._base_scheme = plan.new_scheme
        histogram = get_registry().histogram("repro_churn_convergence_time")
        for mutation in self._pending_mutations:
            histogram.observe(now - mutation.time)
        duration = (
            now - self._stale_since if self._stale_since is not None else 0.0
        )
        self._convergence_times.append(duration)
        tracer = self._tracer
        if tracer is not None:
            tracer.converged(
                time=now, duration=duration, detail=plan.describe(),
                cause=self._episode_root_span,
            )
            self._episode_root_span = None
        self._pending_mutations = []
        self._stale_since = None

    # -- vectorised masks -----------------------------------------------------

    def _refresh_state(self) -> None:
        """Rebuild the cached masks when the network's state epoch moved."""
        nw = self._network
        scheme = nw.scheme
        if nw.state_epoch == self._mask_epoch and scheme is self._mask_scheme:
            return
        n = scheme.graph.n
        if scheme is not self._mask_scheme:
            self._mask_scheme = scheme
            self._matrix = scheme.ctx.next_hop_matrix(scheme)
            if self._matrix is not None:
                # Complete off the diagonal means the quiescent drain can
                # skip the per-step no-route check entirely.
                off_diag = self._matrix.copy()
                np.fill_diagonal(off_diag, 1)
                self._matrix_complete = bool((off_diag >= 1).all())
            else:
                self._matrix_complete = False
            fa = np.zeros(n + 1, dtype=bool)
            if self._matrix is not None:
                for u in scheme.graph.nodes:
                    if isinstance(scheme.function(u), FullInformationFunction):
                        fa[u] = True
            self._fa_nodes = fa
            self._fa_any = bool(fa.any())
            self._scheme_adj = adjacency_mask(scheme.graph)
        self._link_down, self._node_down = failure_masks(
            n, nw._failed, nw._failed_nodes
        )
        quar_like = np.zeros(n + 1, dtype=bool)
        for u in nw._quarantined:
            quar_like[u] = True
        override = quar_like.copy()
        # Corrupted tables count as quarantine-like: a mid-cohort detection
        # can only quarantine an already-corrupted node, so excluding them
        # up front keeps fast advances independent of slow-lane ordering.
        for u in nw._corrupt_tables:
            quar_like[u] = True
            override[u] = True
        for u in nw._healed_functions:
            override[u] = True
        for u in nw._updated_functions:
            override[u] = True
        self._quar_like = quar_like
        self._override = override
        if nw.churned:
            self._live_adj = adjacency_mask(nw.live_graph)
        self._all_clear = not (
            nw._failed
            or nw._failed_nodes
            or nw._quarantined
            or nw._corrupt_tables
            or nw._healed_functions
            or nw._updated_functions
            or nw.churned
        )
        blocked_now = bool(
            nw._failed or nw._failed_nodes or nw._quarantined or nw._churned
        )
        self._fa_guard = self._fa_any and (
            blocked_now or bool(nw._corrupt_tables)
        )
        if self._fa_guard:
            assert self._scheme_adj is not None
            bad = self._node_down | quar_like
            adjacency = self._scheme_adj
            if nw.churned and self._live_adj is not None:
                adjacency = adjacency | self._live_adj
                blocked_edge = adjacency & (
                    self._link_down | bad[None, :] | ~self._live_adj
                )
            else:
                blocked_edge = adjacency & (self._link_down | bad[None, :])
            self._node_clear = ~blocked_edge.any(axis=1)
        self._mask_epoch = nw.state_epoch

    # -- cohort stepping ------------------------------------------------------

    def _step_cohort(self, batch: MessageBatch, now: float) -> None:
        rows = np.nonzero(batch.active & (batch.ready == now))[0]
        if rows.size == 0:  # pragma: no cover - defensive
            return
        if not self._batch:
            for i in rows:
                self._step_one(batch, int(i), now)
            return
        self._refresh_state()
        if (
            self._all_clear
            and self._tracer is None
            and self._churn is None
            and not self._events
            and self._matrix is not None
        ):
            self._drain_quiescent(batch, rows, now)
            return
        node_down = self._node_down
        quar_like = self._quar_like
        override = self._override
        link_down = self._link_down
        assert node_down is not None and quar_like is not None
        assert override is not None and link_down is not None
        cur = batch.current[rows]
        dst = batch.destination[rows]
        arrived = cur == dst
        traced = batch.traced[rows]
        deliver = arrived & ~node_down[dst]
        if self._tracer is not None:
            # Traced and stale deliveries emit spans (or a promotion):
            # exact scalar path.
            deliver &= ~traced & ~batch.stale[rows]
        fast = np.zeros(rows.size, dtype=bool)
        nxt = np.ones(rows.size, dtype=np.int32)
        matrix = self._matrix
        if matrix is not None:
            fast = ~arrived
            fast &= ~traced
            fast &= ~self._has_state[rows]
            fast &= (batch.plen[rows] - 1) < self._limit
            fast &= ~override[cur]
            fast &= ~node_down[cur]
            nxt = matrix[cur - 1, dst - 1]
            fast &= nxt >= 1
            nxt = np.where(fast, nxt, 1).astype(np.int32)
            fast &= ~quar_like[nxt]
            fast &= ~node_down[nxt]
            fast &= ~link_down[cur, nxt]
            if self._network.churned and self._live_adj is not None:
                fast &= self._live_adj[cur, nxt]
            if self._fa_guard:
                assert self._fa_nodes is not None
                assert self._node_clear is not None
                fast &= ~self._fa_nodes[cur] | self._node_clear[cur]
            if self._churn is not None and bool(fast.any()):
                # Routing-loop candidates drop through the scalar path.
                span = int(batch.plen[rows].max())
                prefix = batch.path[rows, :span]
                cols = np.arange(span)[None, :]
                revisit = (prefix == cur[:, None]) & (
                    cols < (batch.plen[rows] - 1)[:, None]
                )
                fast &= ~revisit.any(axis=1)
        deliver_rows = rows[deliver]
        fast_rows = rows[fast]
        slow = ~deliver & ~fast
        if deliver_rows.size:
            batch.delivered[deliver_rows] = True
            batch.completed[deliver_rows] = now
            batch.active[deliver_rows] = False
        if fast_rows.size:
            self._advance_fast(batch, fast_rows, nxt[fast], now)
        for i in rows[slow]:
            self._step_one(batch, int(i), now)

    def _drain_quiescent(
        self, batch: MessageBatch, rows: np.ndarray, now: float
    ) -> None:
        """Advance lockstep cohorts with pure gather/scatter steps.

        Entered only when nothing outside a row can perturb it: no
        failures, overlays or churn (``_all_clear``), no tracer, and no
        queued events — so rows are mutually independent and the whole
        cohort can be walked to completion without returning to the
        event loop.  Rows that arrive deliver unconditionally; rows that
        carry header state, hit the hop limit or lack a matrix entry
        leave the lockstep set through the exact scalar step (and, after
        a retry backoff, re-enter via the outer loop at their own ready
        time).  Each surviving step is one arrival compare plus one
        matrix gather — the untraced hot path the throughput bench
        measures.
        """
        matrix = self._matrix
        assert matrix is not None
        nw = self._network
        limit = self._limit
        idx = rows
        # Row position is kept in compacted local copies; the shared
        # arrays are scattered to only when a row delivers, leaves for
        # the scalar lane, or the drain hands control back.
        cur0 = batch.current[idx] - 1
        dst0 = batch.destination[idx] - 1
        plen = batch.plen[idx]
        state_any = bool(self._has_state[idx].any())
        # Steps every row can take before any could trip the hop limit
        # (hops = plen - 1 grows by one per step); until then the limit
        # check is provably redundant.
        safe_steps = limit - int(plen.max())
        needed = int(plen.max()) + 1
        complete = self._matrix_complete
        # Deliveries and forward counts are deferred and flushed in one
        # shot after the loop; nothing inside the drain reads them back.
        done_idx: List[np.ndarray] = []
        done_plen: List[np.ndarray] = []
        done_time: List[float] = []
        while True:
            arrived = cur0 == dst0
            if arrived.any():
                done_idx.append(idx[arrived])
                done_plen.append(plen[arrived])
                done_time.append(now)
                keep = ~arrived
                idx = idx[keep]
                if not idx.size:
                    break
                cur0 = cur0[keep]
                dst0 = dst0[keep]
                plen = plen[keep]
            nxt = matrix[cur0, dst0]
            if state_any or safe_steps <= 0 or not complete:
                ok = nxt >= 1
                if state_any:
                    ok &= ~self._has_state[idx]
                if safe_steps <= 0:
                    ok &= (plen - 1) < limit
                if not ok.all():
                    leave = ~ok
                    out = idx[leave]
                    batch.current[out] = cur0[leave] + 1
                    batch.plen[out] = plen[leave]
                    batch.ready[out] = now
                    for i in out:
                        self._step_one(batch, int(i), now)
                    idx = idx[ok]
                    cur0 = cur0[ok]
                    dst0 = dst0[ok]
                    plen = plen[ok]
                    nxt = nxt[ok]
                    if nw.state_epoch != self._mask_epoch:
                        # A slow row touched shared network state; hand
                        # the rest back to the mask-checked path.
                        batch.current[idx] = cur0 + 1
                        batch.plen[idx] = plen
                        batch.ready[idx] = now
                        break
                    if not idx.size:
                        break
                    if state_any:
                        state_any = bool(self._has_state[idx].any())
            self._fwd_pending.append(cur0)
            batch.ensure_path_capacity(needed)
            batch.path[idx, plen] = nxt
            plen = plen + 1
            cur0 = nxt - 1
            now += _HOP_LATENCY
            safe_steps -= 1
            needed += 1
        if done_idx:
            done = np.concatenate(done_idx)
            batch.delivered[done] = True
            batch.active[done] = False
            batch.current[done] = batch.destination[done]
            batch.plen[done] = np.concatenate(done_plen)
            times = np.repeat(
                np.asarray(done_time), [d.size for d in done_idx]
            )
            batch.completed[done] = times
            batch.ready[done] = times

    def _count_forwards(self, hop_from: np.ndarray) -> None:
        """Accumulate per-node forward counts without a Python loop."""
        vec = self._fwd_vec
        if vec is None:
            n = self._network.scheme.graph.n
            vec = self._fwd_vec = np.zeros(n + 1, dtype=np.int64)
        vec += np.bincount(hop_from, minlength=vec.size)

    def _advance_fast(
        self,
        batch: MessageBatch,
        fast_rows: np.ndarray,
        next_nodes: np.ndarray,
        now: float,
    ) -> None:
        """Scatter one clean hop for every fast-lane row."""
        self._count_forwards(batch.current[fast_rows])
        batch.ensure_path_capacity(int(batch.plen[fast_rows].max()) + 1)
        batch.path[fast_rows, batch.plen[fast_rows]] = next_nodes
        batch.plen[fast_rows] += 1
        batch.current[fast_rows] = next_nodes
        batch.ready[fast_rows] = now + _HOP_LATENCY
        if self._churn is not None and self._stale_since is not None:
            batch.stale[fast_rows] = True

    # -- scalar slow lane (exact engine step) ---------------------------------

    def _address_of(self, destination: int) -> Any:
        address = self._addresses.get(destination)
        if address is None:
            address = self._network.scheme.address_of(destination)
            self._addresses[destination] = address
        return address

    def _step_one(self, batch: MessageBatch, i: int, now: float) -> None:
        """One scalar step for row ``i`` — the engine's run-loop body."""
        nw = self._network
        current = int(batch.current[i])
        destination = int(batch.destination[i])
        if current == destination:
            if current in nw._failed_nodes:
                self._finish(
                    batch, i, now,
                    DropReason.ENDPOINT_DOWN,
                    f"destination {current} crashed before arrival",
                    subject=node_subject(current),
                )
            else:
                self._finish(batch, i, now, None)
            return
        if current in nw._failed_nodes:
            hops = int(batch.plen[i]) - 1
            reason = (
                DropReason.ENDPOINT_DOWN if hops == 0 else DropReason.NODE_DOWN
            )
            self._finish(
                batch, i, now, reason,
                f"node {current} holding the message is down",
                subject=node_subject(current),
            )
            return
        if current in nw._quarantined:
            self._finish(
                batch, i, now,
                DropReason.TABLE_CORRUPT,
                f"node {current} is quarantined with a corrupt table",
                subject=node_subject(current),
            )
            return
        if int(batch.plen[i]) - 1 >= self._limit:
            self._finish(
                batch, i, now,
                DropReason.HOP_LIMIT,
                f"hop limit {self._limit} exceeded",
            )
            return
        state = batch.state[i]
        if self._churn is not None:
            if self._stale_since is not None:
                batch.stale[i] = True
            if self._looped(batch, i, current, state):
                get_registry().counter("repro_routing_loops_total").inc()
                self._finish(
                    batch, i, now,
                    DropReason.ROUTING_LOOP,
                    f"revisited node {current} with identical header "
                    f"state during churn convergence",
                    subject=node_subject(current),
                )
                return
        message = Message(
            msg_id=int(batch.msg_id[i]),
            source=int(batch.source[i]),
            destination=destination,
            address=self._address_of(destination),
            state=state,
            attempt=int(batch.attempt[i]),
        )
        try:
            decision = nw._choose_hop(current, message)
        except IntegrityError as exc:
            self._on_detection(current, now)
            self._finish(
                batch, i, now,
                DropReason.TABLE_CORRUPT,
                str(exc),
                subject=node_subject(current),
            )
            return
        except RoutingError as exc:
            self._finish(batch, i, now, DropReason.NO_ROUTE, str(exc))
            return
        next_node = decision.next_node
        if next_node in nw._quarantined and next_node != destination:
            self._finish(
                batch, i, now,
                DropReason.TABLE_CORRUPT,
                f"next hop {next_node} is quarantined with a corrupt table",
                subject=node_subject(next_node),
            )
            return
        if (
            nw.churned
            and next_node != current
            and not nw.live_graph.has_edge(current, next_node)
        ):
            if nw.scheme.graph.has_edge(current, next_node):
                # Stale table forwarding over a mutated-away edge.
                self._finish(
                    batch, i, now,
                    DropReason.LINK_DOWN,
                    f"link {current}-{next_node} was removed by a "
                    f"topology mutation",
                    subject=link_subject(current, next_node),
                )
            else:
                self._finish(
                    batch, i, now,
                    DropReason.INVALID_FORWARD,
                    f"{current} forwarded to non-adjacent {next_node}",
                )
            return
        if frozenset((current, next_node)) in nw._failed:
            self._finish(
                batch, i, now,
                DropReason.LINK_DOWN,
                f"link {current}-{next_node} is down",
                subject=link_subject(current, next_node),
            )
            return
        if next_node in nw._failed_nodes:
            self._finish(
                batch, i, now,
                DropReason.NODE_DOWN,
                f"node {next_node} is down",
                subject=node_subject(next_node),
            )
            return
        self._forward_counts[current] = (
            self._forward_counts.get(current, 0) + 1
        )
        tracer = self._tracer
        if tracer is not None and bool(batch.traced[i]):
            tracer.hop(
                int(batch.msg_id[i]),
                node=current,
                next_node=next_node,
                hop=int(batch.plen[i]) - 1,
                time=now,
                duration=_HOP_LATENCY,
                attempt=int(batch.attempt[i]),
            )
        batch.state[i] = decision.state
        if decision.state is not None:
            self._has_state[i] = True
        batch.append_hop(i, next_node)
        batch.ready[i] = now + _HOP_LATENCY

    def _looped(
        self, batch: MessageBatch, i: int, current: int, state: Any
    ) -> bool:
        """The engine's per-attempt ``(node, state)`` revisit check.

        While every header state of the attempt has been ``None`` the
        engine's seen-set is exactly the previously visited nodes, so the
        path prefix answers membership without a side table.  Once a
        non-``None`` state appears the row is pinned to the slow lane and
        an explicit seen-set takes over, seeded from the (all-``None``)
        path prefix.
        """
        if not self._has_state[i]:
            plen = int(batch.plen[i])
            for j in range(plen - 1):
                if int(batch.path[i, j]) == current:
                    return True
            return False
        key = (int(batch.msg_id[i]), int(batch.attempt[i]))
        seen = self._hop_sets.get(key)
        if seen is None:
            seen = {
                (int(batch.path[i, j]), None)
                for j in range(int(batch.plen[i]) - 1)
            }
            self._hop_sets[key] = seen
        entry = (current, state)
        try:
            looped = entry in seen
            if not looped:
                seen.add(entry)
        except TypeError:
            # Unhashable header state: loop detection skipped; the hop
            # limit still bounds the walk.
            looped = False
        return looped

    def _finish(
        self,
        batch: MessageBatch,
        i: int,
        now: float,
        reason: Optional[DropReason],
        detail: Optional[str] = None,
        subject: Optional[Tuple[str, ...]] = None,
    ) -> None:
        """Record a final outcome or re-arm the row for a retry."""
        tracer = self._tracer
        msg_id = int(batch.msg_id[i])
        source = int(batch.source[i])
        destination = int(batch.destination[i])
        attempt = int(batch.attempt[i])
        traced = bool(batch.traced[i])
        stale = bool(batch.stale[i])
        hops = int(batch.plen[i]) - 1
        injected_at = float(batch.injected[i])
        if reason is None:
            if tracer is not None and (traced or stale):
                if not traced:
                    tracer.promote(msg_id, source, destination, injected_at)
                tracer.deliver(
                    msg_id,
                    node=destination,
                    time=now,
                    hop=hops,
                    attempt=attempt,
                    detail="stale" if stale else None,
                )
            batch.finish_delivered(i, now)
            return
        if (
            self._retry is not None
            and reason in _RETRYABLE
            and attempt < self._retry.max_retries
        ):
            rng = self._retry_rngs.get(msg_id)
            if rng is None:
                rng = random.Random(self._retry_seed * 1_000_003 + msg_id)
                self._retry_rngs[msg_id] = rng
            backoff = self._retry.delay(attempt, rng)
            if tracer is not None:
                if not traced:
                    tracer.promote(msg_id, source, destination, injected_at)
                tracer.retry(
                    msg_id,
                    source=source,
                    attempt=attempt + 1,
                    time=now,
                    reason=reason.name,
                    duration=backoff,
                )
            batch.reset_for_retry(i, now + backoff)
            self._has_state[i] = False
            if tracer is not None:
                # The engine's retry message defaults back to traced.
                batch.traced[i] = True
            return
        if tracer is not None:
            if not traced:
                tracer.promote(msg_id, source, destination, injected_at)
            tracer.drop(
                msg_id,
                node=int(batch.current[i]),
                reason=reason.name,
                time=now,
                detail=detail,
                subject=subject,
                attempt=attempt,
                hop=hops,
            )
        batch.finish_dropped(i, reason, detail, now)


def run_batch(
    scheme: RoutingScheme,
    pairs: Iterable[Tuple[int, int]],
    *,
    batch: bool = True,
    **kwargs: Any,
) -> List[DeliveryRecord]:
    """Route ``pairs`` through a fresh :class:`BatchKernel` at time 0.

    Convenience wrapper for the common all-at-once workload; keyword
    arguments pass through to the kernel constructor.
    """
    kernel = BatchKernel(scheme, batch=batch, **kwargs)
    for source, destination in pairs:
        kernel.inject(source, destination)
    return kernel.run()
