"""Aggregate metrics over simulated deliveries.

Besides the classic delivery/stretch statistics this module reports the
resilience quantities the chaos experiments sweep over: retry counts,
time-to-delivery including backoff, and the per-:class:`DropReason`
breakdown of everything that did not arrive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.graphs import LabeledGraph, get_context
from repro.observability.registry import get_registry
from repro.simulator.message import DeliveryRecord, DropReason

__all__ = [
    "RoutingMetrics",
    "cached_distance_matrix",
    "drop_breakdown",
    "retry_histogram",
    "summarize",
]


def cached_distance_matrix(graph: LabeledGraph) -> np.ndarray:
    """All-pairs distances of ``graph``, memoised in its shared context.

    Deprecated shim: the simulator's private LRU was unified into
    :class:`~repro.graphs.context.GraphContext`, so this now returns the
    *same* ndarray object the builders and the verifier use.  The legacy
    ``repro_distance_cache_total`` hit/miss counters are still published
    for dashboards; evictions happen at the context-store level and are
    counted as ``repro_graph_ctx_store_total{op="eviction"}``.
    """
    ctx = get_context(graph)
    op = "hit" if ctx.has_cached_distances else "miss"
    get_registry().counter("repro_distance_cache_total", op=op).inc()
    return ctx.distances()


@dataclass(frozen=True)
class RoutingMetrics:
    """Delivery, stretch and resilience statistics of one message batch."""

    messages: int
    delivered: int
    mean_hops: float
    mean_stretch: float
    max_stretch: float
    p95_stretch: float
    mean_latency: float
    drop_reasons: Dict[DropReason, int]
    total_retries: int = 0
    """Re-transmissions summed over all messages (delivered or not)."""
    mean_retries: float = 0.0
    """Mean re-transmissions per message."""
    mean_time_to_delivery: float = math.nan
    """Mean time of *delivered* messages from first injection to arrival,
    inclusive of retry backoff — computed from the records' own
    ``injected_at``/``completed_at`` timestamps.  For untimed walker runs
    (no timestamps) it falls back to ``mean_latency``, to which it is
    identical whenever no retries occurred."""
    stale_deliveries: int = 0
    """Delivered messages that made at least one hop decision on tables
    not yet repaired after a topology mutation (correct destination,
    possibly detoured route) — the churn convergence layer's staleness
    count."""

    @property
    def delivered_fraction(self) -> float:
        """Share of messages that reached their destination."""
        if self.messages == 0:
            return 0.0
        return self.delivered / self.messages

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (NaN mapped to ``None``, reasons by name)."""

        def _num(value: float) -> Optional[float]:
            return None if isinstance(value, float) and math.isnan(value) else value

        return {
            "messages": self.messages,
            "delivered": self.delivered,
            "delivered_fraction": self.delivered_fraction,
            "mean_hops": _num(self.mean_hops),
            "mean_stretch": _num(self.mean_stretch),
            "max_stretch": _num(self.max_stretch),
            "p95_stretch": _num(self.p95_stretch),
            "mean_latency": _num(self.mean_latency),
            "mean_time_to_delivery": _num(self.mean_time_to_delivery),
            "total_retries": self.total_retries,
            "mean_retries": self.mean_retries,
            "stale_deliveries": self.stale_deliveries,
            "drop_breakdown": {
                reason.name: count
                for reason, count in sorted(self.drop_reasons.items())
            },
        }


def drop_breakdown(
    records: Sequence[DeliveryRecord],
) -> Dict[DropReason, int]:
    """Count undelivered records per structured :class:`DropReason`."""
    drops: Dict[DropReason, int] = {}
    for record in records:
        if record.delivered:
            continue
        reason = record.drop_reason or DropReason.NO_ROUTE
        drops[reason] = drops.get(reason, 0) + 1
    return drops


def retry_histogram(
    records: Sequence[DeliveryRecord],
) -> Dict[int, int]:
    """How many messages needed 0, 1, 2, ... re-transmissions."""
    hist: Dict[int, int] = {}
    for record in records:
        hist[record.retries] = hist.get(record.retries, 0) + 1
    return hist


def summarize(
    records: Sequence[DeliveryRecord], graph: LabeledGraph
) -> RoutingMetrics:
    """Compute metrics; stretch is hops over graph distance per pair."""
    dist = cached_distance_matrix(graph)
    stretches = []
    hops = []
    latencies = []
    times_to_delivery = []
    delivered = 0
    total_retries = 0
    stale_deliveries = 0
    for record in records:
        total_retries += record.retries
        if not record.delivered:
            continue
        delivered += 1
        if record.stale:
            stale_deliveries += 1
        hops.append(record.hops)
        latencies.append(record.latency)
        if not (
            math.isnan(record.injected_at) or math.isnan(record.completed_at)
        ):
            times_to_delivery.append(record.completed_at - record.injected_at)
        shortest = int(dist[record.source - 1, record.destination - 1])
        stretches.append(record.hops / shortest if shortest > 0 else 1.0)
    mean_latency = float(np.mean(latencies)) if latencies else math.nan
    # Timestamped (event-driven) records measure injection-to-arrival
    # directly; untimed walker records fall back to the latency alias.
    mean_ttd = (
        float(np.mean(times_to_delivery)) if times_to_delivery else mean_latency
    )
    registry = get_registry()
    registry.counter("repro_messages_routed_total").inc(len(records))
    registry.counter("repro_messages_delivered_total").inc(delivered)
    registry.counter("repro_retries_total").inc(total_retries)
    if stale_deliveries:
        registry.counter("repro_stale_deliveries_total").inc(stale_deliveries)
    breakdown = drop_breakdown(records)
    for reason, count in breakdown.items():
        registry.counter("repro_drops_total", reason=reason.name).inc(count)
    return RoutingMetrics(
        messages=len(records),
        delivered=delivered,
        mean_hops=float(np.mean(hops)) if hops else math.nan,
        mean_stretch=float(np.mean(stretches)) if stretches else math.nan,
        max_stretch=float(np.max(stretches)) if stretches else math.nan,
        p95_stretch=(
            float(np.percentile(stretches, 95)) if stretches else math.nan
        ),
        mean_latency=mean_latency,
        drop_reasons=breakdown,
        total_retries=total_retries,
        mean_retries=total_retries / len(records) if records else 0.0,
        mean_time_to_delivery=mean_ttd,
        stale_deliveries=stale_deliveries,
    )
