"""Aggregate metrics over simulated deliveries."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.graphs import LabeledGraph, distance_matrix
from repro.simulator.message import DeliveryRecord

__all__ = ["RoutingMetrics", "summarize"]


@dataclass(frozen=True)
class RoutingMetrics:
    """Delivery and stretch statistics of one batch of messages."""

    messages: int
    delivered: int
    mean_hops: float
    mean_stretch: float
    max_stretch: float
    p95_stretch: float
    mean_latency: float
    drop_reasons: Dict[str, int]

    @property
    def delivered_fraction(self) -> float:
        """Share of messages that reached their destination."""
        if self.messages == 0:
            return 0.0
        return self.delivered / self.messages


def summarize(
    records: Sequence[DeliveryRecord], graph: LabeledGraph
) -> RoutingMetrics:
    """Compute metrics; stretch is hops over graph distance per pair."""
    dist = distance_matrix(graph)
    stretches = []
    hops = []
    latencies = []
    drops: Dict[str, int] = {}
    delivered = 0
    for record in records:
        if not record.delivered:
            reason = record.drop_reason or "unknown"
            drops[reason] = drops.get(reason, 0) + 1
            continue
        delivered += 1
        hops.append(record.hops)
        latencies.append(record.latency)
        shortest = int(dist[record.source - 1, record.destination - 1])
        stretches.append(record.hops / shortest if shortest > 0 else 1.0)
    return RoutingMetrics(
        messages=len(records),
        delivered=delivered,
        mean_hops=float(np.mean(hops)) if hops else math.nan,
        mean_stretch=float(np.mean(stretches)) if stretches else math.nan,
        max_stretch=float(np.max(stretches)) if stretches else math.nan,
        p95_stretch=(
            float(np.percentile(stretches, 95)) if stretches else math.nan
        ),
        mean_latency=float(np.mean(latencies)) if latencies else math.nan,
        drop_reasons=drops,
    )
