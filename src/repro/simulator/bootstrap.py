"""Control-plane bootstrap: distributing the routing tables themselves.

A "universal routing strategy ... will, for every network, generate a
routing scheme for that particular network" — and in a deployed system the
generated local functions still have to *reach* their nodes.  This module
simulates that dissemination: a coordinator node computes every serialised
local function (the same bits `encode_function` charges for) and ships each
to its owner along a BFS spanning tree with store-and-forward links of
finite rate.

The punchline is operational: table size is not only memory — it is boot
time and control-plane traffic.  Disseminating Theorem 1's Θ(n²) bits is
an order of magnitude faster than the full table's Θ(n² log n), and the
Theorem 4 hub scheme boots almost for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import GraphError, RoutingError
from repro.core.scheme import RoutingScheme

__all__ = ["BootstrapResult", "simulate_dissemination"]

_HEADER_BITS = 64  # destination id, length, checksum — a realistic envelope


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of disseminating one scheme's tables."""

    scheme: str
    root: int
    total_payload_bits: int
    """Sum of all serialised local functions (the scheme's routing bits)."""
    total_bit_hops: int
    """Σ payload × tree distance — the control-plane traffic volume."""
    makespan: float
    """Time until the last node has installed its function."""
    install_times: Dict[int, float]

    @property
    def mean_install_time(self) -> float:
        """Average time to install across nodes."""
        if not self.install_times:
            return 0.0
        return sum(self.install_times.values()) / len(self.install_times)


def simulate_dissemination(
    scheme: RoutingScheme,
    root: int = 1,
    link_rate_bits: float = 10_000.0,
    link_latency: float = 0.05,
) -> BootstrapResult:
    """Ship every node's serialised function from ``root`` over a BFS tree.

    Links are store-and-forward and FIFO: a link transmits one message at a
    time, taking ``latency + bits / rate``.  Payloads are injected at the
    root in ascending owner order; each follows the unique tree path to its
    owner.  Returns per-node install times and traffic totals.
    """
    if link_rate_bits <= 0:
        raise RoutingError(f"link rate must be positive, got {link_rate_bits}")
    graph = scheme.graph
    # The dissemination tree comes from the shared context (the verifier
    # and the builders have usually rooted the same BFS already).
    parent = scheme.ctx.bfs_tree(root)
    if len(parent) != graph.n:
        raise GraphError("dissemination requires a connected graph")

    def path_to(v: int) -> List[Tuple[int, int]]:
        hops = []
        node = v
        while node != root:
            hops.append((parent[node], node))
            node = parent[node]
        return list(reversed(hops))

    link_free: Dict[Tuple[int, int], float] = {}
    install_times: Dict[int, float] = {root: 0.0}
    total_payload = 0
    total_bit_hops = 0
    for v in graph.nodes:
        payload = len(scheme.encode_function(v)) + _HEADER_BITS
        total_payload += payload - _HEADER_BITS
        if v == root:
            continue
        clock = 0.0
        hops = path_to(v)
        total_bit_hops += (payload - _HEADER_BITS) * len(hops)
        for link in hops:
            start = max(clock, link_free.get(link, 0.0))
            # bits / (bits per time unit) = transmission time, not accounting.
            transmit = payload / link_rate_bits  # repro-lint: disable=R001
            finish = start + link_latency + transmit
            link_free[link] = finish
            clock = finish
        install_times[v] = clock
    return BootstrapResult(
        scheme=scheme.scheme_name,
        root=root,
        total_payload_bits=total_payload,
        total_bit_hops=total_bit_hops,
        makespan=max(install_times.values()),
        install_times=install_times,
    )
