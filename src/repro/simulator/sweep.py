"""Multiprocessing sweep driver sharding ``(graph, seed)`` kernel runs.

A sweep is a list of :class:`SweepTask` descriptions — frozen, picklable
bundles of primitives (scheme name, graph seed, workload seed, fault
variant knobs) from which a worker process can rebuild the entire run:
graph, scheme, schedule, workload and :class:`~repro.simulator.kernel.
BatchKernel`.  Nothing live crosses the process boundary, so results are
a pure function of the task description and :func:`run_sweep` returns the
same :class:`SweepResult` list for any worker count — a property the test
suite pins via the per-task record digest.

Variants mirror the CLI simulate commands: ``plain`` (static sampled
failures), ``chaos`` (renewal fault schedule), ``corruption`` (timed
table corruption with optional repair) and ``churn`` (random topology
mutations with incremental repair).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import build_scheme
from repro.errors import ReproError
from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.simulator.chaos import renewal_faults, table_corruption
from repro.simulator.failures import (
    sample_link_failures,
    sample_node_failures,
)
from repro.simulator.churn import random_churn
from repro.simulator.kernel import BatchKernel
from repro.simulator.message import DeliveryRecord
from repro.simulator.recovery import RetryPolicy
from repro.simulator.workloads import (
    hotspot_pairs,
    permutation_traffic,
    uniform_pairs,
)

__all__ = [
    "SweepTask",
    "SweepResult",
    "run_task",
    "run_sweep",
    "seed_replicas",
]

_VARIANTS = ("plain", "chaos", "corruption", "churn")
_WORKLOADS = ("uniform", "hotspot", "permutation")


def _default_model(scheme: str) -> RoutingModel:
    """The CLI's per-scheme default model (kept in sync with repro.cli)."""
    if scheme == "thm2-neighbor-labels":
        return RoutingModel(Knowledge.II, Labeling.GAMMA)
    if scheme in ("interval", "chain-comparison"):
        return RoutingModel(Knowledge.II, Labeling.BETA)
    return RoutingModel(Knowledge.II, Labeling.ALPHA)


@dataclass(frozen=True)
class SweepTask:
    """One shard of a sweep: everything a worker needs, as primitives."""

    scheme: str
    n: int
    graph_seed: int
    seed: int
    """Workload, injection-clock and schedule seed (the CLI's ``--seed``)."""
    messages: int = 64
    workload: str = "uniform"
    variant: str = "plain"
    batch: bool = True
    failures: int = 0
    """Static link failures sampled up front (``plain`` variant)."""
    node_failures: int = 0
    horizon: float = 50.0
    """Fault/churn schedules and injections land in ``[0, horizon * 0.8]``."""
    retries: int = 0
    """Source retries per message (0 disables the retry policy)."""
    retry_base_delay: float = 0.5
    chaos_links: Optional[int] = None
    """Renewal-fault link count (defaults to half the edge count)."""
    chaos_nodes: int = 0
    corrupt_nodes: Optional[int] = None
    """Corrupted tables to schedule (defaults to ``n // 4``)."""
    repair_delay: Optional[float] = None
    churn_events: int = 4
    churn_repair_delay: float = 5.0

    def __post_init__(self) -> None:
        if self.variant not in _VARIANTS:
            raise ReproError(
                f"unknown sweep variant {self.variant!r}; "
                f"expected one of {_VARIANTS}"
            )
        if self.workload not in _WORKLOADS:
            raise ReproError(
                f"unknown sweep workload {self.workload!r}; "
                f"expected one of {_WORKLOADS}"
            )


@dataclass(frozen=True)
class SweepResult:
    """Aggregate outcome of one task, cheap to ship between processes."""

    task: SweepTask
    messages: int
    delivered: int
    dropped: int
    retries: int
    stale: int
    drop_reasons: Tuple[Tuple[str, int], ...]
    record_digest: str
    """SHA-256 over every record's full field tuple, in row order — the
    determinism witness: equal digests mean bit-identical record streams."""


def _record_digest(records: Sequence[DeliveryRecord]) -> str:
    hasher = hashlib.sha256()
    for r in records:
        hasher.update(
            repr((
                r.msg_id, r.source, r.destination, r.delivered, r.hops,
                r.path, r.latency,
                None if r.drop_reason is None else r.drop_reason.name,
                r.drop_detail, r.retries, r.injected_at, r.completed_at,
                r.stale,
            )).encode()
        )
    return hasher.hexdigest()


def _task_pairs(task: SweepTask, graph: object) -> List[Tuple[int, int]]:
    if task.workload == "uniform":
        return list(uniform_pairs(graph, task.messages, seed=task.seed))
    if task.workload == "hotspot":
        return list(hotspot_pairs(graph, task.messages, seed=task.seed))
    return list(permutation_traffic(graph, seed=task.seed))


def _task_kernel(task: SweepTask) -> Tuple[BatchKernel, List[Tuple[int, int]]]:
    graph = gnp_random_graph(task.n, seed=task.graph_seed)
    scheme = build_scheme(task.scheme, graph, _default_model(task.scheme))
    retry = (
        RetryPolicy(
            max_attempts=task.retries + 1, base_delay=task.retry_base_delay
        )
        if task.retries > 0
        else None
    )
    if task.variant == "plain":
        kernel = BatchKernel(
            scheme,
            failed_links=sample_link_failures(
                graph, task.failures, seed=task.seed
            ) if task.failures else (),
            failed_nodes=sample_node_failures(
                graph, task.node_failures, seed=task.seed
            ) if task.node_failures else (),
            retry_policy=retry,
            retry_seed=task.seed,
            batch=task.batch,
        )
    elif task.variant == "chaos":
        links = (
            task.chaos_links
            if task.chaos_links is not None
            else graph.edge_count // 2
        )
        kernel = BatchKernel(
            scheme,
            fault_schedule=renewal_faults(
                graph, horizon=task.horizon, seed=task.seed,
                link_count=links, node_count=task.chaos_nodes,
            ),
            retry_policy=retry,
            retry_seed=task.seed,
            batch=task.batch,
        )
    elif task.variant == "corruption":
        nodes = (
            task.corrupt_nodes
            if task.corrupt_nodes is not None
            else max(task.n // 4, 1)
        )
        kernel = BatchKernel(
            scheme,
            fault_schedule=table_corruption(
                graph, nodes, horizon=task.horizon, seed=task.seed
            ),
            retry_policy=retry,
            retry_seed=task.seed,
            repair_delay=task.repair_delay,
            batch=task.batch,
        )
    else:  # churn
        kernel = BatchKernel(
            scheme,
            churn_schedule=random_churn(
                graph, task.churn_events,
                horizon=task.horizon, seed=task.seed,
            ),
            churn_repair_delay=task.churn_repair_delay,
            retry_policy=retry,
            retry_seed=task.seed,
            batch=task.batch,
        )
    return kernel, _task_pairs(task, graph)


def run_task(task: SweepTask) -> SweepResult:
    """Rebuild and run one shard; pure in the task description."""
    import random

    kernel, pairs = _task_kernel(task)
    clock = random.Random(task.seed)
    for source, destination in pairs:
        kernel.inject(
            source, destination, clock.uniform(0.0, task.horizon * 0.8)
        )
    records = kernel.run()
    reasons: Dict[str, int] = {}
    for r in records:
        if r.drop_reason is not None:
            reasons[r.drop_reason.name] = reasons.get(r.drop_reason.name, 0) + 1
    return SweepResult(
        task=task,
        messages=len(records),
        delivered=sum(1 for r in records if r.delivered),
        dropped=sum(1 for r in records if not r.delivered),
        retries=sum(r.retries for r in records),
        stale=sum(1 for r in records if r.stale),
        drop_reasons=tuple(sorted(reasons.items())),
        record_digest=_record_digest(records),
    )


def run_sweep(
    tasks: Sequence[SweepTask], workers: int = 1
) -> List[SweepResult]:
    """Run every task, optionally sharded over worker processes.

    Results come back in task order regardless of ``workers``; each task
    rebuilds its world from seeds inside its worker, so the digest of
    every result is independent of the worker count and chunking.
    """
    if workers < 1:
        raise ReproError(f"worker count must be >= 1, got {workers}")
    tasks = list(tasks)
    if workers == 1 or len(tasks) <= 1:
        return [run_task(task) for task in tasks]
    import multiprocessing

    # fork shares the already-imported modules; spawn would re-import the
    # whole package per worker for no isolation benefit here.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()
    with context.Pool(min(workers, len(tasks))) as pool:
        return pool.map(run_task, tasks)


def seed_replicas(
    scheme: str,
    n: int,
    graph_seed: int,
    base_seed: int,
    count: int,
    **knobs: object,
) -> List[SweepTask]:
    """``count`` replica tasks differing only in seed (CLI ``--workers``)."""
    return [
        SweepTask(
            scheme=scheme,
            n=n,
            graph_seed=graph_seed,
            seed=base_seed + offset,
            **knobs,  # type: ignore[arg-type]
        )
        for offset in range(count)
    ]
