"""Link-failure injection for resilience experiments.

The paper motivates full-information schemes as the ones that "allow
alternative, shortest, paths to be taken whenever an outgoing link is
down"; these helpers produce reproducible failure sets to measure exactly
that against single-path schemes.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graphs import LabeledGraph

__all__ = ["sample_link_failures", "sample_incident_failures", "sample_node_failures"]


def sample_link_failures(
    graph: LabeledGraph,
    count: int,
    seed: int = 0,
    keep_connected: bool = True,
) -> Set[FrozenSet[int]]:
    """Pick ``count`` random links to fail.

    With ``keep_connected`` (default) candidate failures that would
    disconnect the surviving graph are skipped, so undeliverability in an
    experiment is attributable to the *scheme*, not to a partitioned
    network.
    """
    edges = list(graph.edges())
    if count > len(edges):
        raise GraphError(
            f"cannot fail {count} of {len(edges)} links"
        )
    rng = random.Random(seed)
    rng.shuffle(edges)
    failed: Set[FrozenSet[int]] = set()
    current = graph
    for u, v in edges:
        if len(failed) == count:
            break
        if keep_connected:
            candidate = current.without_edge(u, v)
            if not candidate.is_connected():
                continue
            current = candidate
        failed.add(frozenset((u, v)))
    if len(failed) < count:
        raise GraphError(
            f"only {len(failed)} of {count} links can fail without "
            f"disconnecting the graph"
        )
    return failed


def sample_node_failures(
    graph: LabeledGraph,
    count: int,
    seed: int = 0,
    protect: Optional[Set[int]] = None,
    keep_connected: bool = True,
) -> Set[int]:
    """Pick ``count`` nodes to crash.

    ``protect`` shields named nodes (typically the sources/destinations
    under measurement, or the Theorem 4 hub when studying its loss).  With
    ``keep_connected`` candidates whose removal disconnects the surviving
    node set are skipped.
    """
    protected = set(protect or ())
    candidates = [u for u in graph.nodes if u not in protected]
    if count > len(candidates):
        raise GraphError(
            f"cannot fail {count} of {len(candidates)} unprotected nodes"
        )
    rng = random.Random(seed)
    rng.shuffle(candidates)
    failed: Set[int] = set()
    for node in candidates:
        if len(failed) == count:
            break
        if keep_connected:
            trial = failed | {node}
            if not _survivors_connected(graph, trial):
                continue
        failed.add(node)
    if len(failed) < count:
        raise GraphError(
            f"only {len(failed)} of {count} nodes can fail without "
            f"disconnecting the survivors"
        )
    return failed


def _survivors_connected(graph: LabeledGraph, failed: Set[int]) -> bool:
    """Is the graph induced on the surviving nodes connected?"""
    survivors = [u for u in graph.nodes if u not in failed]
    if not survivors:
        return False
    seen = {survivors[0]}
    stack = [survivors[0]]
    while stack:
        u = stack.pop()
        for v in graph.neighbor_set(u):
            if v not in failed and v not in seen:
                seen.add(v)
                stack.append(v)
    return len(seen) == len(survivors)


def sample_incident_failures(
    graph: LabeledGraph,
    node: int,
    count: int,
    seed: int = 0,
    spare: Optional[Tuple[int, int]] = None,
) -> Set[FrozenSet[int]]:
    """Fail ``count`` links incident to one node (keeping ``spare`` alive).

    Used to stress a single source's full-information entries: each failed
    incident link removes one shortest-path option per destination.
    """
    incident = [
        (node, nb)
        for nb in graph.neighbors(node)
        if spare is None or frozenset((node, nb)) != frozenset(spare)
    ]
    if count > len(incident):
        raise GraphError(
            f"node {node} has only {len(incident)} failable incident links"
        )
    rng = random.Random(seed)
    return {frozenset(edge) for edge in rng.sample(incident, count)}
