"""Traffic-pattern generators for simulation experiments.

Deterministic (seeded) workloads over a graph's node set:

* uniform random source/destination pairs;
* hotspot traffic (many sources, few destinations);
* all-to-one gather and one-to-all scatter;
* permutation traffic (every node sends to a distinct target).

Each generator yields ``(source, destination)`` pairs ready to inject into
:class:`~repro.simulator.network.Network` or the event engine.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.errors import GraphError
from repro.graphs import LabeledGraph

__all__ = [
    "uniform_pairs",
    "hotspot_pairs",
    "all_to_one",
    "one_to_all",
    "permutation_traffic",
]

Pair = Tuple[int, int]


def uniform_pairs(
    graph: LabeledGraph, count: int, seed: int = 0
) -> List[Pair]:
    """``count`` independent uniformly random ordered pairs (s ≠ t)."""
    if graph.n < 2:
        raise GraphError("need at least two nodes for traffic")
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        source = rng.randrange(1, graph.n + 1)
        destination = rng.randrange(1, graph.n)
        if destination >= source:
            destination += 1
        pairs.append((source, destination))
    return pairs


def hotspot_pairs(
    graph: LabeledGraph,
    count: int,
    hotspots: int = 2,
    seed: int = 0,
) -> List[Pair]:
    """Traffic converging on a few random hotspot destinations."""
    if not 1 <= hotspots < graph.n:
        raise GraphError(
            f"hotspots must be in [1, n), got {hotspots} for n={graph.n}"
        )
    rng = random.Random(seed)
    targets = rng.sample(range(1, graph.n + 1), hotspots)
    pairs = []
    for _ in range(count):
        destination = rng.choice(targets)
        source = rng.randrange(1, graph.n)
        if source >= destination:
            source += 1
        pairs.append((source, destination))
    return pairs


def all_to_one(graph: LabeledGraph, destination: int = 1) -> List[Pair]:
    """Every other node sends one message to ``destination`` (gather)."""
    if not 1 <= destination <= graph.n:
        raise GraphError(f"destination {destination} outside 1..{graph.n}")
    return [(u, destination) for u in graph.nodes if u != destination]


def one_to_all(graph: LabeledGraph, source: int = 1) -> List[Pair]:
    """``source`` sends one message to every other node (scatter)."""
    if not 1 <= source <= graph.n:
        raise GraphError(f"source {source} outside 1..{graph.n}")
    return [(source, w) for w in graph.nodes if w != source]


def permutation_traffic(graph: LabeledGraph, seed: int = 0) -> List[Pair]:
    """Every node sends to a distinct partner (a random derangement-ish map).

    The mapping is a uniformly random permutation conditioned on having no
    fixed points, drawn by seeded rejection — the classic worst-ish-case
    pattern for oblivious routing studies.
    """
    if graph.n < 2:
        raise GraphError("need at least two nodes for permutation traffic")
    rng = random.Random(seed)
    nodes = list(graph.nodes)
    while True:
        targets = nodes[:]
        rng.shuffle(targets)
        if all(s != t for s, t in zip(nodes, targets)):
            return list(zip(nodes, targets))
