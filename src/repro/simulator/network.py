"""Message-level network simulation.

Two execution modes over the same routing schemes:

* :class:`Network` — an immediate hop-by-hop walker with link-failure
  awareness, used for delivery/stretch measurements.  Full-information
  functions route *around* failed incident links (the exact capability the
  paper defines them for); detour-wrapped functions bounce once to a live
  neighbour; plain single-path functions drop when their chosen link is
  down.
* :class:`EventDrivenSimulator` — a discrete-event engine (FIFO links of
  configurable latency, global event queue) for time-domain experiments:
  congestion-free latency distributions, and — given a
  :class:`~repro.simulator.chaos.FaultSchedule` — resilience under churn,
  with optional source-side :class:`~repro.simulator.recovery.RetryPolicy`
  recovery.

Given a :class:`~repro.simulator.churn.ChurnSchedule` the engine also
mutates the *topology itself* mid-run: each
:class:`~repro.simulator.churn.TopologyMutation` updates the network's
live graph while the installed tables keep describing the old one, a
repair plan (:func:`~repro.core.repair.plan_repair`) rebuilds only the
dirtied tables after a reaction delay, installs stream in at a
configurable bits-per-time rate, and a ``converged`` span closes the
episode.  Traffic routed during the stale window is marked
(``DeliveryRecord.stale``) and guarded by per-message routing-loop
detection (``DropReason.ROUTING_LOOP``).

Every drop is classified by the structured
:class:`~repro.simulator.message.DropReason` taxonomy; the human-readable
context (which link, which node) rides in ``DeliveryRecord.drop_detail``.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.bitio import BitArray
from repro.core import HopDecision, RoutingScheme
from repro.core.detour import DetourFunction
from repro.core.full_information import FullInformationFunction
from repro.core.repair import RepairPlan, plan_repair
from repro.core.scheme import LocalRoutingFunction
from repro.errors import IntegrityError, ReproError, RoutingError
from repro.graphs import LabeledGraph
from repro.observability.registry import get_registry
from repro.observability.tracer import (
    Subject,
    Tracer,
    link_subject,
    node_subject,
)
from repro.simulator.chaos import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    TableMutation,
)
from repro.simulator.churn import (
    ChurnSchedule,
    TopologyMutation,
    TopologyMutationKind,
)
from repro.simulator.message import DeliveryRecord, DropReason, Message
from repro.simulator.recovery import RetryPolicy

__all__ = ["Network", "EventDrivenSimulator"]

Link = FrozenSet[int]

_NAN = float("nan")


def _live_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Normalise disabled tracers to ``None`` so the hot path pays one test."""
    if tracer is not None and tracer.enabled:
        return tracer
    return None


def _as_links(edges: Iterable[Tuple[int, int]]) -> Set[Link]:
    return {frozenset(edge) for edge in edges}


def _mutation_subject(mutation: TopologyMutation) -> Subject:
    """The trace subject a topology mutation acts on."""
    if mutation.kind in (
        TopologyMutationKind.EDGE_ADD,
        TopologyMutationKind.EDGE_REMOVE,
    ):
        return link_subject(*mutation.subject)
    return node_subject(mutation.subject[0])


def _drop_record(
    message: Message,
    reason: DropReason,
    detail: Optional[str] = None,
    latency: float = 0.0,
    injected_at: float = _NAN,
    completed_at: float = _NAN,
) -> DeliveryRecord:
    """The single builder for drop records (walker and event engine)."""
    return DeliveryRecord(
        msg_id=message.msg_id,
        source=message.source,
        destination=message.destination,
        delivered=False,
        hops=message.hops,
        path=tuple(message.path),
        latency=latency,
        drop_reason=reason,
        drop_detail=detail,
        retries=message.attempt,
        injected_at=injected_at,
        completed_at=completed_at,
        stale=message.stale,
    )


def _delivered_record(
    message: Message,
    latency: float = 0.0,
    injected_at: float = _NAN,
    completed_at: float = _NAN,
) -> DeliveryRecord:
    return DeliveryRecord(
        msg_id=message.msg_id,
        source=message.source,
        destination=message.destination,
        delivered=True,
        hops=message.hops,
        path=tuple(message.path),
        latency=latency,
        retries=message.attempt,
        injected_at=injected_at,
        completed_at=completed_at,
        stale=message.stale,
    )


class Network:
    """A static network executing one routing scheme, with failures."""

    def __init__(
        self,
        scheme: RoutingScheme,
        failed_links: Iterable[Tuple[int, int]] = (),
        failed_nodes: Iterable[int] = (),
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._scheme = scheme
        self._failed: Set[Link] = _as_links(failed_links)
        self._failed_nodes: Set[int] = set(failed_nodes)
        self._counter = itertools.count()
        self._tracer = _live_tracer(tracer)
        # The graph's shared context is the healer's knowledge source: it
        # memoises each node's pristine serialised function, so repeat
        # corruptions and heals of one node encode it exactly once.
        self._ctx = scheme.ctx
        self._ctx.set_tracer(self._tracer)
        # Table-corruption overlay: the scheme object itself stays pristine.
        self._corrupt_tables: Dict[int, BitArray] = {}
        self._corrupt_functions: Dict[int, LocalRoutingFunction] = {}
        self._healed_functions: Dict[int, LocalRoutingFunction] = {}
        self._quarantined: Set[int] = set()
        # Live-topology churn: the graph as it currently exists (the
        # scheme's graph until the first mutation) plus repaired-table
        # overlays installed before the converged scheme swap.
        self._live_graph: LabeledGraph = scheme.graph
        self._churned = False
        self._updated_functions: Dict[int, LocalRoutingFunction] = {}
        self._corruption_stats: Dict[str, int] = {
            "injected": 0,
            "detected": 0,
            "undetected": 0,
            "healed": 0,
        }
        # Open trace spans for causal links: the corrupt span of each
        # still-damaged node (quarantine/heal link back to it) and the
        # most recent mutate span (repairs link back to their trigger).
        self._corrupt_spans: Dict[int, int] = {}
        self._mutate_span: Optional[int] = None
        # Monotone counter bumped by every state change that can affect a
        # routing decision; the batch kernel keys its cached boolean masks
        # on it so unchanged state costs zero mask rebuilds per generation.
        self._state_epoch = 0

    @property
    def scheme(self) -> RoutingScheme:
        """The routing scheme installed on this network."""
        return self._scheme

    @property
    def state_epoch(self) -> int:
        """Monotone version of the mutable routing state.

        Incremented by every failure/restore, corruption/quarantine/heal,
        table install, scheme swap and topology mutation — anything that
        could change a forwarding decision.  Batch consumers compare it to
        decide whether their vectorised masks are still valid.
        """
        return self._state_epoch

    @property
    def failed_links(self) -> Set[Link]:
        """Currently failed links (as frozensets of endpoints)."""
        return set(self._failed)

    def fail_link(self, u: int, v: int) -> None:
        """Mark one link as failed."""
        self._failed.add(frozenset((u, v)))
        self._state_epoch += 1

    def restore_link(self, u: int, v: int) -> None:
        """Bring one link back up."""
        self._failed.discard(frozenset((u, v)))
        self._state_epoch += 1

    @property
    def failed_nodes(self) -> Set[int]:
        """Currently crashed nodes."""
        return set(self._failed_nodes)

    def fail_node(self, node: int) -> None:
        """Crash one node: it neither forwards nor receives."""
        self._failed_nodes.add(node)
        self._state_epoch += 1

    def restore_node(self, node: int) -> None:
        """Bring a crashed node back."""
        self._failed_nodes.discard(node)
        self._state_epoch += 1

    def apply_fault(self, event: FaultEvent) -> None:
        """Apply one scheduled fault event to the live failure state."""
        if event.kind is FaultKind.LINK_DOWN:
            self.fail_link(*event.subject)
        elif event.kind is FaultKind.LINK_UP:
            self.restore_link(*event.subject)
        elif event.kind is FaultKind.NODE_DOWN:
            self.fail_node(event.subject[0])
        elif event.kind is FaultKind.NODE_UP:
            self.restore_node(event.subject[0])
        elif event.kind is FaultKind.TABLE_CORRUPT:
            assert event.mutation is not None  # validated by FaultEvent
            self.corrupt_table(event.subject[0], event.mutation)
        else:  # TABLE_REPAIR
            self.heal_table(event.subject[0])

    # -- live topology churn -------------------------------------------------

    @property
    def live_graph(self) -> LabeledGraph:
        """The topology as it currently exists (mutations applied)."""
        return self._live_graph

    @property
    def churned(self) -> bool:
        """Whether any topology mutation has been applied."""
        return self._churned

    def apply_mutation(self, mutation: TopologyMutation) -> None:
        """Apply one live topology mutation.

        The installed scheme keeps describing the *pre-mutation* graph
        until the repair path installs updated tables, so in the interim a
        stale table forwarding over a removed edge drops (``LINK_DOWN``)
        and fault-aware functions route around the removed edge as if it
        had failed.  A node that leaves stops forwarding and receiving
        (like a crash) until it rejoins.
        """
        self._live_graph = mutation.apply(self._live_graph)
        self._churned = True
        self._state_epoch += 1
        if mutation.kind is TopologyMutationKind.NODE_LEAVE:
            self.fail_node(mutation.subject[0])
        elif mutation.kind is TopologyMutationKind.NODE_JOIN:
            self.restore_node(mutation.subject[0])
        else:
            # Edge mutations touch only the live adjacency applied above.
            pass
        get_registry().counter(
            "repro_topology_mutations_total", kind=mutation.kind.name
        ).inc()
        if self._tracer is not None:
            self._mutate_span = self._tracer.mutate(
                kind=mutation.kind.value,
                subject=_mutation_subject(mutation),
                detail=mutation.describe(),
            )

    def install_table(self, node: int, function: LocalRoutingFunction) -> None:
        """Install one repaired routing function ahead of convergence.

        The node's storage was just rewritten, so any corruption, heal or
        quarantine state it carried is superseded by the fresh table.
        """
        self._corrupt_tables.pop(node, None)
        self._corrupt_functions.pop(node, None)
        self._healed_functions.pop(node, None)
        self._quarantined.discard(node)
        self._updated_functions[node] = function
        self._state_epoch += 1

    def install_scheme(self, scheme: RoutingScheme) -> None:
        """Swap in the converged scheme built over the live graph.

        Per-node overlays installed during the repair window collapse into
        the scheme itself; corruption overlays on *clean* nodes survive
        (their storage is still bad, and their encodings are bit-identical
        across the swap).
        """
        if scheme.graph is not self._live_graph:
            raise RoutingError(
                "converged scheme must be built over the live graph"
            )
        self._scheme = scheme
        self._ctx = scheme.ctx
        self._ctx.set_tracer(self._tracer)
        self._updated_functions.clear()
        self._state_epoch += 1

    # -- table corruption ----------------------------------------------------

    @property
    def corrupted_nodes(self) -> Set[int]:
        """Nodes whose packed function bits are currently mutated."""
        return set(self._corrupt_tables)

    @property
    def quarantined_nodes(self) -> Set[int]:
        """Nodes whose corruption was detected: they no longer forward."""
        return set(self._quarantined)

    def corruption_summary(self) -> Dict[str, int]:
        """Lifecycle counts: injected / detected / undetected / healed."""
        return dict(self._corruption_stats)

    def corrupt_table(self, node: int, mutation: TableMutation) -> None:
        """Overwrite ``node``'s packed function bits with a mutated copy.

        The damage lives in an overlay; the scheme object itself stays
        pristine, modelling the node's *storage* going bad while the
        network's graph+model knowledge (the shared context, the healer's
        source) survives.
        """
        pristine = self._ctx.pristine_bits(self._scheme, node)
        self._corrupt_tables[node] = mutation.apply(pristine)
        self._corrupt_functions.pop(node, None)
        self._healed_functions.pop(node, None)
        # Fresh damage supersedes any earlier detection verdict.
        self._quarantined.discard(node)
        self._state_epoch += 1
        self._corruption_stats["injected"] += 1
        get_registry().counter(
            "repro_table_corruptions_total", kind=mutation.kind.name
        ).inc()
        if self._tracer is not None:
            self._corrupt_spans[node] = self._tracer.corrupt(
                node=node, detail=mutation.describe()
            )

    def heal_table(self, node: int) -> bool:
        """Rebuild ``node``'s function pristine from graph+model knowledge.

        The replacement function is decoded from the context's memoised
        pristine bits — the same serialised knowledge the corruption step
        snapshotted — so healing is an explicit re-install, not a silent
        fallback onto the scheme's in-memory cache.  Returns whether there
        was anything to heal (corruption or quarantine state cleared).
        """
        was_broken = (
            node in self._corrupt_tables or node in self._quarantined
        )
        if not was_broken:
            return False
        self._corrupt_tables.pop(node, None)
        self._corrupt_functions.pop(node, None)
        self._quarantined.discard(node)
        self._state_epoch += 1
        self._healed_functions[node] = self._scheme.decode_function(
            node, self._ctx.pristine_bits(self._scheme, node)
        )
        self._corruption_stats["healed"] += 1
        get_registry().counter("repro_table_heals_total").inc()
        if self._tracer is not None:
            self._tracer.heal(
                node=node, cause=self._corrupt_spans.pop(node, None)
            )
        return True

    def _detected(self, node: int, why: str) -> IntegrityError:
        """Quarantine ``node`` after a detection; returns the error to raise."""
        if node not in self._quarantined:
            self._quarantined.add(node)
            self._state_epoch += 1
            self._corruption_stats["detected"] += 1
            get_registry().counter(
                "repro_table_corruption_detected_total"
            ).inc()
            if self._tracer is not None:
                self._tracer.quarantine(
                    node=node, detail=why,
                    cause=self._corrupt_spans.get(node),
                )
        return IntegrityError(f"node {node}: {why}")

    def _function_for(self, node: int) -> LocalRoutingFunction:
        """The live function at ``node`` — the corrupted overlay wins.

        Decoding the mutated bits is the detection point: framed schemes
        raise :class:`IntegrityError` on the checksum, and even unframed
        schemes detect *structurally* invalid encodings (prefix-code
        truncation, out-of-range ports).  A mutation that still decodes is
        an **undetected** corruption — the garbage function is installed
        and silently misroutes, exactly the failure mode integrity framing
        exists to close.
        """
        if node in self._corrupt_tables:
            overlay = self._corrupt_functions.get(node)
            if overlay is None:
                try:
                    overlay = self._scheme.decode_function(
                        node, self._corrupt_tables[node]
                    )
                except IntegrityError as exc:
                    raise self._detected(node, str(exc)) from exc
                except (ReproError, KeyError, IndexError, TypeError,
                        ValueError) as exc:
                    raise self._detected(
                        node,
                        f"corrupted table failed to decode "
                        f"({type(exc).__name__}: {exc})",
                    ) from exc
                self._corrupt_functions[node] = overlay
                self._corruption_stats["undetected"] += 1
                get_registry().counter(
                    "repro_table_corruption_undetected_total"
                ).inc()
            return overlay
        updated = self._updated_functions.get(node)
        if updated is not None:
            return updated
        healed = self._healed_functions.get(node)
        if healed is not None:
            return healed
        return self._scheme.function(node)

    def _valid_forward(self, node: int, next_node: object) -> bool:
        """Whether a forwarding decision names the node itself or a
        neighbour — the runtime port check a real router performs."""
        if not isinstance(next_node, int) or isinstance(next_node, bool):
            return False
        if next_node == node:
            return True
        if not 1 <= next_node <= self._scheme.graph.n:
            return False
        # Under churn a repaired table may legitimately name a neighbour
        # that exists only in the live graph (an added edge).
        return self._scheme.graph.has_edge(node, next_node) or (
            self._churned and self._live_graph.has_edge(node, next_node)
        )

    def _blocked_neighbors(
        self, node: int, destination: Optional[int] = None
    ) -> List[int]:
        # Quarantined nodes refuse to forward but can still *receive*:
        # the destination itself is never routed around.  Under churn an
        # edge absent from the live graph is as unusable as a failed one,
        # and repaired tables may know neighbours the scheme graph lacks.
        neighbors = self._scheme.graph.neighbor_set(node)
        if self._churned:
            neighbors = neighbors | self._live_graph.neighbor_set(node)
        return [
            nb
            for nb in neighbors
            if frozenset((node, nb)) in self._failed
            or nb in self._failed_nodes
            or (nb in self._quarantined and nb != destination)
            or (self._churned and not self._live_graph.has_edge(node, nb))
        ]

    def _choose_hop(self, node: int, message: Message) -> HopDecision:
        """One forwarding decision, honouring failures where possible.

        Fault-aware functions — full-information (all shortest-path edges
        stored) and detour wrappers (bounce once to a live neighbour) — are
        told which incident links are unusable; plain single-path functions
        answer from their table alone and may well pick a dead link.

        On a node with a corrupted table, *any* failure of the decoded
        function — an exception or an invalid port — is runtime detection
        and raises :class:`IntegrityError` (quarantining the node) instead
        of surfacing a garbage answer.
        """
        function = self._function_for(node)
        corrupted = node in self._corrupt_tables
        try:
            if (
                self._failed
                or self._failed_nodes
                or self._quarantined
                or self._churned
            ):
                blocked = self._blocked_neighbors(node, message.destination)
                if isinstance(function, FullInformationFunction):
                    decision = function.next_hop_avoiding(
                        int(message.address), blocked
                    )
                elif isinstance(function, DetourFunction):
                    decision = function.next_hop_avoiding(
                        message.address, blocked, message.state
                    )
                else:
                    decision = function.next_hop(
                        message.address, message.state
                    )
            else:
                decision = function.next_hop(message.address, message.state)
        except RoutingError:
            if corrupted:
                raise self._detected(
                    node, "corrupted table produced a routing failure"
                ) from None
            raise
        except (ReproError, KeyError, IndexError, TypeError,
                ValueError) as exc:
            if corrupted:
                raise self._detected(
                    node,
                    f"corrupted table raised "
                    f"{type(exc).__name__} while routing",
                ) from exc
            raise
        if corrupted and not self._valid_forward(node, decision.next_node):
            raise self._detected(
                node,
                f"corrupted table named invalid next hop "
                f"{decision.next_node!r}",
            )
        return decision

    def _walk_drop(
        self,
        message: Message,
        current: int,
        reason: DropReason,
        detail: str,
        subject: Optional[Tuple[str, ...]] = None,
    ) -> DeliveryRecord:
        if self._tracer is not None:
            self._tracer.drop(
                message.msg_id,
                node=current,
                reason=reason.name,
                detail=detail,
                subject=subject,
                attempt=message.attempt,
                hop=message.hops,
            )
        return _drop_record(message, reason, detail)

    def route(self, source: int, destination: int) -> DeliveryRecord:
        """Walk one message from source to destination."""
        message = Message(
            msg_id=next(self._counter),
            source=source,
            destination=destination,
            address=self._scheme.address_of(destination),
            path=[source],
        )
        tracer = self._tracer
        if tracer is not None:
            tracer.inject(message.msg_id, source, destination)
        if source in self._failed_nodes or destination in self._failed_nodes:
            down = source if source in self._failed_nodes else destination
            return self._walk_drop(
                message,
                source,
                DropReason.ENDPOINT_DOWN,
                f"endpoint node {down} is down",
                subject=node_subject(down),
            )
        limit = self._scheme.hop_limit()
        current = source
        while current != destination:
            if current in self._quarantined:
                return self._walk_drop(
                    message,
                    current,
                    DropReason.TABLE_CORRUPT,
                    f"node {current} is quarantined with a corrupt table",
                    subject=node_subject(current),
                )
            if message.hops >= limit:
                return self._walk_drop(
                    message,
                    current,
                    DropReason.HOP_LIMIT,
                    f"hop limit {limit} exceeded",
                )
            try:
                decision = self._choose_hop(current, message)
            except IntegrityError as exc:
                return self._walk_drop(
                    message,
                    current,
                    DropReason.TABLE_CORRUPT,
                    str(exc),
                    subject=node_subject(current),
                )
            except RoutingError as exc:
                return self._walk_drop(
                    message, current, DropReason.NO_ROUTE, str(exc)
                )
            next_node = decision.next_node
            if next_node in self._quarantined and next_node != destination:
                return self._walk_drop(
                    message,
                    current,
                    DropReason.TABLE_CORRUPT,
                    f"next hop {next_node} is quarantined with a corrupt "
                    f"table",
                    subject=node_subject(next_node),
                )
            if frozenset((current, next_node)) in self._failed:
                return self._walk_drop(
                    message,
                    current,
                    DropReason.LINK_DOWN,
                    f"link {current}-{next_node} is down",
                    subject=link_subject(current, next_node),
                )
            if next_node in self._failed_nodes:
                return self._walk_drop(
                    message,
                    current,
                    DropReason.NODE_DOWN,
                    f"node {next_node} is down",
                    subject=node_subject(next_node),
                )
            if next_node != current and not self._live_graph.has_edge(
                current, next_node
            ):
                # An edge the scheme graph still has was removed by a
                # topology mutation — a transient stale-table symptom, not
                # a scheme bug.
                if self._scheme.graph.has_edge(current, next_node):
                    return self._walk_drop(
                        message,
                        current,
                        DropReason.LINK_DOWN,
                        f"link {current}-{next_node} was removed by a "
                        f"topology mutation",
                        subject=link_subject(current, next_node),
                    )
                return self._walk_drop(
                    message,
                    current,
                    DropReason.INVALID_FORWARD,
                    f"{current} forwarded to non-adjacent {next_node}",
                )
            if tracer is not None:
                tracer.hop(
                    message.msg_id,
                    node=current,
                    next_node=next_node,
                    hop=message.hops,
                    attempt=message.attempt,
                )
            message.state = decision.state
            message.path.append(next_node)
            current = next_node
        if tracer is not None:
            tracer.deliver(
                message.msg_id,
                node=destination,
                hop=message.hops,
                attempt=message.attempt,
            )
        return _delivered_record(message)

    def route_batch(
        self,
        pairs: Iterable[Tuple[int, int]],
        batch: bool = True,
    ) -> List[DeliveryRecord]:
        """Route many pairs at once through the vectorised batch kernel.

        The kernel shares this network's failure/overlay state, tracer
        and message-id counter, so batched and per-call routing can
        interleave.  Semantics are the timed kernel's (simultaneous
        injection at time 0, unit hop latency), not the untimed walk of
        :meth:`route`; ``batch=False`` forces the kernel's scalar lane —
        the reference stream the vectorised mode reproduces bit-for-bit.
        """
        from repro.simulator.kernel import BatchKernel

        kernel = BatchKernel(network=self, tracer=self._tracer, batch=batch)
        for source, destination in pairs:
            kernel.inject(source, destination)
        return kernel.run()


# Heap entries: (time, priority, sequence, payload, first_injected_at).
# Fault events carry priority 0 so a link that dies at time t is dead for
# every message hop scheduled at the same t; topology mutations and the
# engine's internal repair-control events share that priority.
_FAULT_PRIORITY = 0
_MESSAGE_PRIORITY = 1


@dataclass(frozen=True)
class _RepairTick:
    """Internal event: start planning a repair for one churn generation."""

    generation: int


@dataclass(frozen=True)
class _TableInstall:
    """Internal event: one staggered table install of the active plan."""

    generation: int
    node: int
    final: bool
    """Last install of the plan — convergence finalises after it."""


_Payload = Union[Message, FaultEvent, TopologyMutation, _RepairTick, _TableInstall]
_Entry = Tuple[float, int, int, _Payload, float]

# Drops worth retrying: the condition that caused them can heal as the
# fault schedule advances (ROUTING_LOOP: as churn repair converges).  A
# scheme bug (INVALID_FORWARD) cannot.
_RETRYABLE = frozenset(
    {
        DropReason.ENDPOINT_DOWN,
        DropReason.LINK_DOWN,
        DropReason.NODE_DOWN,
        DropReason.HOP_LIMIT,
        DropReason.NO_ROUTE,
        DropReason.QUEUE_OVERFLOW,
        DropReason.TABLE_CORRUPT,
        DropReason.ROUTING_LOOP,
    }
)


class EventDrivenSimulator:
    """Discrete-event execution with FIFO forwarding queues.

    Each hop costs ``link_latency`` time units on the wire; when
    ``node_service_time`` is positive every node additionally serialises its
    forwarding work (one message at a time), so traffic concentrating on a
    node — the Theorem 4 hub, a hotspot destination — queues up and the
    latency distribution shows it.  ``queue_capacity`` (in messages of
    backlog) turns overload into explicit drops.

    ``fault_schedule`` interleaves timed link/node failures and recoveries
    with the message events, so the failure set evolves *during* the run;
    ``retry_policy`` re-injects dropped messages at their source after an
    exponential backoff, modelling end-to-end recovery.  Delivered records
    then report the total time including backoff, and ``retries`` counts
    re-transmissions.

    ``TABLE_CORRUPT`` fault events mutate a node's packed routing function
    in place.  When the damage is *detected* (checksum or structural
    failure at decode/route time) the node is quarantined, and — with a
    ``repair_delay`` configured — a self-heal event is scheduled
    ``repair_delay`` time units after detection, rebuilding the table
    pristine from the scheme's graph+model knowledge.  The detection
    latency (corruption time to detection time) lands in the
    ``repro_corruption_detection_latency`` histogram.

    A :class:`~repro.simulator.churn.ChurnSchedule` interleaves *topology
    mutations* with the traffic: each mutation updates the network's live
    graph immediately, while the installed tables keep describing the old
    topology until the repair path converges.  ``churn_repair_delay``
    models the control plane's reaction time; after it a repair plan
    rebuilds only the dirtied tables (``incremental_repair=False`` forces
    the full-rebuild control arm) and ``churn_repair_rate`` (bits per time
    unit, ``None`` = instantaneous) staggers the installs, so large dirty
    sets genuinely take longer to converge.  During the stale window every
    forwarded message is marked ``stale`` and watched by a per-attempt
    routing-loop detector (revisiting a node with identical header state
    drops as retryable ``ROUTING_LOOP``).  Convergence closes the episode
    with a ``converged`` span and a ``repro_churn_convergence_time``
    observation per mutation; :meth:`churn_summary` reports the episode
    accounting.

    An enabled :class:`~repro.observability.tracer.Tracer` receives
    inject/hop/retry/fault/drop/deliver span events — plus
    corrupt/quarantine/heal for the table-corruption lifecycle and
    mutate/repair/converged for churn; ``tracer=None`` (the default) keeps
    the event loop identical to the untraced engine.
    """

    def __init__(
        self,
        scheme: RoutingScheme,
        link_latency: float = 1.0,
        failed_links: Iterable[Tuple[int, int]] = (),
        node_service_time: float = 0.0,
        queue_capacity: Optional[int] = None,
        failed_nodes: Iterable[int] = (),
        fault_schedule: Optional[FaultSchedule] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_seed: int = 0,
        tracer: Optional[Tracer] = None,
        repair_delay: Optional[float] = None,
        churn_schedule: Optional[ChurnSchedule] = None,
        churn_repair_delay: float = 5.0,
        churn_repair_rate: Optional[float] = None,
        incremental_repair: bool = True,
    ) -> None:
        if link_latency <= 0:
            raise RoutingError(f"link latency must be positive, got {link_latency}")
        if node_service_time < 0:
            raise RoutingError(
                f"service time must be non-negative, got {node_service_time}"
            )
        if queue_capacity is not None and queue_capacity < 1:
            raise RoutingError(
                f"queue capacity must be positive, got {queue_capacity}"
            )
        if repair_delay is not None and repair_delay <= 0:
            raise RoutingError(
                f"repair delay must be positive, got {repair_delay}"
            )
        if churn_repair_delay <= 0:
            raise RoutingError(
                f"churn repair delay must be positive, got {churn_repair_delay}"
            )
        if churn_repair_rate is not None and churn_repair_rate <= 0:
            raise RoutingError(
                f"churn repair rate must be positive, got {churn_repair_rate}"
            )
        if churn_schedule is not None and scheme.address_of(1) != 1:
            # Repaired schemes re-derive their own labels; only plain-label
            # addressing survives a table swap mid-flight.
            raise RoutingError(
                "live topology churn requires a plain-label scheme "
                "(address_of(u) == u)"
            )
        self._network = Network(scheme, failed_links, failed_nodes)
        self._scheme = scheme
        self._latency = link_latency
        self._service = node_service_time
        self._capacity = queue_capacity
        self._schedule = fault_schedule
        self._retry = retry_policy
        self._retry_rng = random.Random(retry_seed)
        self._repair_delay = repair_delay
        self._queue: List[_Entry] = []
        self._sequence = itertools.count()
        self._records: List[DeliveryRecord] = []
        self._busy_until: dict[int, float] = {}
        self._forward_counts: dict[int, int] = {}
        self._corrupted_at: Dict[int, float] = {}
        self._reacted: Set[int] = set()
        self._live_messages = 0
        self._tracer = _live_tracer(tracer)
        # Live topology churn state.
        self._churn = churn_schedule
        self._churn_delay = churn_repair_delay
        self._churn_rate = churn_repair_rate
        self._incremental = incremental_repair
        self._base_scheme = scheme
        self._generation = 0
        self._control_events = 0
        self._pending_mutations: List[TopologyMutation] = []
        self._stale_since: Optional[float] = None
        self._active_plan: Optional[RepairPlan] = None
        self._plan_installed: Set[int] = set()
        self._aborted_installs: Set[int] = set()
        self._convergence_times: List[float] = []
        self._hop_sets: Dict[Tuple[int, int], Set[Tuple[int, Any]]] = {}
        self._churn_stats: Dict[str, int] = {
            "mutations": 0,
            "repairs": 0,
            "tables_rebuilt": 0,
            "tables_reused": 0,
            "bits_rewritten": 0,
            "bits_reused": 0,
        }
        # Open trace spans for causal links: corrupt span per damaged
        # node, the latest mutate span (repairs link to it) and the first
        # mutate span of the current churn episode (converged links to it).
        self._corrupt_spans: Dict[int, int] = {}
        self._mutate_span: Optional[int] = None
        self._episode_root_span: Optional[int] = None

    @property
    def network(self) -> Network:
        """The underlying failure-state holder (live during a run)."""
        return self._network

    @property
    def forward_counts(self) -> dict[int, int]:
        """Messages forwarded per node in the last :meth:`run` (congestion)."""
        return dict(self._forward_counts)

    def inject(self, source: int, destination: int, at_time: float = 0.0) -> None:
        """Schedule a message injection."""
        message = Message(
            msg_id=next(self._network._counter),
            source=source,
            destination=destination,
            address=self._scheme.address_of(destination),
            path=[source],
        )
        if self._tracer is not None:
            if self._tracer.wants(message.msg_id):
                self._tracer.inject(
                    message.msg_id, source, destination, time=at_time
                )
            else:
                message.traced = False
        self._push_message(message, at_time, at_time)

    def _push_message(
        self, message: Message, at_time: float, injected_at: float
    ) -> None:
        heapq.heappush(
            self._queue,
            (
                at_time,
                _MESSAGE_PRIORITY,
                next(self._sequence),
                message,
                injected_at,
            ),
        )
        self._live_messages += 1

    def _finish(
        self,
        message: Message,
        now: float,
        injected_at: float,
        reason: Optional[DropReason],
        detail: Optional[str] = None,
        subject: Optional[Tuple[str, ...]] = None,
    ) -> None:
        """Record a final outcome, or schedule a retry for a drop.

        ``subject`` names the failed entity behind a fault-caused drop
        (``("link", u, v)`` / ``("node", u)``) so traces can attribute the
        drop to the fault window that produced it.
        """
        tracer = self._tracer
        if reason is None:
            # A stale delivery is anomalous: promote it even though the
            # message was suppressed at inject and never dropped.
            if tracer is not None and (message.traced or message.stale):
                if not message.traced:
                    tracer.promote(
                        message.msg_id,
                        message.source,
                        message.destination,
                        injected_at,
                    )
                tracer.deliver(
                    message.msg_id,
                    node=message.destination,
                    time=now,
                    hop=message.hops,
                    attempt=message.attempt,
                    detail="stale" if message.stale else None,
                )
            self._records.append(
                _delivered_record(
                    message,
                    latency=now - injected_at,
                    injected_at=injected_at,
                    completed_at=now,
                )
            )
            return
        if (
            self._retry is not None
            and reason in _RETRYABLE
            and message.attempt < self._retry.max_retries
        ):
            backoff = self._retry.delay(message.attempt, self._retry_rng)
            fresh = Message(
                msg_id=message.msg_id,
                source=message.source,
                destination=message.destination,
                address=message.address,
                path=[message.source],
                attempt=message.attempt + 1,
            )
            if tracer is not None:
                if not message.traced:
                    tracer.promote(
                        message.msg_id,
                        message.source,
                        message.destination,
                        injected_at,
                    )
                tracer.retry(
                    message.msg_id,
                    source=message.source,
                    attempt=fresh.attempt,
                    time=now,
                    reason=reason.name,
                    duration=backoff,
                )
            self._push_message(fresh, now + backoff, injected_at)
            return
        if tracer is not None:
            if not message.traced:
                tracer.promote(
                    message.msg_id,
                    message.source,
                    message.destination,
                    injected_at,
                )
            tracer.drop(
                message.msg_id,
                node=message.path[-1],
                reason=reason.name,
                time=now,
                detail=detail,
                subject=subject,
                attempt=message.attempt,
                hop=message.hops,
            )
        self._records.append(
            _drop_record(
                message,
                reason,
                detail,
                latency=now - injected_at,
                injected_at=injected_at,
                completed_at=now,
            )
        )

    def _apply_timed_fault(self, event: FaultEvent, now: float) -> None:
        """Apply one scheduled fault, with corruption-lifecycle tracing.

        The internal :class:`Network` is untraced (the engine owns span
        emission with proper simulated timestamps), so corrupt/heal spans
        are emitted here and quarantine spans in :meth:`_on_detection`.
        """
        tracer = self._tracer
        if event.kind is FaultKind.TABLE_CORRUPT:
            node = event.subject[0]
            self._network.apply_fault(event)
            self._corrupted_at[node] = now
            # Fresh damage re-arms detection for this node.
            self._reacted.discard(node)
            if tracer is not None:
                detail = (
                    event.mutation.describe()
                    if event.mutation is not None
                    else None
                )
                self._corrupt_spans[node] = tracer.corrupt(
                    node=node, time=now, detail=detail
                )
            return
        if event.kind is FaultKind.TABLE_REPAIR:
            node = event.subject[0]
            healed = self._network.heal_table(node)
            self._corrupted_at.pop(node, None)
            self._reacted.discard(node)
            if healed and tracer is not None:
                tracer.heal(
                    node=node, time=now,
                    cause=self._corrupt_spans.pop(node, None),
                )
            return
        if tracer is not None:
            subject = (
                link_subject(*event.subject)
                if len(event.subject) == 2
                else node_subject(event.subject[0])
            )
            tracer.fault(kind=event.kind.value, subject=subject, time=now)
        self._network.apply_fault(event)

    def _on_detection(self, node: int, now: float) -> None:
        """React once per corruption episode: record latency, plan the heal."""
        if node in self._reacted:
            return
        self._reacted.add(node)
        if self._tracer is not None:
            self._tracer.quarantine(
                node=node, time=now, cause=self._corrupt_spans.get(node)
            )
        corrupted_since = self._corrupted_at.pop(node, None)
        if corrupted_since is not None:
            get_registry().histogram(
                "repro_corruption_detection_latency"
            ).observe(now - corrupted_since)
        if self._repair_delay is not None:
            heal_time = now + self._repair_delay
            heapq.heappush(
                self._queue,
                (
                    heal_time,
                    _FAULT_PRIORITY,
                    next(self._sequence),
                    FaultEvent.table_repair(heal_time, node),
                    heal_time,
                ),
            )

    # -- live topology churn --------------------------------------------------

    def _push_control(self, payload: _Payload, at_time: float) -> None:
        """Queue a churn control event (mutation / repair tick / install).

        Control events keep the run loop draining even after all messages
        resolve, so convergence always completes.
        """
        heapq.heappush(
            self._queue,
            (at_time, _FAULT_PRIORITY, next(self._sequence), payload, at_time),
        )
        self._control_events += 1

    def _apply_mutation_event(
        self, mutation: TopologyMutation, now: float
    ) -> None:
        """Mutate the live topology and (re)arm the repair reaction."""
        self._network.apply_mutation(mutation)
        self._pending_mutations.append(mutation)
        self._churn_stats["mutations"] += 1
        if self._stale_since is None:
            self._stale_since = now
        if self._active_plan is not None:
            # A newer mutation invalidates the in-flight repair; whatever
            # it already installed describes neither the old nor the next
            # converged graph, so those nodes are forced dirty next plan.
            self._aborted_installs |= self._plan_installed
            self._active_plan = None
            self._plan_installed = set()
        self._generation += 1
        # The mutation counter is incremented by Network.apply_mutation
        # above — the single accounting point for both walker and engine.
        if self._tracer is not None:
            self._mutate_span = self._tracer.mutate(
                kind=mutation.kind.value,
                subject=_mutation_subject(mutation),
                time=now,
                detail=mutation.describe(),
            )
            if self._episode_root_span is None:
                self._episode_root_span = self._mutate_span
        self._push_control(
            _RepairTick(self._generation), now + self._churn_delay
        )

    def _start_repair(self, tick: _RepairTick, now: float) -> None:
        """Plan the repair for the current generation and begin installs."""
        if tick.generation != self._generation or self._active_plan is not None:
            return  # superseded by a newer mutation
        plan = plan_repair(
            self._base_scheme,
            self._network.live_graph,
            full=not self._incremental,
            extra_dirty=self._aborted_installs,
        )
        self._active_plan = plan
        self._plan_installed = set()
        stats = self._churn_stats
        stats["repairs"] += 1
        stats["tables_rebuilt"] += len(plan.dirty)
        stats["tables_reused"] += len(plan.clean)
        stats["bits_rewritten"] += plan.bits_rewritten
        stats["bits_reused"] += plan.bits_reused
        get_registry().counter("repro_churn_repairs_total").inc()
        if not plan.table_bits or self._churn_rate is None:
            for node, _bits in plan.table_bits:
                self._install_node(plan, node, now)
            self._finalize_convergence(now)
            return
        elapsed = 0.0
        last = len(plan.table_bits) - 1
        for index, (node, bits) in enumerate(plan.table_bits):
            # Deliberate ratio: bits over a bits-per-time rate is a time.
            elapsed += bits / self._churn_rate  # repro-lint: disable=R001
            self._push_control(
                _TableInstall(tick.generation, node, index == last),
                now + elapsed,
            )

    def _install_node(self, plan: RepairPlan, node: int, now: float) -> None:
        """Install one repaired table, decoded from its pristine bits.

        Going through ``decode_function`` on the memoised pristine
        encoding — the heal machinery's re-install path — rather than the
        scheme's in-memory function keeps repaired tables on the same
        serialised-knowledge footing as corruption heals.
        """
        scheme = plan.new_scheme
        bits = scheme.ctx.pristine_bits(scheme, node)
        self._network.install_table(
            node, scheme.decode_function(node, bits)
        )
        self._plan_installed.add(node)
        if self._tracer is not None:
            self._tracer.repair(
                node=node, time=now,
                detail=f"{len(bits)} bits reinstalled",
                cause=self._mutate_span,
            )

    def _apply_install(self, install: _TableInstall, now: float) -> None:
        """Apply one staggered install; the final one converges."""
        if install.generation != self._generation or self._active_plan is None:
            return  # superseded by a newer mutation
        self._install_node(self._active_plan, install.node, now)
        if install.final:
            self._finalize_convergence(now)

    def _finalize_convergence(self, now: float) -> None:
        """Swap in the converged scheme and close the churn episode."""
        plan = self._active_plan
        assert plan is not None
        self._network.install_scheme(plan.new_scheme)
        self._base_scheme = plan.new_scheme
        self._scheme = plan.new_scheme
        histogram = get_registry().histogram("repro_churn_convergence_time")
        for mutation in self._pending_mutations:
            histogram.observe(now - mutation.time)
        duration = (
            now - self._stale_since if self._stale_since is not None else 0.0
        )
        self._convergence_times.append(duration)
        if self._tracer is not None:
            self._tracer.converged(
                time=now, duration=duration, detail=plan.describe(),
                cause=self._episode_root_span,
            )
            self._episode_root_span = None
        self._pending_mutations = []
        self._stale_since = None
        self._active_plan = None
        self._plan_installed = set()
        self._aborted_installs = set()

    def churn_summary(self) -> Dict[str, object]:
        """Episode accounting of the last run's churn convergence.

        ``bits_full`` is what full rebuilds would have pushed over the
        same episodes; ``converged`` reports whether every mutation's
        repair completed before the run drained.
        """
        stats = self._churn_stats
        return {
            "mutations": stats["mutations"],
            "repairs": stats["repairs"],
            "tables_rebuilt": stats["tables_rebuilt"],
            "tables_reused": stats["tables_reused"],
            "bits_rewritten": stats["bits_rewritten"],
            "bits_reused": stats["bits_reused"],
            "bits_full": stats["bits_rewritten"] + stats["bits_reused"],
            "convergence_times": list(self._convergence_times),
            "converged": self._stale_since is None,
        }

    def run(self) -> List[DeliveryRecord]:
        """Process all events; returns one record per injected message."""
        limit_base = self._scheme.hop_limit()
        self._busy_until = {}
        self._forward_counts = {}
        self._hop_sets = {}
        if self._schedule is not None:
            for event in self._schedule:
                heapq.heappush(
                    self._queue,
                    (
                        event.time,
                        _FAULT_PRIORITY,
                        next(self._sequence),
                        event,
                        event.time,
                    ),
                )
        if self._churn is not None:
            for mutation in self._churn:
                self._push_control(mutation, mutation.time)
        # Control events (mutations, repair ticks, installs) keep the loop
        # alive past the last message so convergence always completes.
        while self._queue and (self._live_messages or self._control_events):
            now, priority, _, payload, injected_at = heapq.heappop(self._queue)
            if priority == _FAULT_PRIORITY:
                if isinstance(payload, FaultEvent):
                    self._apply_timed_fault(payload, now)
                else:
                    self._control_events -= 1
                    if isinstance(payload, TopologyMutation):
                        self._apply_mutation_event(payload, now)
                    elif isinstance(payload, _RepairTick):
                        self._start_repair(payload, now)
                    else:
                        assert isinstance(payload, _TableInstall)
                        self._apply_install(payload, now)
                continue
            message = payload
            assert isinstance(message, Message)
            self._live_messages -= 1
            current = message.path[-1]
            if current == message.destination:
                if current in self._network.failed_nodes:
                    self._finish(
                        message,
                        now,
                        injected_at,
                        DropReason.ENDPOINT_DOWN,
                        f"destination {current} crashed before arrival",
                        subject=node_subject(current),
                    )
                else:
                    self._finish(message, now, injected_at, None)
                continue
            if current in self._network.failed_nodes:
                reason = (
                    DropReason.ENDPOINT_DOWN
                    if message.hops == 0
                    else DropReason.NODE_DOWN
                )
                self._finish(
                    message,
                    now,
                    injected_at,
                    reason,
                    f"node {current} holding the message is down",
                    subject=node_subject(current),
                )
                continue
            if current in self._network._quarantined:
                self._finish(
                    message,
                    now,
                    injected_at,
                    DropReason.TABLE_CORRUPT,
                    f"node {current} is quarantined with a corrupt table",
                    subject=node_subject(current),
                )
                continue
            if message.hops >= limit_base:
                self._finish(
                    message,
                    now,
                    injected_at,
                    DropReason.HOP_LIMIT,
                    f"hop limit {limit_base} exceeded",
                )
                continue
            if self._churn is not None:
                # A forwarding decision made while tables are converging
                # marks the message stale; revisiting a node with identical
                # header state during that window is a routing loop.
                if self._stale_since is not None:
                    message.stale = True
                seen = self._hop_sets.setdefault(
                    (message.msg_id, message.attempt), set()
                )
                key = (current, message.state)
                try:
                    looped = key in seen
                    if not looped:
                        seen.add(key)
                except TypeError:
                    # Unhashable header state: loop detection skipped; the
                    # hop limit still bounds the walk.
                    looped = False
                if looped:
                    get_registry().counter("repro_routing_loops_total").inc()
                    self._finish(
                        message,
                        now,
                        injected_at,
                        DropReason.ROUTING_LOOP,
                        f"revisited node {current} with identical header "
                        f"state during churn convergence",
                        subject=node_subject(current),
                    )
                    continue
            try:
                decision = self._network._choose_hop(current, message)
            except IntegrityError as exc:
                self._on_detection(current, now)
                self._finish(
                    message,
                    now,
                    injected_at,
                    DropReason.TABLE_CORRUPT,
                    str(exc),
                    subject=node_subject(current),
                )
                continue
            except RoutingError as exc:
                self._finish(
                    message, now, injected_at, DropReason.NO_ROUTE, str(exc)
                )
                continue
            if (
                decision.next_node in self._network._quarantined
                and decision.next_node != message.destination
            ):
                self._finish(
                    message,
                    now,
                    injected_at,
                    DropReason.TABLE_CORRUPT,
                    f"next hop {decision.next_node} is quarantined with a "
                    f"corrupt table",
                    subject=node_subject(decision.next_node),
                )
                continue
            if (
                self._network.churned
                and decision.next_node != current
                and not self._network.live_graph.has_edge(
                    current, decision.next_node
                )
            ):
                if self._network.scheme.graph.has_edge(
                    current, decision.next_node
                ):
                    # Stale table forwarding over a mutated-away edge.
                    self._finish(
                        message,
                        now,
                        injected_at,
                        DropReason.LINK_DOWN,
                        f"link {current}-{decision.next_node} was removed "
                        f"by a topology mutation",
                        subject=link_subject(current, decision.next_node),
                    )
                else:
                    self._finish(
                        message,
                        now,
                        injected_at,
                        DropReason.INVALID_FORWARD,
                        f"{current} forwarded to non-adjacent "
                        f"{decision.next_node}",
                    )
                continue
            # A single-path scheme may have chosen a dead link or node:
            # drop (or retry), as the hop-by-hop walker does.
            chosen_link = frozenset((current, decision.next_node))
            if chosen_link in self._network.failed_links:
                self._finish(
                    message,
                    now,
                    injected_at,
                    DropReason.LINK_DOWN,
                    f"link {current}-{decision.next_node} is down",
                    subject=link_subject(current, decision.next_node),
                )
                continue
            if decision.next_node in self._network.failed_nodes:
                self._finish(
                    message,
                    now,
                    injected_at,
                    DropReason.NODE_DOWN,
                    f"node {decision.next_node} is down",
                    subject=node_subject(decision.next_node),
                )
                continue
            # Serialise forwarding through the node's processor.
            departure = now
            if self._service > 0:
                backlog = max(self._busy_until.get(current, 0.0) - now, 0.0)
                if (
                    self._capacity is not None
                    and backlog / self._service >= self._capacity
                ):
                    self._finish(
                        message,
                        now,
                        injected_at,
                        DropReason.QUEUE_OVERFLOW,
                        f"queue overflow at node {current}",
                        subject=node_subject(current),
                    )
                    continue
                start = max(now, self._busy_until.get(current, 0.0))
                departure = start + self._service
                self._busy_until[current] = departure
            self._forward_counts[current] = (
                self._forward_counts.get(current, 0) + 1
            )
            arrival = departure + self._latency
            if self._tracer is not None and message.traced:
                self._tracer.hop(
                    message.msg_id,
                    node=current,
                    next_node=decision.next_node,
                    hop=message.hops,
                    time=now,
                    duration=arrival - now,
                    attempt=message.attempt,
                )
            message.state = decision.state
            message.path.append(decision.next_node)
            self._push_message(message, arrival, injected_at)
        # Remaining entries can only be fault events (no live messages).
        self._queue.clear()
        records, self._records = self._records, []
        return records
