"""Message-level network simulation.

Two execution modes over the same routing schemes:

* :class:`Network` — an immediate hop-by-hop walker with link-failure
  awareness, used for delivery/stretch measurements.  Full-information
  functions route *around* failed incident links (the exact capability the
  paper defines them for); single-path functions drop when their chosen
  link is down.
* :class:`EventDrivenSimulator` — a discrete-event engine (FIFO links of
  configurable latency, global event queue) for time-domain experiments
  such as congestion-free latency distributions.
"""

from __future__ import annotations

import heapq
import itertools
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core import RoutingScheme
from repro.core.full_information import FullInformationFunction
from repro.errors import RoutingError
from repro.simulator.message import DeliveryRecord, Message

__all__ = ["Network", "EventDrivenSimulator"]

Link = FrozenSet[int]


def _as_links(edges: Iterable[Tuple[int, int]]) -> Set[Link]:
    return {frozenset(edge) for edge in edges}


class Network:
    """A static network executing one routing scheme, with failures."""

    def __init__(
        self,
        scheme: RoutingScheme,
        failed_links: Iterable[Tuple[int, int]] = (),
        failed_nodes: Iterable[int] = (),
    ) -> None:
        self._scheme = scheme
        self._failed: Set[Link] = _as_links(failed_links)
        self._failed_nodes: Set[int] = set(failed_nodes)
        self._counter = itertools.count()

    @property
    def scheme(self) -> RoutingScheme:
        """The routing scheme installed on this network."""
        return self._scheme

    @property
    def failed_links(self) -> Set[Link]:
        """Currently failed links (as frozensets of endpoints)."""
        return set(self._failed)

    def fail_link(self, u: int, v: int) -> None:
        """Mark one link as failed."""
        self._failed.add(frozenset((u, v)))

    def restore_link(self, u: int, v: int) -> None:
        """Bring one link back up."""
        self._failed.discard(frozenset((u, v)))

    @property
    def failed_nodes(self) -> Set[int]:
        """Currently crashed nodes."""
        return set(self._failed_nodes)

    def fail_node(self, node: int) -> None:
        """Crash one node: it neither forwards nor receives."""
        self._failed_nodes.add(node)

    def restore_node(self, node: int) -> None:
        """Bring a crashed node back."""
        self._failed_nodes.discard(node)

    def _blocked_neighbors(self, node: int) -> List[int]:
        return [
            nb
            for nb in self._scheme.graph.neighbor_set(node)
            if frozenset((node, nb)) in self._failed
            or nb in self._failed_nodes
        ]

    def _choose_hop(self, node: int, message: Message):
        """One forwarding decision, honouring failures where possible."""
        function = self._scheme.function(node)
        if isinstance(function, FullInformationFunction) and (
            self._failed or self._failed_nodes
        ):
            return function.next_hop_avoiding(
                int(message.address), self._blocked_neighbors(node)
            )
        return function.next_hop(message.address, message.state)

    def route(self, source: int, destination: int) -> DeliveryRecord:
        """Walk one message from source to destination."""
        message = Message(
            msg_id=next(self._counter),
            source=source,
            destination=destination,
            address=self._scheme.address_of(destination),
            path=[source],
        )
        if source in self._failed_nodes or destination in self._failed_nodes:
            return self._drop(message, "endpoint node is down")
        limit = self._scheme.hop_limit()
        current = source
        while current != destination:
            if message.hops >= limit:
                return self._drop(message, f"hop limit {limit} exceeded")
            try:
                decision = self._choose_hop(current, message)
            except RoutingError as exc:
                return self._drop(message, str(exc))
            next_node = decision.next_node
            if frozenset((current, next_node)) in self._failed:
                return self._drop(
                    message, f"link {current}-{next_node} is down"
                )
            if next_node in self._failed_nodes:
                return self._drop(message, f"node {next_node} is down")
            if next_node != current and not self._scheme.graph.has_edge(
                current, next_node
            ):
                return self._drop(
                    message, f"{current} forwarded to non-adjacent {next_node}"
                )
            message.state = decision.state
            message.path.append(next_node)
            current = next_node
        return DeliveryRecord(
            msg_id=message.msg_id,
            source=source,
            destination=destination,
            delivered=True,
            hops=message.hops,
            path=tuple(message.path),
        )

    def _drop(self, message: Message, reason: str) -> DeliveryRecord:
        return DeliveryRecord(
            msg_id=message.msg_id,
            source=message.source,
            destination=message.destination,
            delivered=False,
            hops=message.hops,
            path=tuple(message.path),
            drop_reason=reason,
        )


class EventDrivenSimulator:
    """Discrete-event execution with FIFO forwarding queues.

    Each hop costs ``link_latency`` time units on the wire; when
    ``node_service_time`` is positive every node additionally serialises its
    forwarding work (one message at a time), so traffic concentrating on a
    node — the Theorem 4 hub, a hotspot destination — queues up and the
    latency distribution shows it.  ``queue_capacity`` (in messages of
    backlog) turns overload into explicit drops.
    """

    def __init__(
        self,
        scheme: RoutingScheme,
        link_latency: float = 1.0,
        failed_links: Iterable[Tuple[int, int]] = (),
        node_service_time: float = 0.0,
        queue_capacity: Optional[int] = None,
        failed_nodes: Iterable[int] = (),
    ) -> None:
        if link_latency <= 0:
            raise RoutingError(f"link latency must be positive, got {link_latency}")
        if node_service_time < 0:
            raise RoutingError(
                f"service time must be non-negative, got {node_service_time}"
            )
        if queue_capacity is not None and queue_capacity < 1:
            raise RoutingError(
                f"queue capacity must be positive, got {queue_capacity}"
            )
        self._network = Network(scheme, failed_links, failed_nodes)
        self._scheme = scheme
        self._latency = link_latency
        self._service = node_service_time
        self._capacity = queue_capacity
        self._queue: List[Tuple[float, int, Message, float]] = []
        self._sequence = itertools.count()
        self._records: List[DeliveryRecord] = []
        self._busy_until: dict[int, float] = {}
        self._forward_counts: dict[int, int] = {}

    @property
    def forward_counts(self) -> dict[int, int]:
        """Messages forwarded per node in the last :meth:`run` (congestion)."""
        return dict(self._forward_counts)

    def inject(self, source: int, destination: int, at_time: float = 0.0) -> None:
        """Schedule a message injection."""
        message = Message(
            msg_id=next(self._network._counter),
            source=source,
            destination=destination,
            address=self._scheme.address_of(destination),
            path=[source],
        )
        heapq.heappush(
            self._queue, (at_time, next(self._sequence), message, at_time)
        )

    def run(self) -> List[DeliveryRecord]:
        """Process all events; returns one record per injected message."""
        limit_base = self._scheme.hop_limit()
        self._busy_until = {}
        self._forward_counts = {}
        while self._queue:
            now, _, message, injected_at = heapq.heappop(self._queue)
            current = message.path[-1]
            if current == message.destination:
                self._records.append(
                    DeliveryRecord(
                        msg_id=message.msg_id,
                        source=message.source,
                        destination=message.destination,
                        delivered=True,
                        hops=message.hops,
                        path=tuple(message.path),
                        latency=now - injected_at,
                    )
                )
                continue
            if message.hops >= limit_base:
                self._records.append(
                    DeliveryRecord(
                        msg_id=message.msg_id,
                        source=message.source,
                        destination=message.destination,
                        delivered=False,
                        hops=message.hops,
                        path=tuple(message.path),
                        latency=now - injected_at,
                        drop_reason="hop limit exceeded",
                    )
                )
                continue
            try:
                decision = self._network._choose_hop(current, message)
            except RoutingError as exc:
                self._records.append(
                    DeliveryRecord(
                        msg_id=message.msg_id,
                        source=message.source,
                        destination=message.destination,
                        delivered=False,
                        hops=message.hops,
                        path=tuple(message.path),
                        latency=now - injected_at,
                        drop_reason=str(exc),
                    )
                )
                continue
            # A single-path scheme may have chosen a dead link or node:
            # drop, as the hop-by-hop walker does.
            chosen_link = frozenset((current, decision.next_node))
            if (
                chosen_link in self._network.failed_links
                or decision.next_node in self._network.failed_nodes
            ):
                if decision.next_node in self._network.failed_nodes:
                    reason = f"node {decision.next_node} is down"
                else:
                    reason = f"link {current}-{decision.next_node} is down"
                self._records.append(
                    DeliveryRecord(
                        msg_id=message.msg_id,
                        source=message.source,
                        destination=message.destination,
                        delivered=False,
                        hops=message.hops,
                        path=tuple(message.path),
                        latency=now - injected_at,
                        drop_reason=reason,
                    )
                )
                continue
            # Serialise forwarding through the node's processor.
            departure = now
            if self._service > 0:
                backlog = max(self._busy_until.get(current, 0.0) - now, 0.0)
                if (
                    self._capacity is not None
                    and backlog / self._service >= self._capacity
                ):
                    self._records.append(
                        DeliveryRecord(
                            msg_id=message.msg_id,
                            source=message.source,
                            destination=message.destination,
                            delivered=False,
                            hops=message.hops,
                            path=tuple(message.path),
                            latency=now - injected_at,
                            drop_reason=f"queue overflow at node {current}",
                        )
                    )
                    continue
                start = max(now, self._busy_until.get(current, 0.0))
                departure = start + self._service
                self._busy_until[current] = departure
            self._forward_counts[current] = (
                self._forward_counts.get(current, 0) + 1
            )
            message.state = decision.state
            message.path.append(decision.next_node)
            heapq.heappush(
                self._queue,
                (
                    departure + self._latency,
                    next(self._sequence),
                    message,
                    injected_at,
                ),
            )
        records, self._records = self._records, []
        return records
