"""Message-level network simulation.

Two execution modes over the same routing schemes:

* :class:`Network` — an immediate hop-by-hop walker with link-failure
  awareness, used for delivery/stretch measurements.  Full-information
  functions route *around* failed incident links (the exact capability the
  paper defines them for); detour-wrapped functions bounce once to a live
  neighbour; plain single-path functions drop when their chosen link is
  down.
* :class:`EventDrivenSimulator` — a discrete-event engine (FIFO links of
  configurable latency, global event queue) for time-domain experiments:
  congestion-free latency distributions, and — given a
  :class:`~repro.simulator.chaos.FaultSchedule` — resilience under churn,
  with optional source-side :class:`~repro.simulator.recovery.RetryPolicy`
  recovery.

Every drop is classified by the structured
:class:`~repro.simulator.message.DropReason` taxonomy; the human-readable
context (which link, which node) rides in ``DeliveryRecord.drop_detail``.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.bitio import BitArray
from repro.core import HopDecision, RoutingScheme
from repro.core.detour import DetourFunction
from repro.core.full_information import FullInformationFunction
from repro.core.scheme import LocalRoutingFunction
from repro.errors import IntegrityError, ReproError, RoutingError
from repro.observability.registry import get_registry
from repro.observability.tracer import Tracer, link_subject, node_subject
from repro.simulator.chaos import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    TableMutation,
)
from repro.simulator.message import DeliveryRecord, DropReason, Message
from repro.simulator.recovery import RetryPolicy

__all__ = ["Network", "EventDrivenSimulator"]

Link = FrozenSet[int]

_NAN = float("nan")


def _live_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Normalise disabled tracers to ``None`` so the hot path pays one test."""
    if tracer is not None and tracer.enabled:
        return tracer
    return None


def _as_links(edges: Iterable[Tuple[int, int]]) -> Set[Link]:
    return {frozenset(edge) for edge in edges}


def _drop_record(
    message: Message,
    reason: DropReason,
    detail: Optional[str] = None,
    latency: float = 0.0,
    injected_at: float = _NAN,
    completed_at: float = _NAN,
) -> DeliveryRecord:
    """The single builder for drop records (walker and event engine)."""
    return DeliveryRecord(
        msg_id=message.msg_id,
        source=message.source,
        destination=message.destination,
        delivered=False,
        hops=message.hops,
        path=tuple(message.path),
        latency=latency,
        drop_reason=reason,
        drop_detail=detail,
        retries=message.attempt,
        injected_at=injected_at,
        completed_at=completed_at,
    )


def _delivered_record(
    message: Message,
    latency: float = 0.0,
    injected_at: float = _NAN,
    completed_at: float = _NAN,
) -> DeliveryRecord:
    return DeliveryRecord(
        msg_id=message.msg_id,
        source=message.source,
        destination=message.destination,
        delivered=True,
        hops=message.hops,
        path=tuple(message.path),
        latency=latency,
        retries=message.attempt,
        injected_at=injected_at,
        completed_at=completed_at,
    )


class Network:
    """A static network executing one routing scheme, with failures."""

    def __init__(
        self,
        scheme: RoutingScheme,
        failed_links: Iterable[Tuple[int, int]] = (),
        failed_nodes: Iterable[int] = (),
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._scheme = scheme
        self._failed: Set[Link] = _as_links(failed_links)
        self._failed_nodes: Set[int] = set(failed_nodes)
        self._counter = itertools.count()
        self._tracer = _live_tracer(tracer)
        # The graph's shared context is the healer's knowledge source: it
        # memoises each node's pristine serialised function, so repeat
        # corruptions and heals of one node encode it exactly once.
        self._ctx = scheme.ctx
        self._ctx.set_tracer(self._tracer)
        # Table-corruption overlay: the scheme object itself stays pristine.
        self._corrupt_tables: Dict[int, BitArray] = {}
        self._corrupt_functions: Dict[int, LocalRoutingFunction] = {}
        self._healed_functions: Dict[int, LocalRoutingFunction] = {}
        self._quarantined: Set[int] = set()
        self._corruption_stats: Dict[str, int] = {
            "injected": 0,
            "detected": 0,
            "undetected": 0,
            "healed": 0,
        }

    @property
    def scheme(self) -> RoutingScheme:
        """The routing scheme installed on this network."""
        return self._scheme

    @property
    def failed_links(self) -> Set[Link]:
        """Currently failed links (as frozensets of endpoints)."""
        return set(self._failed)

    def fail_link(self, u: int, v: int) -> None:
        """Mark one link as failed."""
        self._failed.add(frozenset((u, v)))

    def restore_link(self, u: int, v: int) -> None:
        """Bring one link back up."""
        self._failed.discard(frozenset((u, v)))

    @property
    def failed_nodes(self) -> Set[int]:
        """Currently crashed nodes."""
        return set(self._failed_nodes)

    def fail_node(self, node: int) -> None:
        """Crash one node: it neither forwards nor receives."""
        self._failed_nodes.add(node)

    def restore_node(self, node: int) -> None:
        """Bring a crashed node back."""
        self._failed_nodes.discard(node)

    def apply_fault(self, event: FaultEvent) -> None:
        """Apply one scheduled fault event to the live failure state."""
        if event.kind is FaultKind.LINK_DOWN:
            self.fail_link(*event.subject)
        elif event.kind is FaultKind.LINK_UP:
            self.restore_link(*event.subject)
        elif event.kind is FaultKind.NODE_DOWN:
            self.fail_node(event.subject[0])
        elif event.kind is FaultKind.NODE_UP:
            self.restore_node(event.subject[0])
        elif event.kind is FaultKind.TABLE_CORRUPT:
            assert event.mutation is not None  # validated by FaultEvent
            self.corrupt_table(event.subject[0], event.mutation)
        else:  # TABLE_REPAIR
            self.heal_table(event.subject[0])

    # -- table corruption ----------------------------------------------------

    @property
    def corrupted_nodes(self) -> Set[int]:
        """Nodes whose packed function bits are currently mutated."""
        return set(self._corrupt_tables)

    @property
    def quarantined_nodes(self) -> Set[int]:
        """Nodes whose corruption was detected: they no longer forward."""
        return set(self._quarantined)

    def corruption_summary(self) -> Dict[str, int]:
        """Lifecycle counts: injected / detected / undetected / healed."""
        return dict(self._corruption_stats)

    def corrupt_table(self, node: int, mutation: TableMutation) -> None:
        """Overwrite ``node``'s packed function bits with a mutated copy.

        The damage lives in an overlay; the scheme object itself stays
        pristine, modelling the node's *storage* going bad while the
        network's graph+model knowledge (the shared context, the healer's
        source) survives.
        """
        pristine = self._ctx.pristine_bits(self._scheme, node)
        self._corrupt_tables[node] = mutation.apply(pristine)
        self._corrupt_functions.pop(node, None)
        self._healed_functions.pop(node, None)
        # Fresh damage supersedes any earlier detection verdict.
        self._quarantined.discard(node)
        self._corruption_stats["injected"] += 1
        get_registry().counter(
            "repro_table_corruptions_total", kind=mutation.kind.name
        ).inc()
        if self._tracer is not None:
            self._tracer.corrupt(node=node, detail=mutation.describe())

    def heal_table(self, node: int) -> bool:
        """Rebuild ``node``'s function pristine from graph+model knowledge.

        The replacement function is decoded from the context's memoised
        pristine bits — the same serialised knowledge the corruption step
        snapshotted — so healing is an explicit re-install, not a silent
        fallback onto the scheme's in-memory cache.  Returns whether there
        was anything to heal (corruption or quarantine state cleared).
        """
        was_broken = (
            node in self._corrupt_tables or node in self._quarantined
        )
        if not was_broken:
            return False
        self._corrupt_tables.pop(node, None)
        self._corrupt_functions.pop(node, None)
        self._quarantined.discard(node)
        self._healed_functions[node] = self._scheme.decode_function(
            node, self._ctx.pristine_bits(self._scheme, node)
        )
        self._corruption_stats["healed"] += 1
        get_registry().counter("repro_table_heals_total").inc()
        if self._tracer is not None:
            self._tracer.heal(node=node)
        return True

    def _detected(self, node: int, why: str) -> IntegrityError:
        """Quarantine ``node`` after a detection; returns the error to raise."""
        if node not in self._quarantined:
            self._quarantined.add(node)
            self._corruption_stats["detected"] += 1
            get_registry().counter(
                "repro_table_corruption_detected_total"
            ).inc()
            if self._tracer is not None:
                self._tracer.quarantine(node=node, detail=why)
        return IntegrityError(f"node {node}: {why}")

    def _function_for(self, node: int) -> LocalRoutingFunction:
        """The live function at ``node`` — the corrupted overlay wins.

        Decoding the mutated bits is the detection point: framed schemes
        raise :class:`IntegrityError` on the checksum, and even unframed
        schemes detect *structurally* invalid encodings (prefix-code
        truncation, out-of-range ports).  A mutation that still decodes is
        an **undetected** corruption — the garbage function is installed
        and silently misroutes, exactly the failure mode integrity framing
        exists to close.
        """
        if node in self._corrupt_tables:
            overlay = self._corrupt_functions.get(node)
            if overlay is None:
                try:
                    overlay = self._scheme.decode_function(
                        node, self._corrupt_tables[node]
                    )
                except IntegrityError as exc:
                    raise self._detected(node, str(exc)) from exc
                except (ReproError, KeyError, IndexError, TypeError,
                        ValueError) as exc:
                    raise self._detected(
                        node,
                        f"corrupted table failed to decode "
                        f"({type(exc).__name__}: {exc})",
                    ) from exc
                self._corrupt_functions[node] = overlay
                self._corruption_stats["undetected"] += 1
                get_registry().counter(
                    "repro_table_corruption_undetected_total"
                ).inc()
            return overlay
        healed = self._healed_functions.get(node)
        if healed is not None:
            return healed
        return self._scheme.function(node)

    def _valid_forward(self, node: int, next_node: object) -> bool:
        """Whether a forwarding decision names the node itself or a
        neighbour — the runtime port check a real router performs."""
        if not isinstance(next_node, int) or isinstance(next_node, bool):
            return False
        if next_node == node:
            return True
        return (
            1 <= next_node <= self._scheme.graph.n
            and self._scheme.graph.has_edge(node, next_node)
        )

    def _blocked_neighbors(
        self, node: int, destination: Optional[int] = None
    ) -> List[int]:
        # Quarantined nodes refuse to forward but can still *receive*:
        # the destination itself is never routed around.
        return [
            nb
            for nb in self._scheme.graph.neighbor_set(node)
            if frozenset((node, nb)) in self._failed
            or nb in self._failed_nodes
            or (nb in self._quarantined and nb != destination)
        ]

    def _choose_hop(self, node: int, message: Message) -> HopDecision:
        """One forwarding decision, honouring failures where possible.

        Fault-aware functions — full-information (all shortest-path edges
        stored) and detour wrappers (bounce once to a live neighbour) — are
        told which incident links are unusable; plain single-path functions
        answer from their table alone and may well pick a dead link.

        On a node with a corrupted table, *any* failure of the decoded
        function — an exception or an invalid port — is runtime detection
        and raises :class:`IntegrityError` (quarantining the node) instead
        of surfacing a garbage answer.
        """
        function = self._function_for(node)
        corrupted = node in self._corrupt_tables
        try:
            if self._failed or self._failed_nodes or self._quarantined:
                blocked = self._blocked_neighbors(node, message.destination)
                if isinstance(function, FullInformationFunction):
                    decision = function.next_hop_avoiding(
                        int(message.address), blocked
                    )
                elif isinstance(function, DetourFunction):
                    decision = function.next_hop_avoiding(
                        message.address, blocked, message.state
                    )
                else:
                    decision = function.next_hop(
                        message.address, message.state
                    )
            else:
                decision = function.next_hop(message.address, message.state)
        except RoutingError:
            if corrupted:
                raise self._detected(
                    node, "corrupted table produced a routing failure"
                ) from None
            raise
        except (ReproError, KeyError, IndexError, TypeError,
                ValueError) as exc:
            if corrupted:
                raise self._detected(
                    node,
                    f"corrupted table raised "
                    f"{type(exc).__name__} while routing",
                ) from exc
            raise
        if corrupted and not self._valid_forward(node, decision.next_node):
            raise self._detected(
                node,
                f"corrupted table named invalid next hop "
                f"{decision.next_node!r}",
            )
        return decision

    def _walk_drop(
        self,
        message: Message,
        current: int,
        reason: DropReason,
        detail: str,
        subject: Optional[Tuple[str, ...]] = None,
    ) -> DeliveryRecord:
        if self._tracer is not None:
            self._tracer.drop(
                message.msg_id,
                node=current,
                reason=reason.name,
                detail=detail,
                subject=subject,
                attempt=message.attempt,
                hop=message.hops,
            )
        return _drop_record(message, reason, detail)

    def route(self, source: int, destination: int) -> DeliveryRecord:
        """Walk one message from source to destination."""
        message = Message(
            msg_id=next(self._counter),
            source=source,
            destination=destination,
            address=self._scheme.address_of(destination),
            path=[source],
        )
        tracer = self._tracer
        if tracer is not None:
            tracer.inject(message.msg_id, source, destination)
        if source in self._failed_nodes or destination in self._failed_nodes:
            down = source if source in self._failed_nodes else destination
            return self._walk_drop(
                message,
                source,
                DropReason.ENDPOINT_DOWN,
                f"endpoint node {down} is down",
                subject=node_subject(down),
            )
        limit = self._scheme.hop_limit()
        current = source
        while current != destination:
            if current in self._quarantined:
                return self._walk_drop(
                    message,
                    current,
                    DropReason.TABLE_CORRUPT,
                    f"node {current} is quarantined with a corrupt table",
                    subject=node_subject(current),
                )
            if message.hops >= limit:
                return self._walk_drop(
                    message,
                    current,
                    DropReason.HOP_LIMIT,
                    f"hop limit {limit} exceeded",
                )
            try:
                decision = self._choose_hop(current, message)
            except IntegrityError as exc:
                return self._walk_drop(
                    message,
                    current,
                    DropReason.TABLE_CORRUPT,
                    str(exc),
                    subject=node_subject(current),
                )
            except RoutingError as exc:
                return self._walk_drop(
                    message, current, DropReason.NO_ROUTE, str(exc)
                )
            next_node = decision.next_node
            if next_node in self._quarantined and next_node != destination:
                return self._walk_drop(
                    message,
                    current,
                    DropReason.TABLE_CORRUPT,
                    f"next hop {next_node} is quarantined with a corrupt "
                    f"table",
                    subject=node_subject(next_node),
                )
            if frozenset((current, next_node)) in self._failed:
                return self._walk_drop(
                    message,
                    current,
                    DropReason.LINK_DOWN,
                    f"link {current}-{next_node} is down",
                    subject=link_subject(current, next_node),
                )
            if next_node in self._failed_nodes:
                return self._walk_drop(
                    message,
                    current,
                    DropReason.NODE_DOWN,
                    f"node {next_node} is down",
                    subject=node_subject(next_node),
                )
            if next_node != current and not self._scheme.graph.has_edge(
                current, next_node
            ):
                return self._walk_drop(
                    message,
                    current,
                    DropReason.INVALID_FORWARD,
                    f"{current} forwarded to non-adjacent {next_node}",
                )
            if tracer is not None:
                tracer.hop(
                    message.msg_id,
                    node=current,
                    next_node=next_node,
                    hop=message.hops,
                    attempt=message.attempt,
                )
            message.state = decision.state
            message.path.append(next_node)
            current = next_node
        if tracer is not None:
            tracer.deliver(
                message.msg_id,
                node=destination,
                hop=message.hops,
                attempt=message.attempt,
            )
        return _delivered_record(message)


# Heap entries: (time, priority, sequence, payload, first_injected_at).
# Fault events carry priority 0 so a link that dies at time t is dead for
# every message hop scheduled at the same t.
_FAULT_PRIORITY = 0
_MESSAGE_PRIORITY = 1
_Entry = Tuple[float, int, int, Union[Message, FaultEvent], float]

# Drops worth retrying: the condition that caused them can heal as the
# fault schedule advances.  A scheme bug (INVALID_FORWARD) cannot.
_RETRYABLE = frozenset(
    {
        DropReason.ENDPOINT_DOWN,
        DropReason.LINK_DOWN,
        DropReason.NODE_DOWN,
        DropReason.HOP_LIMIT,
        DropReason.NO_ROUTE,
        DropReason.QUEUE_OVERFLOW,
        DropReason.TABLE_CORRUPT,
    }
)


class EventDrivenSimulator:
    """Discrete-event execution with FIFO forwarding queues.

    Each hop costs ``link_latency`` time units on the wire; when
    ``node_service_time`` is positive every node additionally serialises its
    forwarding work (one message at a time), so traffic concentrating on a
    node — the Theorem 4 hub, a hotspot destination — queues up and the
    latency distribution shows it.  ``queue_capacity`` (in messages of
    backlog) turns overload into explicit drops.

    ``fault_schedule`` interleaves timed link/node failures and recoveries
    with the message events, so the failure set evolves *during* the run;
    ``retry_policy`` re-injects dropped messages at their source after an
    exponential backoff, modelling end-to-end recovery.  Delivered records
    then report the total time including backoff, and ``retries`` counts
    re-transmissions.

    ``TABLE_CORRUPT`` fault events mutate a node's packed routing function
    in place.  When the damage is *detected* (checksum or structural
    failure at decode/route time) the node is quarantined, and — with a
    ``repair_delay`` configured — a self-heal event is scheduled
    ``repair_delay`` time units after detection, rebuilding the table
    pristine from the scheme's graph+model knowledge.  The detection
    latency (corruption time to detection time) lands in the
    ``repro_corruption_detection_latency`` histogram.

    An enabled :class:`~repro.observability.tracer.Tracer` receives
    inject/hop/retry/fault/drop/deliver span events — plus
    corrupt/quarantine/heal for the table-corruption lifecycle;
    ``tracer=None`` (the default) keeps the event loop identical to the
    untraced engine.
    """

    def __init__(
        self,
        scheme: RoutingScheme,
        link_latency: float = 1.0,
        failed_links: Iterable[Tuple[int, int]] = (),
        node_service_time: float = 0.0,
        queue_capacity: Optional[int] = None,
        failed_nodes: Iterable[int] = (),
        fault_schedule: Optional[FaultSchedule] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_seed: int = 0,
        tracer: Optional[Tracer] = None,
        repair_delay: Optional[float] = None,
    ) -> None:
        if link_latency <= 0:
            raise RoutingError(f"link latency must be positive, got {link_latency}")
        if node_service_time < 0:
            raise RoutingError(
                f"service time must be non-negative, got {node_service_time}"
            )
        if queue_capacity is not None and queue_capacity < 1:
            raise RoutingError(
                f"queue capacity must be positive, got {queue_capacity}"
            )
        if repair_delay is not None and repair_delay <= 0:
            raise RoutingError(
                f"repair delay must be positive, got {repair_delay}"
            )
        self._network = Network(scheme, failed_links, failed_nodes)
        self._scheme = scheme
        self._latency = link_latency
        self._service = node_service_time
        self._capacity = queue_capacity
        self._schedule = fault_schedule
        self._retry = retry_policy
        self._retry_rng = random.Random(retry_seed)
        self._repair_delay = repair_delay
        self._queue: List[_Entry] = []
        self._sequence = itertools.count()
        self._records: List[DeliveryRecord] = []
        self._busy_until: dict[int, float] = {}
        self._forward_counts: dict[int, int] = {}
        self._corrupted_at: Dict[int, float] = {}
        self._reacted: Set[int] = set()
        self._live_messages = 0
        self._tracer = _live_tracer(tracer)

    @property
    def network(self) -> Network:
        """The underlying failure-state holder (live during a run)."""
        return self._network

    @property
    def forward_counts(self) -> dict[int, int]:
        """Messages forwarded per node in the last :meth:`run` (congestion)."""
        return dict(self._forward_counts)

    def inject(self, source: int, destination: int, at_time: float = 0.0) -> None:
        """Schedule a message injection."""
        message = Message(
            msg_id=next(self._network._counter),
            source=source,
            destination=destination,
            address=self._scheme.address_of(destination),
            path=[source],
        )
        if self._tracer is not None:
            self._tracer.inject(message.msg_id, source, destination, time=at_time)
        self._push_message(message, at_time, at_time)

    def _push_message(
        self, message: Message, at_time: float, injected_at: float
    ) -> None:
        heapq.heappush(
            self._queue,
            (
                at_time,
                _MESSAGE_PRIORITY,
                next(self._sequence),
                message,
                injected_at,
            ),
        )
        self._live_messages += 1

    def _finish(
        self,
        message: Message,
        now: float,
        injected_at: float,
        reason: Optional[DropReason],
        detail: Optional[str] = None,
        subject: Optional[Tuple[str, ...]] = None,
    ) -> None:
        """Record a final outcome, or schedule a retry for a drop.

        ``subject`` names the failed entity behind a fault-caused drop
        (``("link", u, v)`` / ``("node", u)``) so traces can attribute the
        drop to the fault window that produced it.
        """
        tracer = self._tracer
        if reason is None:
            if tracer is not None:
                tracer.deliver(
                    message.msg_id,
                    node=message.destination,
                    time=now,
                    hop=message.hops,
                    attempt=message.attempt,
                )
            self._records.append(
                _delivered_record(
                    message,
                    latency=now - injected_at,
                    injected_at=injected_at,
                    completed_at=now,
                )
            )
            return
        if (
            self._retry is not None
            and reason in _RETRYABLE
            and message.attempt < self._retry.max_retries
        ):
            backoff = self._retry.delay(message.attempt, self._retry_rng)
            fresh = Message(
                msg_id=message.msg_id,
                source=message.source,
                destination=message.destination,
                address=message.address,
                path=[message.source],
                attempt=message.attempt + 1,
            )
            if tracer is not None:
                tracer.retry(
                    message.msg_id,
                    source=message.source,
                    attempt=fresh.attempt,
                    time=now,
                    reason=reason.name,
                    duration=backoff,
                )
            self._push_message(fresh, now + backoff, injected_at)
            return
        if tracer is not None:
            tracer.drop(
                message.msg_id,
                node=message.path[-1],
                reason=reason.name,
                time=now,
                detail=detail,
                subject=subject,
                attempt=message.attempt,
                hop=message.hops,
            )
        self._records.append(
            _drop_record(
                message,
                reason,
                detail,
                latency=now - injected_at,
                injected_at=injected_at,
                completed_at=now,
            )
        )

    def _apply_timed_fault(self, event: FaultEvent, now: float) -> None:
        """Apply one scheduled fault, with corruption-lifecycle tracing.

        The internal :class:`Network` is untraced (the engine owns span
        emission with proper simulated timestamps), so corrupt/heal spans
        are emitted here and quarantine spans in :meth:`_on_detection`.
        """
        tracer = self._tracer
        if event.kind is FaultKind.TABLE_CORRUPT:
            node = event.subject[0]
            self._network.apply_fault(event)
            self._corrupted_at[node] = now
            # Fresh damage re-arms detection for this node.
            self._reacted.discard(node)
            if tracer is not None:
                detail = (
                    event.mutation.describe()
                    if event.mutation is not None
                    else None
                )
                tracer.corrupt(node=node, time=now, detail=detail)
            return
        if event.kind is FaultKind.TABLE_REPAIR:
            node = event.subject[0]
            healed = self._network.heal_table(node)
            self._corrupted_at.pop(node, None)
            self._reacted.discard(node)
            if healed and tracer is not None:
                tracer.heal(node=node, time=now)
            return
        if tracer is not None:
            subject = (
                link_subject(*event.subject)
                if len(event.subject) == 2
                else node_subject(event.subject[0])
            )
            tracer.fault(kind=event.kind.value, subject=subject, time=now)
        self._network.apply_fault(event)

    def _on_detection(self, node: int, now: float) -> None:
        """React once per corruption episode: record latency, plan the heal."""
        if node in self._reacted:
            return
        self._reacted.add(node)
        if self._tracer is not None:
            self._tracer.quarantine(node=node, time=now)
        corrupted_since = self._corrupted_at.pop(node, None)
        if corrupted_since is not None:
            get_registry().histogram(
                "repro_corruption_detection_latency"
            ).observe(now - corrupted_since)
        if self._repair_delay is not None:
            heal_time = now + self._repair_delay
            heapq.heappush(
                self._queue,
                (
                    heal_time,
                    _FAULT_PRIORITY,
                    next(self._sequence),
                    FaultEvent.table_repair(heal_time, node),
                    heal_time,
                ),
            )

    def run(self) -> List[DeliveryRecord]:
        """Process all events; returns one record per injected message."""
        limit_base = self._scheme.hop_limit()
        self._busy_until = {}
        self._forward_counts = {}
        if self._schedule is not None:
            for event in self._schedule:
                heapq.heappush(
                    self._queue,
                    (
                        event.time,
                        _FAULT_PRIORITY,
                        next(self._sequence),
                        event,
                        event.time,
                    ),
                )
        while self._queue and self._live_messages:
            now, priority, _, payload, injected_at = heapq.heappop(self._queue)
            if priority == _FAULT_PRIORITY:
                assert isinstance(payload, FaultEvent)
                self._apply_timed_fault(payload, now)
                continue
            message = payload
            assert isinstance(message, Message)
            self._live_messages -= 1
            current = message.path[-1]
            if current == message.destination:
                if current in self._network.failed_nodes:
                    self._finish(
                        message,
                        now,
                        injected_at,
                        DropReason.ENDPOINT_DOWN,
                        f"destination {current} crashed before arrival",
                        subject=node_subject(current),
                    )
                else:
                    self._finish(message, now, injected_at, None)
                continue
            if current in self._network.failed_nodes:
                reason = (
                    DropReason.ENDPOINT_DOWN
                    if message.hops == 0
                    else DropReason.NODE_DOWN
                )
                self._finish(
                    message,
                    now,
                    injected_at,
                    reason,
                    f"node {current} holding the message is down",
                    subject=node_subject(current),
                )
                continue
            if current in self._network._quarantined:
                self._finish(
                    message,
                    now,
                    injected_at,
                    DropReason.TABLE_CORRUPT,
                    f"node {current} is quarantined with a corrupt table",
                    subject=node_subject(current),
                )
                continue
            if message.hops >= limit_base:
                self._finish(
                    message,
                    now,
                    injected_at,
                    DropReason.HOP_LIMIT,
                    f"hop limit {limit_base} exceeded",
                )
                continue
            try:
                decision = self._network._choose_hop(current, message)
            except IntegrityError as exc:
                self._on_detection(current, now)
                self._finish(
                    message,
                    now,
                    injected_at,
                    DropReason.TABLE_CORRUPT,
                    str(exc),
                    subject=node_subject(current),
                )
                continue
            except RoutingError as exc:
                self._finish(
                    message, now, injected_at, DropReason.NO_ROUTE, str(exc)
                )
                continue
            if (
                decision.next_node in self._network._quarantined
                and decision.next_node != message.destination
            ):
                self._finish(
                    message,
                    now,
                    injected_at,
                    DropReason.TABLE_CORRUPT,
                    f"next hop {decision.next_node} is quarantined with a "
                    f"corrupt table",
                    subject=node_subject(decision.next_node),
                )
                continue
            # A single-path scheme may have chosen a dead link or node:
            # drop (or retry), as the hop-by-hop walker does.
            chosen_link = frozenset((current, decision.next_node))
            if chosen_link in self._network.failed_links:
                self._finish(
                    message,
                    now,
                    injected_at,
                    DropReason.LINK_DOWN,
                    f"link {current}-{decision.next_node} is down",
                    subject=link_subject(current, decision.next_node),
                )
                continue
            if decision.next_node in self._network.failed_nodes:
                self._finish(
                    message,
                    now,
                    injected_at,
                    DropReason.NODE_DOWN,
                    f"node {decision.next_node} is down",
                    subject=node_subject(decision.next_node),
                )
                continue
            # Serialise forwarding through the node's processor.
            departure = now
            if self._service > 0:
                backlog = max(self._busy_until.get(current, 0.0) - now, 0.0)
                if (
                    self._capacity is not None
                    and backlog / self._service >= self._capacity
                ):
                    self._finish(
                        message,
                        now,
                        injected_at,
                        DropReason.QUEUE_OVERFLOW,
                        f"queue overflow at node {current}",
                        subject=node_subject(current),
                    )
                    continue
                start = max(now, self._busy_until.get(current, 0.0))
                departure = start + self._service
                self._busy_until[current] = departure
            self._forward_counts[current] = (
                self._forward_counts.get(current, 0) + 1
            )
            arrival = departure + self._latency
            if self._tracer is not None:
                self._tracer.hop(
                    message.msg_id,
                    node=current,
                    next_node=decision.next_node,
                    hop=message.hops,
                    time=now,
                    duration=arrival - now,
                    attempt=message.attempt,
                )
            message.state = decision.state
            message.path.append(decision.next_node)
            self._push_message(message, arrival, injected_at)
        # Remaining entries can only be fault events (no live messages).
        self._queue.clear()
        records, self._records = self._records, []
        return records
