"""Source-side recovery: retry with exponential backoff and jitter.

Under a *dynamic* fault schedule a drop is not final — the link that
killed the message may be up again a moment later.  :class:`RetryPolicy`
gives the event-driven simulator a production-style recovery loop: a
capped number of re-transmissions, exponentially growing delays, and
multiplicative jitter so synchronised sources do not re-collide.

The second half of the recovery story, the :class:`DetourWrapper` scheme
decorator (bounce to a live neighbour instead of dropping), lives in
:mod:`repro.core.detour` and is re-exported here for discoverability.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.detour import DetourFunction, DetourState, DetourWrapper
from repro.errors import ReproError

__all__ = ["RetryPolicy", "DetourFunction", "DetourState", "DetourWrapper"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter and a max-attempt budget.

    ``max_attempts`` counts total transmissions including the first, so
    ``max_attempts=1`` disables retries and ``max_attempts=4`` allows three
    re-transmissions.  The ``k``-th retry (``k = 0, 1, ...``) waits
    ``base_delay * multiplier**k`` time units, capped at ``max_delay`` and
    scaled by a uniform factor in ``[1 - jitter, 1 + jitter]``.
    """

    max_attempts: int = 3
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay <= 0:
            raise ReproError(
                f"base_delay must be positive, got {self.base_delay}"
            )
        if self.multiplier < 1:
            raise ReproError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay < self.base_delay:
            raise ReproError(
                f"max_delay {self.max_delay} below base_delay {self.base_delay}"
            )
        if not 0 <= self.jitter < 1:
            raise ReproError(f"jitter must be in [0, 1), got {self.jitter}")

    @property
    def max_retries(self) -> int:
        """Re-transmissions allowed after the first attempt."""
        return self.max_attempts - 1

    def delay(self, retry: int, rng: random.Random) -> float:
        """Backoff before the ``retry``-th re-transmission (0-based).

        The cap holds for *every* retry index: once the exponent is past
        the point where ``base_delay * multiplier**retry`` reaches
        ``max_delay`` the power is never evaluated, so a large index
        cannot overflow float range where the naive formula would.
        """
        if retry < 0:
            raise ReproError(f"retry index must be >= 0, got {retry}")
        if self.multiplier == 1.0:
            nominal = min(self.base_delay, self.max_delay)
        elif retry >= math.log(
            self.max_delay / self.base_delay, self.multiplier
        ):
            nominal = self.max_delay
        else:
            nominal = min(
                self.base_delay * self.multiplier**retry, self.max_delay
            )
        if self.jitter == 0:
            return nominal
        return nominal * (1 - self.jitter + 2 * self.jitter * rng.random())
