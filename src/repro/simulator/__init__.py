"""Message-level network simulator.

Executes any :class:`~repro.core.scheme.RoutingScheme` on its graph:
immediate walking (:class:`~repro.simulator.network.Network`), discrete
events (:class:`~repro.simulator.network.EventDrivenSimulator`),
reproducible link-failure injection, and delivery/stretch metrics.
"""

from repro.simulator.bootstrap import BootstrapResult, simulate_dissemination
from repro.simulator.failures import (
    sample_incident_failures,
    sample_link_failures,
    sample_node_failures,
)
from repro.simulator.message import DeliveryRecord, Message
from repro.simulator.metrics import RoutingMetrics, summarize
from repro.simulator.network import EventDrivenSimulator, Network
from repro.simulator.workloads import (
    all_to_one,
    hotspot_pairs,
    one_to_all,
    permutation_traffic,
    uniform_pairs,
)

__all__ = [
    "BootstrapResult",
    "DeliveryRecord",
    "EventDrivenSimulator",
    "Message",
    "Network",
    "RoutingMetrics",
    "all_to_one",
    "hotspot_pairs",
    "one_to_all",
    "permutation_traffic",
    "sample_incident_failures",
    "sample_link_failures",
    "sample_node_failures",
    "simulate_dissemination",
    "summarize",
    "uniform_pairs",
]
