"""Message-level network simulator.

Executes any :class:`~repro.core.scheme.RoutingScheme` on its graph:
immediate walking (:class:`~repro.simulator.network.Network`), discrete
events (:class:`~repro.simulator.network.EventDrivenSimulator`),
reproducible static failure injection (:mod:`~repro.simulator.failures`),
dynamic chaos schedules (:mod:`~repro.simulator.chaos`), live topology
churn with incremental repair (:mod:`~repro.simulator.churn`),
retry/backoff recovery (:mod:`~repro.simulator.recovery`), and
delivery/stretch/resilience metrics.
"""

from repro.simulator.bootstrap import BootstrapResult, simulate_dissemination
from repro.simulator.chaos import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    MutationKind,
    TableMutation,
    flapping_links,
    regional_failures,
    renewal_faults,
    table_corruption,
)
from repro.simulator.churn import (
    ChurnSchedule,
    TopologyMutation,
    TopologyMutationKind,
    random_churn,
)
from repro.simulator.failures import (
    sample_incident_failures,
    sample_link_failures,
    sample_node_failures,
)
from repro.simulator.message import DeliveryRecord, DropReason, Message
from repro.simulator.metrics import (
    RoutingMetrics,
    cached_distance_matrix,
    drop_breakdown,
    retry_histogram,
    summarize,
)
from repro.simulator.network import EventDrivenSimulator, Network
from repro.simulator.recovery import DetourWrapper, RetryPolicy
from repro.simulator.workloads import (
    all_to_one,
    hotspot_pairs,
    one_to_all,
    permutation_traffic,
    uniform_pairs,
)

__all__ = [
    "BootstrapResult",
    "ChurnSchedule",
    "DeliveryRecord",
    "DetourWrapper",
    "DropReason",
    "EventDrivenSimulator",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "Message",
    "MutationKind",
    "Network",
    "RetryPolicy",
    "RoutingMetrics",
    "TableMutation",
    "TopologyMutation",
    "TopologyMutationKind",
    "all_to_one",
    "cached_distance_matrix",
    "drop_breakdown",
    "flapping_links",
    "hotspot_pairs",
    "one_to_all",
    "permutation_traffic",
    "random_churn",
    "regional_failures",
    "renewal_faults",
    "retry_histogram",
    "sample_incident_failures",
    "sample_link_failures",
    "sample_node_failures",
    "simulate_dissemination",
    "summarize",
    "table_corruption",
    "uniform_pairs",
]
