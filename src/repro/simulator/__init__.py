"""Message-level network simulator.

Executes any :class:`~repro.core.scheme.RoutingScheme` on its graph:
immediate walking (:class:`~repro.simulator.network.Network`), discrete
events (:class:`~repro.simulator.network.EventDrivenSimulator`),
reproducible static failure injection (:mod:`~repro.simulator.failures`),
dynamic chaos schedules (:mod:`~repro.simulator.chaos`), live topology
churn with incremental repair (:mod:`~repro.simulator.churn`),
retry/backoff recovery (:mod:`~repro.simulator.recovery`),
delivery/stretch/resilience metrics, a vectorised batch kernel behind a
scalar-equivalent boundary (:mod:`~repro.simulator.kernel`), and a
multiprocessing sweep driver sharding ``(graph, seed)`` instances
(:mod:`~repro.simulator.sweep`).
"""

from repro.simulator.bootstrap import BootstrapResult, simulate_dissemination
from repro.simulator.chaos import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    MutationKind,
    TableMutation,
    failure_masks,
    flapping_links,
    regional_failures,
    renewal_faults,
    table_corruption,
)
from repro.simulator.churn import (
    ChurnSchedule,
    TopologyMutation,
    TopologyMutationKind,
    adjacency_mask,
    random_churn,
)
from repro.simulator.failures import (
    sample_incident_failures,
    sample_link_failures,
    sample_node_failures,
)
from repro.simulator.kernel import BatchKernel, run_batch
from repro.simulator.message import (
    DeliveryRecord,
    DropReason,
    Message,
    MessageBatch,
)
from repro.simulator.metrics import (
    RoutingMetrics,
    cached_distance_matrix,
    drop_breakdown,
    retry_histogram,
    summarize,
)
from repro.simulator.network import EventDrivenSimulator, Network
from repro.simulator.recovery import DetourWrapper, RetryPolicy
from repro.simulator.sweep import (
    SweepResult,
    SweepTask,
    run_sweep,
    run_task,
    seed_replicas,
)
from repro.simulator.workloads import (
    all_to_one,
    hotspot_pairs,
    one_to_all,
    permutation_traffic,
    uniform_pairs,
)

__all__ = [
    "BatchKernel",
    "BootstrapResult",
    "ChurnSchedule",
    "DeliveryRecord",
    "DetourWrapper",
    "DropReason",
    "EventDrivenSimulator",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "Message",
    "MessageBatch",
    "MutationKind",
    "Network",
    "RetryPolicy",
    "RoutingMetrics",
    "SweepResult",
    "SweepTask",
    "TableMutation",
    "TopologyMutation",
    "TopologyMutationKind",
    "adjacency_mask",
    "all_to_one",
    "cached_distance_matrix",
    "drop_breakdown",
    "failure_masks",
    "flapping_links",
    "hotspot_pairs",
    "one_to_all",
    "permutation_traffic",
    "random_churn",
    "regional_failures",
    "renewal_faults",
    "retry_histogram",
    "run_batch",
    "run_sweep",
    "run_task",
    "sample_incident_failures",
    "sample_link_failures",
    "sample_node_failures",
    "seed_replicas",
    "simulate_dissemination",
    "summarize",
    "table_corruption",
    "uniform_pairs",
]
