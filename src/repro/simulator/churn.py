"""Live topology churn: time-stamped mutation schedules for running networks.

A :class:`~repro.simulator.chaos.FaultSchedule` perturbs the *availability*
of links and nodes — every fault can be undone and the graph underneath
never changes.  A :class:`ChurnSchedule` instead mutates the topology
itself while an :class:`~repro.simulator.network.EventDrivenSimulator` is
running: links appear and disappear permanently, nodes leave and rejoin.
After a mutation the installed routing tables are *stale* — they describe
a graph that no longer exists — and the simulator's convergence layer
repairs them incrementally (see :mod:`repro.core.repair`), measuring how
long the network routes on stale state and what that staleness costs.

This is the regime of "Compact Routing on Internet-Like Graphs"
(Krioukov/Fall/Yang): statically optimal compact tables meeting an
evolving topology.  All generators here are seeded and fully
deterministic, like the chaos-engine generators they sit beside.

The node set is fixed ``1..n`` throughout (the paper's labelling models
need it): a *leave* isolates a node rather than deleting its label, and a
*join* re-attaches a currently isolated node.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graphs import LabeledGraph

__all__ = [
    "TopologyMutationKind",
    "TopologyMutation",
    "ChurnSchedule",
    "adjacency_mask",
    "random_churn",
]


def adjacency_mask(graph: LabeledGraph) -> np.ndarray:
    """``graph``'s adjacency as a 1-indexed boolean mask.

    ``mask[u, v]`` is True exactly when ``u–v`` is an edge; shape is
    ``[n+1, n+1]`` with row/column 0 as padding so batch consumers index
    by node label.  The batch kernel rebuilds this per topology epoch —
    every :class:`TopologyMutation` becomes one mask swap instead of a
    per-hop ``has_edge`` call.
    """
    n = graph.n
    mask = np.zeros((n + 1, n + 1), dtype=bool)
    mask[1:, 1:] = graph.adjacency_matrix()
    return mask


class TopologyMutationKind(str, enum.Enum):
    """What a single scheduled topology mutation does to the graph."""

    EDGE_ADD = "edge add"
    EDGE_REMOVE = "edge remove"
    NODE_LEAVE = "node leave"
    """Every edge incident to the node is removed; the label stays (the
    node set is fixed ``1..n``) and the node stops forwarding."""
    NODE_JOIN = "node join"
    """A currently isolated node attaches to the listed live nodes."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_EDGE_MUTATIONS = frozenset(
    {TopologyMutationKind.EDGE_ADD, TopologyMutationKind.EDGE_REMOVE}
)


@dataclass(frozen=True)
class TopologyMutation:
    """One time-stamped, permanent change to the live topology.

    Unlike a :class:`~repro.simulator.chaos.FaultEvent` — which the
    network can undo when the matching recovery event fires — a mutation
    has no inverse event: the graph itself changes, and the routing
    scheme must be *repaired* to match it.
    """

    time: float
    kind: TopologyMutationKind
    subject: Tuple[int, ...]
    """``(u, v)`` for edge mutations, ``(node,)`` for a leave,
    ``(node, a, b, ...)`` for a join (the node plus its attachment
    points)."""

    def __post_init__(self) -> None:
        if self.time < 0:
            raise GraphError(
                f"mutation time must be >= 0, got {self.time}"
            )
        if self.kind in _EDGE_MUTATIONS:
            if len(self.subject) != 2:
                raise GraphError(
                    f"{self.kind.value} needs exactly two subject nodes, "
                    f"got {self.subject!r}"
                )
            u, v = self.subject
            if u == v:
                raise GraphError(f"self-loop mutation at node {u}")
        elif self.kind is TopologyMutationKind.NODE_LEAVE:
            if len(self.subject) != 1:
                raise GraphError(
                    f"node leave needs exactly one subject node, "
                    f"got {self.subject!r}"
                )
        else:  # NODE_JOIN
            if len(self.subject) < 2:
                raise GraphError(
                    "node join needs the node plus at least one "
                    f"attachment point, got {self.subject!r}"
                )
            node, attachments = self.subject[0], self.subject[1:]
            if node in attachments:
                raise GraphError(f"node {node} cannot attach to itself")
            if len(set(attachments)) != len(attachments):
                raise GraphError(
                    f"duplicate attachment points in {self.subject!r}"
                )

    # -- convenience constructors ------------------------------------------

    @classmethod
    def edge_add(cls, time: float, u: int, v: int) -> "TopologyMutation":
        """A new link ``u–v`` appears at ``time``."""
        return cls(time, TopologyMutationKind.EDGE_ADD, (u, v))

    @classmethod
    def edge_remove(cls, time: float, u: int, v: int) -> "TopologyMutation":
        """The link ``u–v`` disappears permanently at ``time``."""
        return cls(time, TopologyMutationKind.EDGE_REMOVE, (u, v))

    @classmethod
    def node_leave(cls, time: float, node: int) -> "TopologyMutation":
        """``node`` leaves the network (all incident edges removed)."""
        return cls(time, TopologyMutationKind.NODE_LEAVE, (node,))

    @classmethod
    def node_join(
        cls, time: float, node: int, attachments: Sequence[int]
    ) -> "TopologyMutation":
        """``node`` rejoins, attaching to each node in ``attachments``."""
        return cls(
            time, TopologyMutationKind.NODE_JOIN, (node, *attachments)
        )

    # -- application ---------------------------------------------------------

    def apply(self, graph: LabeledGraph) -> LabeledGraph:
        """The successor graph after this mutation (validates applicability).

        Raises :class:`~repro.errors.GraphError` when the mutation does
        not apply (removing a non-edge, adding an existing edge, a leave
        of an already isolated node, a join of a still-connected node) —
        a schedule replayed from the wrong base graph fails loudly
        instead of silently diverging.
        """
        if self.kind is TopologyMutationKind.EDGE_ADD:
            return graph.with_edge(*self.subject)
        elif self.kind is TopologyMutationKind.EDGE_REMOVE:
            return graph.without_edge(*self.subject)
        elif self.kind is TopologyMutationKind.NODE_LEAVE:
            node = self.subject[0]
            if graph.degree(node) == 0:
                raise GraphError(
                    f"node {node} is already isolated; leave is a no-op"
                )
            return graph.without_node_edges(node)
        else:  # NODE_JOIN
            node = self.subject[0]
            if graph.degree(node) != 0:
                raise GraphError(
                    f"node {node} cannot join: it still has edges"
                )
            joined = graph
            for attachment in self.subject[1:]:
                joined = joined.with_edge(node, attachment)
            return joined

    def describe(self) -> str:
        """Human-readable form for trace details."""
        if self.kind in _EDGE_MUTATIONS:
            u, v = self.subject
            verb = (
                "add" if self.kind is TopologyMutationKind.EDGE_ADD
                else "remove"
            )
            return f"{verb} edge {u}-{v}"
        elif self.kind is TopologyMutationKind.NODE_LEAVE:
            return f"node {self.subject[0]} leaves"
        else:  # NODE_JOIN
            attachments = ",".join(str(a) for a in self.subject[1:])
            return f"node {self.subject[0]} joins via {attachments}"


def _sort_key(
    mutation: TopologyMutation,
) -> Tuple[float, str, Tuple[int, ...]]:
    return (mutation.time, mutation.kind.value, mutation.subject)


class ChurnSchedule:
    """An immutable, time-ordered sequence of :class:`TopologyMutation` s.

    Mirrors :class:`~repro.simulator.chaos.FaultSchedule` so the two can
    ride through the same event engine side by side; additionally offers
    *replay* — reconstructing the live graph at any point in time — which
    is what makes schedules checkable before a run starts.
    """

    def __init__(self, mutations: Iterable[TopologyMutation] = ()) -> None:
        self._mutations: Tuple[TopologyMutation, ...] = tuple(
            sorted(mutations, key=_sort_key)
        )

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._mutations)

    def __iter__(self) -> Iterator[TopologyMutation]:
        return iter(self._mutations)

    def __bool__(self) -> bool:
        return bool(self._mutations)

    def __repr__(self) -> str:
        return (
            f"ChurnSchedule({len(self._mutations)} mutations, "
            f"horizon={self.horizon:.2f})"
        )

    @property
    def mutations(self) -> Tuple[TopologyMutation, ...]:
        """The mutations in time order."""
        return self._mutations

    @property
    def horizon(self) -> float:
        """Time of the last scheduled mutation (0.0 when empty)."""
        return self._mutations[-1].time if self._mutations else 0.0

    # -- composition -------------------------------------------------------

    def merged(self, other: "ChurnSchedule") -> "ChurnSchedule":
        """Interleave two schedules into one time-ordered schedule."""
        return ChurnSchedule(self._mutations + other.mutations)

    def __add__(self, other: "ChurnSchedule") -> "ChurnSchedule":
        return self.merged(other)

    def shifted(self, delta: float) -> "ChurnSchedule":
        """The same schedule displaced ``delta`` time units later."""
        return ChurnSchedule(
            TopologyMutation(m.time + delta, m.kind, m.subject)
            for m in self._mutations
        )

    # -- validation and replay ---------------------------------------------

    def validate(self, graph: LabeledGraph) -> None:
        """Replay the whole schedule from ``graph``; raise on any misfit.

        Because mutations are permanent, validity is *path-dependent*: an
        edge removal is only legal if no earlier mutation already removed
        that edge.  A full replay is therefore the only honest check.
        """
        current = graph
        for mutation in self._mutations:
            try:
                current = mutation.apply(current)
            except GraphError as exc:
                raise GraphError(
                    f"churn schedule invalid at t={mutation.time:.2f} "
                    f"({mutation.describe()}): {exc}"
                ) from exc

    def graph_at(self, graph: LabeledGraph, time: float) -> LabeledGraph:
        """The live graph at ``time``, replayed from base graph ``graph``.

        Mutations stamped exactly ``time`` count as applied, matching the
        event engine's mutation-before-message tie-break.
        """
        current = graph
        for mutation in self._mutations:
            if mutation.time > time:
                break
            current = mutation.apply(current)
        return current

    def final_graph(self, graph: LabeledGraph) -> LabeledGraph:
        """The live graph after every scheduled mutation."""
        return self.graph_at(graph, self.horizon)


# ---------------------------------------------------------------------------
# Schedule generators
# ---------------------------------------------------------------------------


def _live_connected(graph: LabeledGraph, left: Set[int]) -> bool:
    """Whether the non-left nodes form one connected component."""
    live = [u for u in graph.nodes if u not in left]
    if len(live) <= 1:
        return True
    seen = {live[0]}
    stack = [live[0]]
    while stack:
        u = stack.pop()
        for v in graph.neighbor_set(u):
            if v not in seen and v not in left:
                seen.add(v)
                stack.append(v)
    return len(seen) == len(live)


_SAMPLE_TRIES = 24
"""Rejection-sampling budget per mutation before a kind is given up on."""


def random_churn(
    graph: LabeledGraph,
    events: int,
    horizon: float = 100.0,
    seed: int = 0,
    kinds: Sequence[TopologyMutationKind] = (
        TopologyMutationKind.EDGE_ADD,
        TopologyMutationKind.EDGE_REMOVE,
    ),
    keep_connected: bool = True,
    max_attachments: int = 3,
) -> ChurnSchedule:
    """Up to ``events`` random valid mutations, uniform over ``[0, horizon)``.

    The generator replays its own output as it goes, so every emitted
    mutation is valid against the evolving graph — removals pick live
    edges, additions pick absent pairs, leaves pick attached nodes and
    joins re-attach previously left ones.  With ``keep_connected`` (the
    default) removals and leaves that would disconnect the live node set
    are rejected, so a routable topology stays routable and convergence
    is always achievable.

    Best-effort: a time slot where no requested kind has a valid move
    (e.g. a complete graph cannot gain an edge) is skipped, so the result
    may hold fewer than ``events`` mutations.  Seeded and fully
    deterministic.
    """
    if events < 0:
        raise GraphError(f"event count must be >= 0, got {events}")
    if horizon <= 0:
        raise GraphError(f"horizon must be positive, got {horizon}")
    if not kinds:
        raise GraphError("random churn needs at least one mutation kind")
    if max_attachments < 1:
        raise GraphError(
            f"max_attachments must be >= 1, got {max_attachments}"
        )
    rng = random.Random(seed)
    times = sorted(rng.uniform(0.0, horizon) for _ in range(events))
    current = graph
    left: Set[int] = {u for u in graph.nodes if graph.degree(u) == 0}
    mutations: List[TopologyMutation] = []
    for time in times:
        mutation = _draw_mutation(
            current, left, rng, list(kinds), time, keep_connected,
            max_attachments,
        )
        if mutation is None:
            continue
        current = mutation.apply(current)
        if mutation.kind is TopologyMutationKind.NODE_LEAVE:
            left.add(mutation.subject[0])
        elif mutation.kind is TopologyMutationKind.NODE_JOIN:
            left.discard(mutation.subject[0])
        else:
            # Edge mutations do not change the left set.
            pass
        mutations.append(mutation)
    return ChurnSchedule(mutations)


def _draw_mutation(
    graph: LabeledGraph,
    left: Set[int],
    rng: random.Random,
    kinds: List[TopologyMutationKind],
    time: float,
    keep_connected: bool,
    max_attachments: int,
) -> Optional[TopologyMutation]:
    """One valid mutation at ``time``, or None when no kind has a move."""
    for kind in rng.sample(kinds, len(kinds)):
        if kind is TopologyMutationKind.EDGE_REMOVE:
            edges = list(graph.edges())
            rng.shuffle(edges)
            for u, v in edges[:_SAMPLE_TRIES]:
                if keep_connected and not _live_connected(
                    graph.without_edge(u, v), left
                ):
                    continue
                return TopologyMutation.edge_remove(time, u, v)
        elif kind is TopologyMutationKind.EDGE_ADD:
            live = [u for u in graph.nodes if u not in left]
            for _ in range(_SAMPLE_TRIES):
                if len(live) < 2:
                    break
                u, v = rng.sample(live, 2)
                if not graph.has_edge(u, v):
                    return TopologyMutation.edge_add(time, u, v)
        elif kind is TopologyMutationKind.NODE_LEAVE:
            live = [u for u in graph.nodes if u not in left]
            rng.shuffle(live)
            for node in live[:_SAMPLE_TRIES]:
                if len(live) <= 2 or graph.degree(node) == 0:
                    continue
                if keep_connected and not _live_connected(
                    graph.without_node_edges(node), left | {node}
                ):
                    continue
                return TopologyMutation.node_leave(time, node)
        else:  # NODE_JOIN
            if not left:
                continue
            node = rng.choice(sorted(left))
            live = [u for u in graph.nodes if u not in left]
            if not live:
                continue
            count = rng.randint(1, min(max_attachments, len(live)))
            attachments = sorted(rng.sample(live, count))
            return TopologyMutation.node_join(time, node, attachments)
    return None
