"""Message objects carried by the network simulator.

Two representations coexist: the scalar :class:`Message` dataclass the
walker and event engine pass hop by hop, and the struct-of-arrays
:class:`MessageBatch` the vectorised kernel (:mod:`repro.simulator.kernel`)
advances a whole generation at a time.  Both funnel into the same frozen
:class:`DeliveryRecord`, so everything downstream of the batch boundary
(metrics, analysis, persistence) is representation-blind.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

__all__ = [
    "DropReason",
    "Message",
    "DeliveryRecord",
    "MessageBatch",
    "DROP_REASON_CODES",
    "DROP_REASON_BY_CODE",
    "NO_DROP",
]


class DropReason(str, enum.Enum):
    """Structured taxonomy of why a message failed to deliver.

    The ``str`` mixin keeps records greppable (``"down" in reason`` works on
    the member itself) while giving experiments a closed vocabulary to
    aggregate over instead of parsing free text.  Human-oriented context
    (which link, which node) travels separately in
    :attr:`DeliveryRecord.drop_detail`.
    """

    ENDPOINT_DOWN = "endpoint down"
    """Source or destination node was crashed at injection time."""
    LINK_DOWN = "link down"
    """The chosen outgoing link was failed when the message tried it."""
    NODE_DOWN = "node down"
    """The chosen next hop (or the holding node itself) was crashed."""
    HOP_LIMIT = "hop limit exceeded"
    """The walk exceeded the scheme's loop-detection hop budget."""
    NO_ROUTE = "no route"
    """The local routing function had no usable entry (e.g. every
    shortest-path edge toward the destination has failed)."""
    INVALID_FORWARD = "invalid forward"
    """A function named a non-adjacent next hop — a scheme bug surfaced."""
    QUEUE_OVERFLOW = "queue overflow"
    """A node's forwarding backlog exceeded its queue capacity."""
    TABLE_CORRUPT = "table corrupt"
    """A node's packed routing function failed its integrity check (or a
    quarantined node was asked to forward); retryable — the self-healer
    rebuilds the table from graph+model knowledge after the repair delay."""
    ROUTING_LOOP = "routing loop"
    """Churn loop detection: the message revisited a node with identical
    header state while tables were converging after a topology mutation;
    retryable — the retransmission sees the repaired tables."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class Message:
    """One in-flight message."""

    msg_id: int
    source: int
    destination: int
    address: Hashable
    """Destination address as the scheme expects it (label or complex label)."""
    state: Any = None
    """Header state (used by the Theorem 5 probe scheme)."""
    path: List[int] = field(default_factory=list)
    attempt: int = 0
    """Zero-based retry attempt this incarnation represents."""
    stale: bool = False
    """Set when a hop decision was made while the routing tables were not
    yet converged after a topology mutation (the staleness mark the
    convergence layer aggregates)."""
    traced: bool = True
    """Whether span emission is on for this message.  A sampling tracer
    may decline a message at inject (``Tracer.wants``); the engine then
    skips every per-hop span call until the message turns anomalous and
    is promoted back to traced."""

    @property
    def hops(self) -> int:
        """Edges traversed so far."""
        return max(len(self.path) - 1, 0)


@dataclass(frozen=True)
class DeliveryRecord:
    """Outcome of one routed message."""

    msg_id: int
    source: int
    destination: int
    delivered: bool
    hops: int
    path: tuple[int, ...]
    latency: float = 0.0
    """Simulated time from first injection to the final outcome
    (event-driven runs), inclusive of retry backoff delays."""
    drop_reason: Optional[DropReason] = None
    drop_detail: Optional[str] = None
    """Free-text context for the drop (which link, which node, ...)."""
    retries: int = 0
    """Source-side re-transmissions performed before this outcome."""
    injected_at: float = math.nan
    """Simulated time of the first injection (NaN in the untimed walker)."""
    completed_at: float = math.nan
    """Simulated time of the final outcome (NaN in the untimed walker)."""
    stale: bool = False
    """At least one hop decision used a table not yet repaired after a
    topology mutation; a delivered-and-stale record is a *stale delivery*
    (correct destination, possibly detoured route)."""

    @property
    def time_to_delivery(self) -> float:
        """Injection-to-outcome time from the record's own timestamps.

        Includes every retry backoff window; NaN when the run was untimed
        (the hop-by-hop walker) or the timestamps were not recorded.
        """
        return self.completed_at - self.injected_at


DROP_REASON_CODES: Dict[DropReason, int] = {
    reason: code for code, reason in enumerate(DropReason)
}
"""Dense integer code of each :class:`DropReason` (batch-kernel encoding)."""

DROP_REASON_BY_CODE: Tuple[DropReason, ...] = tuple(DropReason)
"""Inverse of :data:`DROP_REASON_CODES`: ``DROP_REASON_BY_CODE[code]``."""

NO_DROP: int = -1
"""Sentinel drop code for messages that have not (yet) been dropped."""


class MessageBatch:
    """A cohort of in-flight messages as parallel arrays (struct-of-arrays).

    The batch kernel advances every column in lockstep; the scalar slow
    lane reads and writes the same arrays per index, so the two lanes can
    interleave freely without conversion.  Outcomes scatter back out as
    ordinary :class:`DeliveryRecord` objects via :meth:`records`, built by
    the same field mapping as the scalar engine's record builders.

    Per-attempt path prefixes live in a shared ``[size, capacity]`` buffer
    that doubles on demand (:meth:`ensure_path_capacity`) instead of being
    pre-sized to the hop limit — a 16k-message batch at ``n=256`` would
    otherwise allocate tens of megabytes it never touches.
    """

    __slots__ = (
        "size", "msg_id", "source", "destination", "current", "attempt",
        "plen", "stale", "traced", "active", "ready", "injected",
        "completed", "delivered", "drop_code", "drop_detail", "state",
        "path", "_path_capacity",
    )

    def __init__(
        self,
        msg_ids: List[int],
        sources: List[int],
        destinations: List[int],
        inject_times: List[float],
        limit: int,
    ) -> None:
        size = len(sources)
        if not (len(msg_ids) == len(destinations) == len(inject_times) == size):
            raise ValueError("batch columns must have equal length")
        self.size = size
        self.msg_id = np.asarray(msg_ids, dtype=np.int64)
        self.source = np.asarray(sources, dtype=np.int32)
        self.destination = np.asarray(destinations, dtype=np.int32)
        self.current = self.source.copy()
        self.attempt = np.zeros(size, dtype=np.int32)
        self.plen = np.ones(size, dtype=np.int32)
        self.stale = np.zeros(size, dtype=bool)
        self.traced = np.ones(size, dtype=bool)
        self.active = np.ones(size, dtype=bool)
        self.ready = np.asarray(inject_times, dtype=np.float64).copy()
        self.injected = self.ready.copy()
        self.completed = np.full(size, math.nan, dtype=np.float64)
        self.delivered = np.zeros(size, dtype=bool)
        self.drop_code = np.full(size, NO_DROP, dtype=np.int32)
        self.drop_detail: List[Optional[str]] = [None] * size
        self.state: List[Any] = [None] * size
        self._path_capacity = max(2, min(int(limit) + 2, 64))
        self.path = np.zeros((size, self._path_capacity), dtype=np.int32)
        self.path[:, 0] = self.source

    def ensure_path_capacity(self, needed: int) -> None:
        """Grow the shared path buffer so every row can hold ``needed`` nodes.

        The grown columns are left uninitialised: every reader slices row
        ``i`` to ``plen[i]`` nodes, so columns past the prefix are never
        observed (zeroing tens of megabytes per doubling would dominate
        the drain loop on large batches).
        """
        if needed <= self._path_capacity:
            return
        capacity = self._path_capacity
        while capacity < needed:
            # Quadrupling halves the copy generations a long drain pays
            # versus doubling; the slack columns are transient per run.
            capacity *= 4
        grown = np.empty((self.size, capacity), dtype=np.int32)
        grown[:, : self._path_capacity] = self.path
        self.path = grown
        self._path_capacity = capacity

    def append_hop(self, i: int, node: int) -> None:
        """Record one traversed hop for row ``i`` and move it to ``node``."""
        self.ensure_path_capacity(int(self.plen[i]) + 1)
        self.path[i, self.plen[i]] = node
        self.plen[i] += 1
        self.current[i] = node

    def path_of(self, i: int) -> List[int]:
        """Row ``i``'s current-attempt path as a plain list."""
        return [int(v) for v in self.path[i, : self.plen[i]]]

    def finish_delivered(self, i: int, time: float) -> None:
        """Mark row ``i`` delivered at ``time`` and deactivate it."""
        self.delivered[i] = True
        self.completed[i] = time
        self.active[i] = False

    def finish_dropped(
        self, i: int, reason: DropReason, detail: Optional[str], time: float
    ) -> None:
        """Mark row ``i`` dropped at ``time`` and deactivate it."""
        self.drop_code[i] = DROP_REASON_CODES[reason]
        self.drop_detail[i] = detail
        self.completed[i] = time
        self.active[i] = False

    def reset_for_retry(self, i: int, ready_at: float) -> None:
        """Re-arm row ``i`` as a fresh attempt from its source at ``ready_at``.

        Mirrors the event engine's retry ``Message``: path, header state
        and the staleness mark reset; the attempt counter advances; the
        first injection time is preserved for latency accounting.
        """
        self.attempt[i] += 1
        self.current[i] = self.source[i]
        self.plen[i] = 1
        self.path[i, 0] = self.source[i]
        self.state[i] = None
        self.stale[i] = False
        self.drop_code[i] = NO_DROP
        self.drop_detail[i] = None
        self.ready[i] = ready_at

    def record(self, i: int) -> DeliveryRecord:
        """Row ``i``'s outcome as a frozen :class:`DeliveryRecord`."""
        if self.active[i]:
            raise ValueError(f"message row {i} is still in flight")
        completed = float(self.completed[i])
        injected = float(self.injected[i])
        code = int(self.drop_code[i])
        return DeliveryRecord(
            msg_id=int(self.msg_id[i]),
            source=int(self.source[i]),
            destination=int(self.destination[i]),
            delivered=bool(self.delivered[i]),
            hops=max(int(self.plen[i]) - 1, 0),
            path=tuple(int(v) for v in self.path[i, : self.plen[i]]),
            latency=completed - injected,
            drop_reason=None if code == NO_DROP else DROP_REASON_BY_CODE[code],
            drop_detail=self.drop_detail[i],
            retries=int(self.attempt[i]),
            injected_at=injected,
            completed_at=completed,
            stale=bool(self.stale[i]),
        )

    def records(self) -> List[DeliveryRecord]:
        """Every row's outcome, in injection (row) order.

        Bulk-converts every column once (``ndarray.tolist``) instead of
        round-tripping one numpy scalar per field per row; on a 16k-row
        batch the per-row cost is the ``DeliveryRecord`` construction
        itself, not the array reads.
        """
        if self.active.any():
            i = int(np.argmax(self.active))
            raise ValueError(f"message row {i} is still in flight")
        msg_ids = self.msg_id.tolist()
        sources = self.source.tolist()
        destinations = self.destination.tolist()
        delivered = self.delivered.tolist()
        plens = self.plen.tolist()
        injected = self.injected.tolist()
        completed = self.completed.tolist()
        codes = self.drop_code.tolist()
        attempts = self.attempt.tolist()
        stales = self.stale.tolist()
        path = self.path
        return [
            DeliveryRecord(
                msg_id=msg_ids[i],
                source=sources[i],
                destination=destinations[i],
                delivered=delivered[i],
                hops=plens[i] - 1 if plens[i] > 1 else 0,
                path=tuple(path[i, : plens[i]].tolist()),
                latency=completed[i] - injected[i],
                drop_reason=(
                    None if codes[i] == NO_DROP else DROP_REASON_BY_CODE[codes[i]]
                ),
                drop_detail=self.drop_detail[i],
                retries=attempts[i],
                injected_at=injected[i],
                completed_at=completed[i],
                stale=stales[i],
            )
            for i in range(self.size)
        ]
