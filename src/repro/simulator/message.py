"""Message objects carried by the network simulator."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional

__all__ = ["DropReason", "Message", "DeliveryRecord"]


class DropReason(str, enum.Enum):
    """Structured taxonomy of why a message failed to deliver.

    The ``str`` mixin keeps records greppable (``"down" in reason`` works on
    the member itself) while giving experiments a closed vocabulary to
    aggregate over instead of parsing free text.  Human-oriented context
    (which link, which node) travels separately in
    :attr:`DeliveryRecord.drop_detail`.
    """

    ENDPOINT_DOWN = "endpoint down"
    """Source or destination node was crashed at injection time."""
    LINK_DOWN = "link down"
    """The chosen outgoing link was failed when the message tried it."""
    NODE_DOWN = "node down"
    """The chosen next hop (or the holding node itself) was crashed."""
    HOP_LIMIT = "hop limit exceeded"
    """The walk exceeded the scheme's loop-detection hop budget."""
    NO_ROUTE = "no route"
    """The local routing function had no usable entry (e.g. every
    shortest-path edge toward the destination has failed)."""
    INVALID_FORWARD = "invalid forward"
    """A function named a non-adjacent next hop — a scheme bug surfaced."""
    QUEUE_OVERFLOW = "queue overflow"
    """A node's forwarding backlog exceeded its queue capacity."""
    TABLE_CORRUPT = "table corrupt"
    """A node's packed routing function failed its integrity check (or a
    quarantined node was asked to forward); retryable — the self-healer
    rebuilds the table from graph+model knowledge after the repair delay."""
    ROUTING_LOOP = "routing loop"
    """Churn loop detection: the message revisited a node with identical
    header state while tables were converging after a topology mutation;
    retryable — the retransmission sees the repaired tables."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class Message:
    """One in-flight message."""

    msg_id: int
    source: int
    destination: int
    address: Hashable
    """Destination address as the scheme expects it (label or complex label)."""
    state: Any = None
    """Header state (used by the Theorem 5 probe scheme)."""
    path: List[int] = field(default_factory=list)
    attempt: int = 0
    """Zero-based retry attempt this incarnation represents."""
    stale: bool = False
    """Set when a hop decision was made while the routing tables were not
    yet converged after a topology mutation (the staleness mark the
    convergence layer aggregates)."""
    traced: bool = True
    """Whether span emission is on for this message.  A sampling tracer
    may decline a message at inject (``Tracer.wants``); the engine then
    skips every per-hop span call until the message turns anomalous and
    is promoted back to traced."""

    @property
    def hops(self) -> int:
        """Edges traversed so far."""
        return max(len(self.path) - 1, 0)


@dataclass(frozen=True)
class DeliveryRecord:
    """Outcome of one routed message."""

    msg_id: int
    source: int
    destination: int
    delivered: bool
    hops: int
    path: tuple[int, ...]
    latency: float = 0.0
    """Simulated time from first injection to the final outcome
    (event-driven runs), inclusive of retry backoff delays."""
    drop_reason: Optional[DropReason] = None
    drop_detail: Optional[str] = None
    """Free-text context for the drop (which link, which node, ...)."""
    retries: int = 0
    """Source-side re-transmissions performed before this outcome."""
    injected_at: float = math.nan
    """Simulated time of the first injection (NaN in the untimed walker)."""
    completed_at: float = math.nan
    """Simulated time of the final outcome (NaN in the untimed walker)."""
    stale: bool = False
    """At least one hop decision used a table not yet repaired after a
    topology mutation; a delivered-and-stale record is a *stale delivery*
    (correct destination, possibly detoured route)."""

    @property
    def time_to_delivery(self) -> float:
        """Injection-to-outcome time from the record's own timestamps.

        Includes every retry backoff window; NaN when the run was untimed
        (the hop-by-hop walker) or the timestamps were not recorded.
        """
        return self.completed_at - self.injected_at
