"""Message objects carried by the network simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional

__all__ = ["Message", "DeliveryRecord"]


@dataclass
class Message:
    """One in-flight message."""

    msg_id: int
    source: int
    destination: int
    address: Hashable
    """Destination address as the scheme expects it (label or complex label)."""
    state: Any = None
    """Header state (used by the Theorem 5 probe scheme)."""
    path: List[int] = field(default_factory=list)

    @property
    def hops(self) -> int:
        """Edges traversed so far."""
        return max(len(self.path) - 1, 0)


@dataclass(frozen=True)
class DeliveryRecord:
    """Outcome of one routed message."""

    msg_id: int
    source: int
    destination: int
    delivered: bool
    hops: int
    path: tuple[int, ...]
    latency: float = 0.0
    """Simulated time from injection to delivery (event-driven runs)."""
    drop_reason: Optional[str] = None
