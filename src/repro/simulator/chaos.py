"""Dynamic fault injection: time-stamped failure/recovery schedules.

The static failure sets in :mod:`repro.simulator.failures` freeze the
network before a run.  A :class:`FaultSchedule` instead evolves the failure
set *during* an :class:`~repro.simulator.network.EventDrivenSimulator` run:
links flap, nodes crash and recover, whole regions go dark and come back.
That is the regime the paper's full-information schemes are designed for
("allow alternative, shortest, paths to be taken whenever an outgoing link
is down") and the one where retry/backoff recovery actually pays off —
a link that is down now may be up again one backoff later.

All generators are seeded and fully deterministic.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import (
    Callable,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.bitio import BitArray
from repro.errors import GraphError
from repro.graphs import LabeledGraph, get_context

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "MutationKind",
    "TableMutation",
    "failure_masks",
    "flapping_links",
    "renewal_faults",
    "regional_failures",
    "table_corruption",
]


def failure_masks(
    n: int,
    failed_links: Iterable[FrozenSet[int]],
    failed_nodes: Iterable[int],
) -> Tuple[np.ndarray, np.ndarray]:
    """The current failure state as 1-indexed boolean masks.

    Returns ``(link_down, node_down)`` where ``link_down[u, v]`` is True
    for a failed link (symmetric, shape ``[n+1, n+1]``) and
    ``node_down[u]`` for a crashed node (shape ``[n+1]``).  Row/column 0
    is padding so the batch kernel can index by node label directly.
    """
    link_down = np.zeros((n + 1, n + 1), dtype=bool)
    for link in failed_links:
        endpoints = tuple(link)
        if len(endpoints) != 2:
            continue
        u, v = endpoints
        if 1 <= u <= n and 1 <= v <= n:
            link_down[u, v] = True
            link_down[v, u] = True
    node_down = np.zeros(n + 1, dtype=bool)
    for u in failed_nodes:
        if 1 <= u <= n:
            node_down[u] = True
    return link_down, node_down


class FaultKind(str, enum.Enum):
    """What a single scheduled fault event does to the network."""

    LINK_DOWN = "link down"
    LINK_UP = "link up"
    NODE_DOWN = "node down"
    NODE_UP = "node up"
    TABLE_CORRUPT = "table corrupt"
    """The node's packed routing-function bits are overwritten by a
    :class:`TableMutation` (the node itself stays up)."""
    TABLE_REPAIR = "table repair"
    """The node's function is rebuilt pristine from graph+model knowledge."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_LINK_KINDS = frozenset({FaultKind.LINK_DOWN, FaultKind.LINK_UP})
_TABLE_KINDS = frozenset({FaultKind.TABLE_CORRUPT, FaultKind.TABLE_REPAIR})


class MutationKind(str, enum.Enum):
    """How a :class:`TableMutation` damages the packed function bits."""

    BIT_FLIP = "bit flip"
    BURST = "burst flip"
    TRUNCATE = "truncate"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TableMutation:
    """A deterministic corruption of one packed routing function.

    Offsets are stored unreduced and applied modulo the live table length,
    so one mutation object is meaningful for any node regardless of how
    long its encoding happens to be.
    """

    kind: MutationKind
    offsets: Tuple[int, ...] = (0,)
    """Bit positions to flip (BIT_FLIP) or the burst start (BURST);
    ignored by TRUNCATE."""
    span: int = 1
    """Burst length (BURST) or trailing bits dropped (TRUNCATE)."""

    def __post_init__(self) -> None:
        if not self.offsets:
            raise GraphError("table mutation needs at least one offset")
        if any(offset < 0 for offset in self.offsets):
            raise GraphError(
                f"mutation offsets must be >= 0, got {self.offsets!r}"
            )
        if self.span < 1:
            raise GraphError(f"mutation span must be >= 1, got {self.span}")

    def apply(self, bits: BitArray) -> BitArray:
        """The mutated copy of ``bits`` (empty tables pass through)."""
        n = len(bits)
        if n == 0:
            return bits
        if self.kind is MutationKind.TRUNCATE:
            return bits[: max(n - self.span, 0)]
        if self.kind is MutationKind.BIT_FLIP:
            positions = {offset % n for offset in self.offsets}
        else:  # BURST
            start = self.offsets[0] % n
            positions = set(range(start, min(start + self.span, n)))
        flipped = list(bits)
        for position in positions:
            flipped[position] ^= 1
        return BitArray(flipped)

    def describe(self) -> str:
        """Human-readable form for trace details."""
        if self.kind is MutationKind.TRUNCATE:
            return f"truncate {self.span} trailing bits"
        if self.kind is MutationKind.BIT_FLIP:
            plural = "s" if len(self.offsets) != 1 else ""
            at = ",".join(str(offset) for offset in self.offsets)
            return f"flip {len(self.offsets)} bit{plural} at offset{plural} {at}"
        return f"burst-flip {self.span} bits from offset {self.offsets[0]}"


@dataclass(frozen=True)
class FaultEvent:
    """One time-stamped change to the failure set."""

    time: float
    kind: FaultKind
    subject: Tuple[int, ...]
    """``(u, v)`` for link events, ``(node,)`` for node/table events."""
    mutation: Optional[TableMutation] = None
    """The table damage (TABLE_CORRUPT events only)."""

    def __post_init__(self) -> None:
        if self.time < 0:
            raise GraphError(f"fault event time must be >= 0, got {self.time}")
        expected = 2 if self.kind in _LINK_KINDS else 1
        if len(self.subject) != expected:
            raise GraphError(
                f"{self.kind.value} event needs {expected} subject node(s), "
                f"got {self.subject!r}"
            )
        if self.kind is FaultKind.TABLE_CORRUPT:
            if self.mutation is None:
                raise GraphError(
                    "table corrupt event needs a TableMutation"
                )
        elif self.mutation is not None:
            raise GraphError(
                f"{self.kind.value} event cannot carry a mutation"
            )

    # -- convenience constructors ------------------------------------------

    @classmethod
    def link_down(cls, time: float, u: int, v: int) -> "FaultEvent":
        """The link ``u–v`` fails at ``time``."""
        return cls(time, FaultKind.LINK_DOWN, (u, v))

    @classmethod
    def link_up(cls, time: float, u: int, v: int) -> "FaultEvent":
        """The link ``u–v`` recovers at ``time``."""
        return cls(time, FaultKind.LINK_UP, (u, v))

    @classmethod
    def node_down(cls, time: float, node: int) -> "FaultEvent":
        """Node ``node`` crashes at ``time``."""
        return cls(time, FaultKind.NODE_DOWN, (node,))

    @classmethod
    def node_up(cls, time: float, node: int) -> "FaultEvent":
        """Node ``node`` recovers at ``time``."""
        return cls(time, FaultKind.NODE_UP, (node,))

    @classmethod
    def table_corrupt(
        cls, time: float, node: int, mutation: TableMutation
    ) -> "FaultEvent":
        """Node ``node``'s packed function suffers ``mutation`` at ``time``."""
        return cls(time, FaultKind.TABLE_CORRUPT, (node,), mutation)

    @classmethod
    def table_repair(cls, time: float, node: int) -> "FaultEvent":
        """Node ``node``'s function is rebuilt pristine at ``time``."""
        return cls(time, FaultKind.TABLE_REPAIR, (node,))

    @property
    def link(self) -> Optional[FrozenSet[int]]:
        """The affected link as a frozenset, or None for node events."""
        if self.kind in _LINK_KINDS:
            return frozenset(self.subject)
        return None

    @property
    def node(self) -> Optional[int]:
        """The affected node, or None for link events."""
        if self.kind in _LINK_KINDS:
            return None
        return self.subject[0]


def _sort_key(event: FaultEvent) -> Tuple[float, str, Tuple[int, ...]]:
    return (event.time, event.kind.value, event.subject)


class FaultSchedule:
    """An immutable, time-ordered sequence of :class:`FaultEvent`s."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=_sort_key)
        )

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __repr__(self) -> str:
        return (
            f"FaultSchedule({len(self._events)} events, "
            f"horizon={self.horizon:.2f})"
        )

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """The events in time order."""
        return self._events

    @property
    def horizon(self) -> float:
        """Time of the last scheduled event (0.0 when empty)."""
        return self._events[-1].time if self._events else 0.0

    # -- composition -------------------------------------------------------

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        """Interleave two schedules into one time-ordered schedule."""
        return FaultSchedule(self._events + other.events)

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        return self.merged(other)

    def shifted(self, delta: float) -> "FaultSchedule":
        """The same schedule displaced ``delta`` time units later."""
        return FaultSchedule(
            FaultEvent(e.time + delta, e.kind, e.subject, e.mutation)
            for e in self._events
        )

    # -- validation and replay ---------------------------------------------

    def validate(self, graph: LabeledGraph) -> None:
        """Check every event references a real link/node of ``graph``."""
        for event in self._events:
            if event.kind in _LINK_KINDS:
                u, v = event.subject
                if not graph.has_edge(u, v):
                    raise GraphError(
                        f"fault schedule references non-edge {u}-{v}"
                    )
            else:
                node = event.subject[0]
                if not 1 <= node <= graph.n:
                    raise GraphError(
                        f"fault schedule references node {node} "
                        f"outside 1..{graph.n}"
                    )

    def state_at(
        self, time: float
    ) -> Tuple[Set[FrozenSet[int]], Set[int]]:
        """Replay the schedule: (failed links, failed nodes) at ``time``.

        Events stamped exactly ``time`` are considered applied, matching the
        event engine's fault-before-message tie-break.  Table events do not
        crash nodes; replay them with :meth:`corrupted_at`.
        """
        links: Set[FrozenSet[int]] = set()
        nodes: Set[int] = set()
        for event in self._events:
            if event.time > time:
                break
            if event.kind is FaultKind.LINK_DOWN:
                links.add(frozenset(event.subject))
            elif event.kind is FaultKind.LINK_UP:
                links.discard(frozenset(event.subject))
            elif event.kind is FaultKind.NODE_DOWN:
                nodes.add(event.subject[0])
            elif event.kind is FaultKind.NODE_UP:
                nodes.discard(event.subject[0])
            else:
                # TABLE_CORRUPT / TABLE_REPAIR: tracked by corrupted_at.
                continue
        return links, nodes

    def corrupted_at(self, time: float) -> Set[int]:
        """Replay only the table events: corrupt-table nodes at ``time``."""
        corrupt: Set[int] = set()
        for event in self._events:
            if event.time > time:
                break
            if event.kind is FaultKind.TABLE_CORRUPT:
                corrupt.add(event.subject[0])
            elif event.kind is FaultKind.TABLE_REPAIR:
                corrupt.discard(event.subject[0])
            else:
                # Link/node availability events: tracked by state_at.
                continue
        return corrupt


# ---------------------------------------------------------------------------
# Schedule generators
# ---------------------------------------------------------------------------


def _sample_links(
    graph: LabeledGraph, count: int, rng: random.Random
) -> List[Tuple[int, int]]:
    edges = list(graph.edges())
    if count > len(edges):
        raise GraphError(
            f"cannot schedule faults on {count} of {len(edges)} links"
        )
    return rng.sample(edges, count)


def flapping_links(
    graph: LabeledGraph,
    count: int,
    period: float = 10.0,
    duty: float = 0.5,
    horizon: float = 100.0,
    seed: int = 0,
    stagger: bool = True,
) -> FaultSchedule:
    """``count`` random links flap periodically until ``horizon``.

    Each sampled link repeats a down/up cycle of length ``period``, spending
    ``duty`` of every cycle down.  With ``stagger`` each link gets a random
    phase offset so the failure set churns continuously instead of
    blinking in lockstep.
    """
    if period <= 0:
        raise GraphError(f"flap period must be positive, got {period}")
    if not 0 < duty < 1:
        raise GraphError(f"duty cycle must be in (0, 1), got {duty}")
    if horizon <= 0:
        raise GraphError(f"horizon must be positive, got {horizon}")
    rng = random.Random(seed)
    events: List[FaultEvent] = []
    for u, v in _sample_links(graph, count, rng):
        phase = rng.uniform(0.0, period) if stagger else 0.0
        down_for = period * duty
        start = phase
        while start < horizon:
            events.append(FaultEvent.link_down(start, u, v))
            recover = min(start + down_for, horizon)
            events.append(FaultEvent.link_up(recover, u, v))
            start += period
    return FaultSchedule(events)


def renewal_faults(
    graph: LabeledGraph,
    horizon: float = 100.0,
    seed: int = 0,
    link_count: int = 0,
    link_mtbf: float = 20.0,
    link_mttr: float = 5.0,
    node_count: int = 0,
    node_mtbf: float = 50.0,
    node_mttr: float = 10.0,
) -> FaultSchedule:
    """An MTBF/MTTR renewal process per sampled link and node.

    Each chosen component alternates exponentially distributed up-times
    (mean ``mtbf``) and down-times (mean ``mttr``), the classic reliability
    model.  Components start up; the first failure of each arrives after
    one exponential up-time.
    """
    for name, value in (
        ("horizon", horizon),
        ("link_mtbf", link_mtbf),
        ("link_mttr", link_mttr),
        ("node_mtbf", node_mtbf),
        ("node_mttr", node_mttr),
    ):
        if value <= 0:
            raise GraphError(f"{name} must be positive, got {value}")
    rng = random.Random(seed)
    events: List[FaultEvent] = []

    def _alternate(
        down: Callable[[float], FaultEvent],
        up: Callable[[float], FaultEvent],
        mtbf: float,
        mttr: float,
    ) -> None:
        clock = rng.expovariate(1.0 / mtbf)
        while clock < horizon:
            events.append(down(clock))
            clock += rng.expovariate(1.0 / mttr)
            recover = min(clock, horizon)
            events.append(up(recover))
            if clock >= horizon:
                break
            clock += rng.expovariate(1.0 / mtbf)

    for u, v in _sample_links(graph, link_count, rng):
        _alternate(
            lambda t, u=u, v=v: FaultEvent.link_down(t, u, v),
            lambda t, u=u, v=v: FaultEvent.link_up(t, u, v),
            link_mtbf,
            link_mttr,
        )
    nodes = list(graph.nodes)
    if node_count > len(nodes):
        raise GraphError(
            f"cannot schedule faults on {node_count} of {len(nodes)} nodes"
        )
    for node in rng.sample(nodes, node_count):
        _alternate(
            lambda t, node=node: FaultEvent.node_down(t, node),
            lambda t, node=node: FaultEvent.node_up(t, node),
            node_mtbf,
            node_mttr,
        )
    return FaultSchedule(events)


def _ball(graph: LabeledGraph, center: int, radius: int) -> Set[int]:
    """Nodes within hop distance ``radius`` of ``center``.

    Served by the shared :class:`~repro.graphs.context.GraphContext`, so
    several regions (or repeated schedules on one graph) reuse one BFS
    per epicentre.
    """
    return get_context(graph).ball(center, radius)


def regional_failures(
    graph: LabeledGraph,
    regions: int = 1,
    radius: int = 1,
    duration: float = 20.0,
    horizon: float = 100.0,
    seed: int = 0,
    protect: Optional[Sequence[int]] = None,
) -> FaultSchedule:
    """Correlated regional outages: whole hop-balls crash together.

    Each region picks a random epicentre and a random outage start in
    ``[0, horizon - duration]``; every unprotected node within ``radius``
    hops of the epicentre crashes at the start and recovers ``duration``
    later.  Models the correlated failures (power loss, cable cut) that
    independent per-link models miss.
    """
    if radius < 0:
        raise GraphError(f"radius must be >= 0, got {radius}")
    if duration <= 0 or horizon <= 0 or duration > horizon:
        raise GraphError(
            f"need 0 < duration <= horizon, got {duration}, {horizon}"
        )
    protected = set(protect or ())
    rng = random.Random(seed)
    events: List[FaultEvent] = []
    for _ in range(regions):
        epicenter = rng.randrange(1, graph.n + 1)
        start = rng.uniform(0.0, horizon - duration)
        for node in sorted(_ball(graph, epicenter, radius)):
            if node in protected:
                continue
            events.append(FaultEvent.node_down(start, node))
            events.append(FaultEvent.node_up(start + duration, node))
    return FaultSchedule(events)


# The offset space mutations draw from; applied modulo the table length,
# so any value >= the longest encoding is uniform over positions.
_OFFSET_SPACE = 1 << 24


def table_corruption(
    graph: LabeledGraph,
    count: int,
    horizon: float = 100.0,
    seed: int = 0,
    kinds: Sequence[MutationKind] = (MutationKind.BIT_FLIP,),
    flips: int = 1,
    burst_span: int = 8,
    truncate_bits: int = 4,
    repair_delay: Optional[float] = None,
) -> FaultSchedule:
    """``count`` distinct nodes suffer one table corruption each.

    Corruption times are uniform in ``[0, horizon)``; each event's
    :class:`TableMutation` kind is drawn from ``kinds`` with the given
    parameters (``flips`` independent bit flips, ``burst_span``-bit
    bursts, ``truncate_bits`` dropped trailing bits).  With
    ``repair_delay`` set, a blind :attr:`FaultKind.TABLE_REPAIR` (a
    periodic table re-push, independent of detection) follows each
    corruption after that delay; leave it ``None`` to let the simulator's
    detection-triggered self-healer do the repairs instead.

    Seeded and fully deterministic, like every other generator here.
    """
    if horizon <= 0:
        raise GraphError(f"horizon must be positive, got {horizon}")
    if not kinds:
        raise GraphError("table corruption needs at least one mutation kind")
    if flips < 1 or burst_span < 1 or truncate_bits < 1:
        raise GraphError(
            f"mutation sizes must be >= 1, got flips={flips}, "
            f"burst_span={burst_span}, truncate_bits={truncate_bits}"
        )
    if repair_delay is not None and repair_delay <= 0:
        raise GraphError(
            f"repair delay must be positive, got {repair_delay}"
        )
    nodes = list(graph.nodes)
    if count > len(nodes):
        raise GraphError(
            f"cannot corrupt {count} of {len(nodes)} tables"
        )
    rng = random.Random(seed)
    events: List[FaultEvent] = []
    for node in rng.sample(nodes, count):
        time = rng.uniform(0.0, horizon)
        kind = kinds[rng.randrange(len(kinds))]
        if kind is MutationKind.BIT_FLIP:
            mutation = TableMutation(
                kind,
                offsets=tuple(
                    rng.randrange(_OFFSET_SPACE) for _ in range(flips)
                ),
            )
        elif kind is MutationKind.BURST:
            mutation = TableMutation(
                kind,
                offsets=(rng.randrange(_OFFSET_SPACE),),
                span=burst_span,
            )
        else:
            mutation = TableMutation(kind, span=truncate_bits)
        events.append(FaultEvent.table_corrupt(time, node, mutation))
        if repair_delay is not None:
            events.append(
                FaultEvent.table_repair(time + repair_delay, node)
            )
    return FaultSchedule(events)
