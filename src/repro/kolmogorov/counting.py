"""Counting bounds used by the incompressibility arguments.

These are the closed-form inequalities quoted in Sections 2–3 of the
paper: the fraction of strings compressible by ``c`` bits, the fraction of
``δ``-random graphs, and the Chernoff tail (Eq. 3) behind Lemma 1 and
Claim 1.
"""

from __future__ import annotations

import math

__all__ = [
    "incompressible_fraction",
    "delta_random_fraction",
    "chernoff_tail",
    "binomial_band_count",
    "lemma1_deviation_bound",
]


def incompressible_fraction(c: int) -> float:
    """Fraction of strings with ``C(x) > |x| - c``: at least ``1 - 2^{-c}``."""
    if c < 0:
        raise ValueError(f"c must be non-negative, got {c}")
    return 1.0 - 2.0 ** (-c)


def delta_random_fraction(n: int, c: float = 3.0) -> float:
    """Fraction of graphs on ``n`` nodes that are ``c log n``-random.

    With ``δ(n) = c log n`` the counting bound gives at least
    ``1 - 1/n^c`` (the paper's "almost all graphs").
    """
    if n < 2:
        return 0.0
    return 1.0 - float(n) ** (-c)


def chernoff_tail(n: int, p: float, k: float) -> float:
    """Eq. (3): ``Pr(|s_n - np| > k) ≤ 2 e^{-k² / 4npq}``."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    q = 1.0 - p
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return min(2.0 * math.exp(-(k * k) / (4.0 * n * p * q)), 1.0)


def binomial_band_count(n: int, k: int) -> int:
    """``m = Σ_{|d - (n-1)/2| ≥ k} C(n-1, d)`` from Eq. (2) of Lemma 1.

    The exact count of interconnection patterns whose weight deviates from
    the mean by at least ``k``; its logarithm is the cost of addressing one
    such pattern.
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    center = (n - 1) / 2.0
    return sum(
        math.comb(n - 1, d)
        for d in range(0, n)
        if abs(d - center) >= k
    )


def lemma1_deviation_bound(n: int, deficiency: float) -> float:
    """The ``O(√((δ(n) + log n) n))`` degree-deviation scale of Lemma 1."""
    if n < 2:
        return 0.0
    return math.sqrt((deficiency + math.log2(n)) * n)
