"""Computable upper bounds on Kolmogorov complexity.

``C(x)`` itself is uncomputable; what *is* computable is the length of any
particular compressed encoding, which upper-bounds ``C(x)`` up to an
additive constant.  The incompressibility method only needs the converse
direction for random objects — that they do **not** compress — and real
compressors demonstrate that convincingly: a ``G(n, 1/2)`` edge string
resists zlib/bz2/lzma to within a small header overhead.

Estimators report bit lengths so they plug directly into the paper's
accounting.
"""

from __future__ import annotations

import bz2
import lzma
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from repro.bitio import BitArray

__all__ = [
    "ComplexityEstimate",
    "compressed_length_bits",
    "estimate_complexity",
    "best_estimate",
    "estimate_permutation_complexity",
    "COMPRESSORS",
]

_Compressor = Callable[[bytes], bytes]

COMPRESSORS: Dict[str, _Compressor] = {
    "zlib": lambda data: zlib.compress(data, level=9),
    "bz2": lambda data: bz2.compress(data, compresslevel=9),
    "lzma": lambda data: lzma.compress(data, preset=9),
}


@dataclass(frozen=True)
class ComplexityEstimate:
    """An upper-bound estimate ``C(x) ≤ bits`` from a named compressor."""

    compressor: str
    original_bits: int
    bits: int

    @property
    def deficiency(self) -> int:
        """Apparent randomness deficiency ``|x| - C̃(x)`` (clamped at 0)."""
        return max(self.original_bits - self.bits, 0)

    @property
    def ratio(self) -> float:
        """Compression ratio ``C̃(x) / |x|`` (1.0 or more ⇒ incompressible)."""
        if self.original_bits == 0:
            return 1.0
        # Compression *ratio* — deliberately real-valued.
        return self.bits / self.original_bits  # repro-lint: disable=R001


def compressed_length_bits(data: bytes, compressor: str = "zlib") -> int:
    """Compressed size of ``data`` in bits under a named compressor."""
    if compressor not in COMPRESSORS:
        raise KeyError(
            f"unknown compressor {compressor!r}; choose from {sorted(COMPRESSORS)}"
        )
    return 8 * len(COMPRESSORS[compressor](data))


def estimate_complexity(bits: BitArray, compressor: str = "zlib") -> ComplexityEstimate:
    """Estimate ``C(x)`` of a bit string via one compressor."""
    return ComplexityEstimate(
        compressor=compressor,
        original_bits=len(bits),
        bits=compressed_length_bits(bits.to_bytes(), compressor),
    )


def best_estimate(bits: BitArray) -> ComplexityEstimate:
    """The tightest (smallest) estimate across all available compressors."""
    estimates = [estimate_complexity(bits, name) for name in COMPRESSORS]
    return min(estimates, key=lambda e: e.bits)


def estimate_permutation_complexity(perm: Sequence[int]) -> ComplexityEstimate:
    """Estimate ``C(π)`` of a permutation against its ``log₂ k!`` content.

    Theorem 9 relies on "a fraction at least ``1 − 1/2^k`` of such
    permutations π has ``C(π) = k log k − O(k)``".  We Lehmer-rank the
    permutation to its information-theoretically minimal bit string and let
    the compressors attack it: the estimate's ``original_bits`` is
    ``⌈log₂ k!⌉`` and a random permutation's ``deficiency`` stays near 0.
    """
    from repro.bitio import encode_permutation

    return best_estimate(encode_permutation(tuple(perm)))
