"""Kolmogorov-complexity machinery (computable surrogates).

The paper's proofs live and die by one fact: a ``δ``-random graph's edge
string ``E(G)`` admits no description shorter than ``n(n-1)/2 - δ(n)``
bits.  This package provides the computable stand-ins: compression-based
upper bounds on ``C(x)`` and the exact counting inequalities (fractions of
incompressible objects, Chernoff tails) quoted in Sections 2–3.
"""

from repro.kolmogorov.counting import (
    binomial_band_count,
    chernoff_tail,
    delta_random_fraction,
    incompressible_fraction,
    lemma1_deviation_bound,
)
from repro.kolmogorov.estimator import (
    COMPRESSORS,
    ComplexityEstimate,
    best_estimate,
    compressed_length_bits,
    estimate_complexity,
    estimate_permutation_complexity,
)

__all__ = [
    "COMPRESSORS",
    "ComplexityEstimate",
    "best_estimate",
    "binomial_band_count",
    "chernoff_tail",
    "compressed_length_bits",
    "delta_random_fraction",
    "estimate_complexity",
    "estimate_permutation_complexity",
    "incompressible_fraction",
    "lemma1_deviation_bound",
]
