"""Sequential bit writer with the prefix codes used throughout the paper.

The paper (Definition 4) relies on two self-delimiting codes:

* the *hat* code ``ẑ = 1^|z| 0 z`` of length ``2|z| + 1``;
* the *prime* code ``z' = ̂|z| z`` — the hat code of the binary length
  of ``z`` followed by ``z`` itself — of length ``|z| + 2⌈log(|z|+1)⌉ + 1``.

On top of those we provide unary and Elias gamma/delta codes, which the
routing-table constructions (Theorem 1) and codecs use for small integers.
"""

from __future__ import annotations

from typing import Iterable

from repro.bitio.bitarray import BitArray
from repro.errors import BitstreamError

__all__ = ["BitWriter"]


class BitWriter:
    """Append-only builder for a :class:`BitArray`."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self._length = 0

    def __len__(self) -> int:
        return self._length

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._length

    # -- primitive writes --------------------------------------------------

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise BitstreamError(f"bit must be 0 or 1, got {bit!r}")
        if self._length % 8 == 0:
            self._buf.append(0)
        if bit:
            self._buf[-1] |= 1 << (7 - (self._length % 8))
        self._length += 1

    def write_bits(self, bits: Iterable[int]) -> None:
        """Append every bit of an iterable (e.g. a :class:`BitArray`)."""
        for bit in bits:
            self.write_bit(bit)

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as a fixed-width big-endian unsigned integer."""
        if width < 0:
            raise BitstreamError(f"width must be non-negative, got {width}")
        if value < 0 or value.bit_length() > width:
            raise BitstreamError(f"value {value} does not fit in {width} bits")
        for i in range(width - 1, -1, -1):
            self.write_bit((value >> i) & 1)

    # -- prefix codes ------------------------------------------------------

    def write_unary(self, value: int) -> None:
        """Append ``value`` ones followed by a terminating zero.

        This is the code Theorem 1 uses for the first routing table: the
        index of the covering neighbour ``v_t`` is written as ``1^t 0``.
        """
        if value < 0:
            raise BitstreamError(f"unary value must be non-negative, got {value}")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def write_hat(self, payload: BitArray) -> None:
        """Append the paper's ``ẑ = 1^|z| 0 z`` self-delimiting code."""
        self.write_unary(len(payload))
        self.write_bits(payload)

    def write_prime(self, payload: BitArray) -> None:
        """Append the paper's shorter ``z'`` self-delimiting code.

        ``z'`` is the hat code of the binary representation of ``|z|``
        followed by ``z``; its length is ``|z| + 2⌈log(|z|+1)⌉ + 1``.
        """
        length = len(payload)
        length_bits = BitArray.from_int(length, length.bit_length())
        self.write_hat(length_bits)
        self.write_bits(payload)

    def write_gamma(self, value: int) -> None:
        """Append the Elias gamma code of a non-negative integer.

        The classical gamma code covers positive integers; we shift by one so
        zero is representable (``value + 1`` is encoded).
        """
        if value < 0:
            raise BitstreamError(f"gamma value must be non-negative, got {value}")
        shifted = value + 1
        width = shifted.bit_length()
        self.write_unary(width - 1)
        self.write_uint(shifted - (1 << (width - 1)), width - 1)

    def write_delta(self, value: int) -> None:
        """Append the Elias delta code of a non-negative integer (shifted)."""
        if value < 0:
            raise BitstreamError(f"delta value must be non-negative, got {value}")
        shifted = value + 1
        width = shifted.bit_length()
        self.write_gamma(width - 1)
        self.write_uint(shifted - (1 << (width - 1)), width - 1)

    # -- output ------------------------------------------------------------

    def getvalue(self) -> BitArray:
        """The bits written so far, as an immutable :class:`BitArray`."""
        return BitArray._from_packed(bytes(self._buf), self._length)
