"""Sequential bit reader mirroring :class:`repro.bitio.writer.BitWriter`.

Every ``write_*`` method on the writer has a matching ``read_*`` here; a
value written then read round-trips exactly.  Reads past the end of the
stream raise :class:`~repro.errors.BitstreamError` rather than returning
garbage, so truncated encodings are always detected.
"""

from __future__ import annotations

from repro.bitio.bitarray import BitArray
from repro.errors import BitstreamError

__all__ = ["BitReader"]


class BitReader:
    """Sequential reader over a :class:`BitArray`."""

    def __init__(self, bits: BitArray) -> None:
        self._bits = bits
        self._pos = 0

    @property
    def position(self) -> int:
        """Current read offset in bits."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return len(self._bits) - self._pos

    def at_end(self) -> bool:
        """True when every bit has been consumed."""
        return self._pos >= len(self._bits)

    # -- primitive reads ---------------------------------------------------

    def read_bit(self) -> int:
        """Read a single bit."""
        if self._pos >= len(self._bits):
            raise BitstreamError("read past end of bit stream")
        bit = self._bits[self._pos]
        self._pos += 1
        return bit

    def read_bits(self, count: int) -> BitArray:
        """Read ``count`` bits as a :class:`BitArray`."""
        if count < 0:
            raise BitstreamError(f"count must be non-negative, got {count}")
        if self._pos + count > len(self._bits):
            raise BitstreamError(
                f"requested {count} bits but only {self.remaining} remain"
            )
        chunk = self._bits[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def read_uint(self, width: int) -> int:
        """Read a fixed-width big-endian unsigned integer."""
        return self.read_bits(width).to_int()

    # -- prefix codes ------------------------------------------------------

    def read_unary(self) -> int:
        """Read a ``1^k 0`` unary code, returning ``k``."""
        count = 0
        while self.read_bit():
            count += 1
        return count

    def read_hat(self) -> BitArray:
        """Read a hat-coded (``ẑ``) payload."""
        length = self.read_unary()
        return self.read_bits(length)

    def read_prime(self) -> BitArray:
        """Read a prime-coded (``z'``) payload."""
        length_bits = self.read_hat()
        length = length_bits.to_int()
        if len(length_bits) != length.bit_length():
            raise BitstreamError("malformed prime code: non-canonical length")
        return self.read_bits(length)

    def read_gamma(self) -> int:
        """Read an Elias gamma code (shifted so zero is representable)."""
        width = self.read_unary()
        mantissa = self.read_uint(width)
        return (1 << width) + mantissa - 1

    def read_delta(self) -> int:
        """Read an Elias delta code (shifted so zero is representable)."""
        width = self.read_gamma()
        mantissa = self.read_uint(width)
        return (1 << width) + mantissa - 1
