"""A compact, immutable sequence of bits.

:class:`BitArray` is the currency of the whole library: graph encodings
(Definition 2 of the paper), serialised routing functions, and the
incompressibility codecs all produce and consume it.  It stores bits packed
eight per byte (most significant bit first) and exposes a small, explicit
API: indexing, slicing, concatenation and conversion to/from ``'01'`` text.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.errors import BitstreamError

__all__ = ["BitArray"]


class BitArray:
    """An immutable array of bits, packed MSB-first into bytes."""

    __slots__ = ("_buf", "_length")

    def __init__(self, bits: Iterable[int] = ()) -> None:
        buf = bytearray()
        length = 0
        for bit in bits:
            if bit not in (0, 1):
                raise BitstreamError(f"bit must be 0 or 1, got {bit!r}")
            if length % 8 == 0:
                buf.append(0)
            if bit:
                buf[-1] |= 1 << (7 - (length % 8))
            length += 1
        self._buf = bytes(buf)
        self._length = length

    # -- constructors ------------------------------------------------------

    @classmethod
    def _from_packed(cls, buf: bytes, length: int) -> "BitArray":
        """Build directly from packed bytes (internal fast path)."""
        if length > 8 * len(buf):
            raise BitstreamError(
                f"length {length} exceeds capacity of {len(buf)} bytes"
            )
        instance = cls.__new__(cls)
        instance._buf = bytes(buf)
        instance._length = length
        return instance

    @classmethod
    def from01(cls, text: str) -> "BitArray":
        """Parse a string of ``'0'``/``'1'`` characters."""
        try:
            return cls(int(ch) for ch in text)
        except ValueError as exc:
            raise BitstreamError(f"invalid bit character in {text!r}") from exc

    @classmethod
    def from_int(cls, value: int, width: int) -> "BitArray":
        """Encode ``value`` as exactly ``width`` bits, most significant first."""
        if width < 0:
            raise BitstreamError(f"width must be non-negative, got {width}")
        if value < 0:
            raise BitstreamError(f"value must be non-negative, got {value}")
        if width < value.bit_length():
            raise BitstreamError(f"value {value} does not fit in {width} bits")
        return cls((value >> (width - 1 - i)) & 1 for i in range(width))

    @classmethod
    def zeros(cls, length: int) -> "BitArray":
        """An all-zero bit array of the given length."""
        if length < 0:
            raise BitstreamError(f"length must be non-negative, got {length}")
        return cls._from_packed(bytes((length + 7) // 8), length)

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield self[i]

    def __getitem__(self, index: Union[int, slice]) -> Union[int, "BitArray"]:
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            return BitArray(self[i] for i in range(start, stop, step))
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"bit index {index} out of range")
        return (self._buf[index // 8] >> (7 - (index % 8))) & 1

    def to01(self) -> str:
        """Render as a string of ``'0'``/``'1'`` characters."""
        return "".join("1" if bit else "0" for bit in self)

    def to_int(self) -> int:
        """Interpret the whole array as a big-endian unsigned integer."""
        value = 0
        for bit in self:
            value = (value << 1) | bit
        return value

    def to_bytes(self) -> bytes:
        """Packed byte representation (final byte zero-padded)."""
        return self._buf

    def count(self, bit: int = 1) -> int:
        """Number of positions equal to ``bit``."""
        ones = sum(byte.bit_count() for byte in self._buf)
        return ones if bit else self._length - ones

    # -- operators ---------------------------------------------------------

    def __add__(self, other: "BitArray") -> "BitArray":
        if not isinstance(other, BitArray):
            return NotImplemented
        if self._length % 8 == 0:
            return BitArray._from_packed(
                self._buf + other._buf, self._length + len(other)
            )
        combined = BitArray(list(self) + list(other))
        return combined

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self._length == other._length and self._buf == other._buf

    def __hash__(self) -> int:
        return hash((self._buf, self._length))

    def __repr__(self) -> str:
        preview = self.to01() if self._length <= 64 else self.to01()[:61] + "..."
        return f"BitArray({preview!r}, length={self._length})"
