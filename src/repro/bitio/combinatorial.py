"""Combinatorial enumerative codes.

The incompressibility proofs repeatedly encode an object by its *index* in
an enumerable set: Lemma 1 encodes a node's interconnection pattern by its
index among all patterns of the same weight (a k-subset of positions), and
Theorems 8/9 encode port assignments and labellings as permutations.  This
module provides exact rank/unrank functions for both families, plus the
``log₂ k!`` helpers used in the size accounting.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.bitio.bitarray import BitArray
from repro.bitio.reader import BitReader
from repro.bitio.writer import BitWriter
from repro.errors import BitstreamError

__all__ = [
    "rank_subset",
    "unrank_subset",
    "subset_code_width",
    "encode_subset",
    "decode_subset",
    "rank_permutation",
    "unrank_permutation",
    "permutation_code_width",
    "encode_permutation",
    "decode_permutation",
    "log2_factorial",
    "log2_binomial",
]


# -- k-subsets of {0, ..., n-1} (combinatorial number system) --------------


def rank_subset(positions: Sequence[int], n: int) -> int:
    """Rank of a k-subset of ``{0..n-1}`` in lexicographic order.

    ``positions`` must be strictly increasing.  The rank is a number in
    ``[0, C(n, k))`` and the map is a bijection, so a pattern of known
    weight can be stored in exactly ``⌈log₂ C(n, k)⌉`` bits.
    """
    previous = -1
    for p in positions:
        if not previous < p < n:
            raise BitstreamError(
                f"positions must be strictly increasing in [0, {n}), got {positions}"
            )
        previous = p
    k = len(positions)
    rank = 0
    prev = -1
    remaining = k
    for p in positions:
        for skipped in range(prev + 1, p):
            rank += math.comb(n - skipped - 1, remaining - 1)
        prev = p
        remaining -= 1
    return rank


def unrank_subset(rank: int, n: int, k: int) -> tuple[int, ...]:
    """Inverse of :func:`rank_subset`."""
    total = math.comb(n, k)
    if not 0 <= rank < total:
        raise BitstreamError(f"rank {rank} out of range [0, {total})")
    positions = []
    candidate = 0
    remaining = k
    while remaining > 0:
        count_here = math.comb(n - candidate - 1, remaining - 1)
        if rank < count_here:
            positions.append(candidate)
            remaining -= 1
        else:
            rank -= count_here
        candidate += 1
    return tuple(positions)


def subset_code_width(n: int, k: int) -> int:
    """Bits needed to store the rank of a k-subset of an n-set."""
    return max(math.comb(n, k) - 1, 0).bit_length()


def encode_subset(positions: Sequence[int], n: int) -> BitArray:
    """Fixed-width enumerative encoding of a subset of known size."""
    width = subset_code_width(n, len(positions))
    return BitArray.from_int(rank_subset(positions, n), width)


def decode_subset(bits: BitArray, n: int, k: int) -> tuple[int, ...]:
    """Inverse of :func:`encode_subset` (requires ``n`` and ``k``)."""
    expected = subset_code_width(n, k)
    if len(bits) != expected:
        raise BitstreamError(
            f"subset code for C({n},{k}) must be {expected} bits, got {len(bits)}"
        )
    return unrank_subset(bits.to_int(), n, k)


# -- permutations (Lehmer code / factorial number system) ------------------


def rank_permutation(perm: Sequence[int]) -> int:
    """Rank of a permutation of ``{0..n-1}`` in lexicographic order.

    Theorem 8 (adversarial port assignments) and Theorem 9 (outer-node
    relabellings of the Figure 1 graph) both argue that a routing function
    must contain a full permutation; this rank is its minimal encoding.
    """
    n = len(perm)
    if sorted(perm) != list(range(n)):
        raise BitstreamError(f"not a permutation of 0..{n - 1}: {perm!r}")
    rank = 0
    items = list(perm)
    for i in range(n):
        smaller = sum(1 for later in items[i + 1 :] if later < items[i])
        rank += smaller * math.factorial(n - 1 - i)
    return rank


def unrank_permutation(rank: int, n: int) -> tuple[int, ...]:
    """Inverse of :func:`rank_permutation`."""
    total = math.factorial(n)
    if not 0 <= rank < total:
        raise BitstreamError(f"rank {rank} out of range [0, {total})")
    available = list(range(n))
    perm = []
    for i in range(n):
        block = math.factorial(n - 1 - i)
        index, rank = divmod(rank, block)
        perm.append(available.pop(index))
    return tuple(perm)


def permutation_code_width(n: int) -> int:
    """Bits needed to store the rank of a permutation of n items."""
    return max(math.factorial(n) - 1, 0).bit_length()


def encode_permutation(perm: Sequence[int]) -> BitArray:
    """Fixed-width enumerative encoding of a permutation."""
    width = permutation_code_width(len(perm))
    return BitArray.from_int(rank_permutation(perm), width)


def decode_permutation(bits: BitArray, n: int) -> tuple[int, ...]:
    """Inverse of :func:`encode_permutation` (requires ``n``)."""
    expected = permutation_code_width(n)
    if len(bits) != expected:
        raise BitstreamError(
            f"permutation code for n={n} must be {expected} bits, got {len(bits)}"
        )
    return unrank_permutation(bits.to_int(), n)


# -- size accounting helpers ------------------------------------------------


def log2_factorial(n: int) -> float:
    """``log₂ n!`` computed stably via :func:`math.lgamma`."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return math.lgamma(n + 1) / math.log(2.0)


def log2_binomial(n: int, k: int) -> float:
    """``log₂ C(n, k)`` computed stably via :func:`math.lgamma`."""
    if not 0 <= k <= n:
        return float("-inf")
    return log2_factorial(n) - log2_factorial(k) - log2_factorial(n - k)


# BitWriter/BitReader convenience -------------------------------------------


def write_subset(writer: BitWriter, positions: Sequence[int], n: int) -> None:
    """Write a fixed-width subset code to an open writer."""
    writer.write_uint(rank_subset(positions, n), subset_code_width(n, len(positions)))


def read_subset(reader: BitReader, n: int, k: int) -> tuple[int, ...]:
    """Read a fixed-width subset code from an open reader."""
    return unrank_subset(reader.read_uint(subset_code_width(n, k)), n, k)
