"""Bit-level coding substrate.

Everything the paper measures is a number of *bits*; this package provides
the exact machinery to produce and parse them:

* :class:`~repro.bitio.bitarray.BitArray` — immutable packed bit sequences;
* :class:`~repro.bitio.writer.BitWriter` / :class:`~repro.bitio.reader.BitReader`
  — sequential codecs with unary, Elias gamma/delta and the paper's
  self-delimiting ``ẑ``/``z'`` codes (Definition 4);
* :mod:`~repro.bitio.combinatorial` — enumerative codes for subsets
  (interconnection patterns) and permutations (port assignments,
  relabellings).
"""

from repro.bitio.bitarray import BitArray
from repro.bitio.combinatorial import (
    decode_permutation,
    decode_subset,
    encode_permutation,
    encode_subset,
    log2_binomial,
    log2_factorial,
    permutation_code_width,
    rank_permutation,
    rank_subset,
    read_subset,
    subset_code_width,
    unrank_permutation,
    unrank_subset,
    write_subset,
)
from repro.bitio.reader import BitReader
from repro.bitio.writer import BitWriter

__all__ = [
    "BitArray",
    "BitReader",
    "BitWriter",
    "decode_permutation",
    "decode_subset",
    "encode_permutation",
    "encode_subset",
    "log2_binomial",
    "log2_factorial",
    "permutation_code_width",
    "rank_permutation",
    "rank_subset",
    "read_subset",
    "subset_code_width",
    "unrank_permutation",
    "unrank_subset",
    "write_subset",
]
