"""Profiling hooks: ``profile_section`` and the ``@timed`` decorator.

Both feed wall-clock phase timings into a :class:`MetricsRegistry` as the
``repro_phase_seconds`` histogram (labelled by phase) plus a
``repro_phase_calls_total`` counter, so a build or codec run ends with a
queryable phase-time breakdown instead of ad-hoc prints.

Phase names are hierarchical by convention (``build.thm1-two-level.plan``);
:func:`phase_breakdown` rolls the registry back up into a plain
``{phase: {calls, total_s, mean_s}}`` dict for reports and JSON output.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional, TypeVar

from repro.observability.registry import MetricsRegistry, get_registry

__all__ = ["profile_section", "timed", "phase_breakdown"]

PHASE_HISTOGRAM = "repro_phase_seconds"
PHASE_COUNTER = "repro_phase_calls_total"

F = TypeVar("F", bound=Callable)


@contextmanager
def profile_section(
    phase: str, registry: Optional[MetricsRegistry] = None
) -> Iterator[None]:
    """Time the enclosed block and record it under ``phase``.

    The timing is recorded even when the block raises, so failed builds
    still show up in the breakdown.
    """
    reg = registry if registry is not None else get_registry()
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        reg.histogram(PHASE_HISTOGRAM, phase=phase).observe(elapsed)
        reg.counter(PHASE_COUNTER, phase=phase).inc()


def timed(
    phase: Optional[str] = None, registry: Optional[MetricsRegistry] = None
) -> Callable[[F], F]:
    """Decorator form of :func:`profile_section`.

    ``@timed()`` derives the phase name from the function's qualified name;
    ``@timed("build.interval.dfs")`` pins it explicitly.
    """

    def decorate(func: F) -> F:
        name = phase or f"{func.__module__}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with profile_section(name, registry):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def phase_breakdown(
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Dict[str, float]]:
    """Roll the phase histograms up into ``{phase: calls/total_s/mean_s}``."""
    reg = registry if registry is not None else get_registry()
    out: Dict[str, Dict[str, float]] = {}
    for metric in reg.metrics():
        if metric.name != PHASE_HISTOGRAM or metric.kind != "histogram":
            continue
        labels = dict(metric.labels)
        phase = labels.get("phase", "?")
        out[phase] = {
            "calls": metric.count,
            "total_s": metric.sum,
            "mean_s": metric.mean if metric.count else 0.0,
        }
    return out
