"""The run ledger: a manifest identifying the exact run behind an artifact.

Every CLI invocation and every benchmark run constructs one
:class:`RunManifest` and embeds it in the artifacts it writes — trace
JSONL files (first row), metrics dumps, ``--json`` summaries, and the
schema-versioned BENCH results — so any number committed to the repo is
traceable to the git revision, seeds, graph, and toolchain that produced
it.

The manifest is a frozen value object: :meth:`RunManifest.capture` fills
in the environment (git sha, interpreter, numpy, platform, timestamp),
callers supply the run's identity (command, scheme, ``n``, seed, free-form
parameters, optionally the graph for a structural fingerprint), and
:meth:`RunManifest.completed` stamps the final wall time by returning an
updated copy.  ``to_dict``/``from_dict`` round-trip losslessly through
JSON.
"""

from __future__ import annotations

import dataclasses
import json
import platform as _platform
import subprocess
import sys
import time as _time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "ManifestError",
    "RunManifest",
    "embedded_manifest",
]

MANIFEST_SCHEMA_VERSION = 1
"""Bumped when the manifest's field set changes incompatibly."""


class ManifestError(ReproError):
    """An artifact's embedded manifest is missing or malformed."""


_GIT_SHA_CACHE: Optional[str] = None


def _git_sha() -> str:
    """Best-effort ``HEAD`` sha of the working tree (cached per process)."""
    global _GIT_SHA_CACHE
    if _GIT_SHA_CACHE is None:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5.0,
                check=False,
            )
            sha = out.stdout.strip()
            _GIT_SHA_CACHE = sha if out.returncode == 0 and sha else "unknown"
        except OSError:
            _GIT_SHA_CACHE = "unknown"
    return _GIT_SHA_CACHE


def _numpy_version() -> Optional[str]:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        return None
    return str(numpy.__version__)


def _clean_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """JSON-safe copy of free-form parameters (non-primitives stringified)."""
    cleaned: Dict[str, Any] = {}
    for key, value in sorted(params.items()):
        if isinstance(value, (str, int, float, bool)) or value is None:
            cleaned[str(key)] = value
        elif isinstance(value, (list, tuple)):
            cleaned[str(key)] = [
                item
                if isinstance(item, (str, int, float, bool)) or item is None
                else repr(item)
                for item in value
            ]
        else:
            cleaned[str(key)] = repr(value)
    return cleaned


@dataclass(frozen=True)
class RunManifest:
    """Identity card of one run: what ran, on what, with which toolchain."""

    run_id: str
    """Unique id of this invocation (random, for cross-artifact joins)."""
    command: str
    """What ran: a CLI subcommand (``simulate-chaos``) or ``bench:<name>``."""
    seed: Optional[int] = None
    scheme: Optional[str] = None
    n: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)
    """Free-form run parameters (sanitised to JSON-safe values)."""
    graph_fingerprint: Optional[Tuple[int, int, int]] = None
    """``(n, edge_count, adjacency crc32)`` from ``structural_fingerprint``."""
    git_sha: str = "unknown"
    python_version: str = ""
    numpy_version: Optional[str] = None
    platform: str = ""
    created_at: str = ""
    """ISO-8601 UTC timestamp of manifest capture."""
    wall_time_s: Optional[float] = None
    """Total wall time of the run; stamped at the end via :meth:`completed`."""
    schema_version: int = MANIFEST_SCHEMA_VERSION

    @classmethod
    def capture(
        cls,
        command: str,
        *,
        seed: Optional[int] = None,
        scheme: Optional[str] = None,
        n: Optional[int] = None,
        params: Optional[Mapping[str, Any]] = None,
        graph: Optional[Any] = None,
        graph_fingerprint: Optional[Tuple[int, int, int]] = None,
    ) -> "RunManifest":
        """Snapshot the environment around a run that is about to start."""
        if graph is not None and graph_fingerprint is None:
            # Imported lazily: repro.graphs pulls in the observability
            # package for its context tracing, so a module-level import
            # here would be circular.
            from repro.graphs.context import structural_fingerprint

            graph_fingerprint = structural_fingerprint(graph)
        return cls(
            run_id=uuid.uuid4().hex[:12],
            command=command,
            seed=seed,
            scheme=scheme,
            n=n,
            params=_clean_params(params or {}),
            graph_fingerprint=graph_fingerprint,
            git_sha=_git_sha(),
            python_version=_platform.python_version(),
            numpy_version=_numpy_version(),
            platform=f"{sys.platform}/{_platform.machine()}",
            created_at=_time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", _time.gmtime()
            ),
        )

    def completed(self, wall_time_s: float) -> "RunManifest":
        """Copy of this manifest with the final wall time stamped in."""
        return dataclasses.replace(self, wall_time_s=wall_time_s)

    def with_graph(self, graph: Any) -> "RunManifest":
        """Copy with the graph fingerprint filled in (post-build)."""
        from repro.graphs.context import structural_fingerprint

        return dataclasses.replace(
            self, graph_fingerprint=structural_fingerprint(graph)
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (tuples become lists; round-trips via from_dict)."""
        row = dataclasses.asdict(self)
        if self.graph_fingerprint is not None:
            row["graph_fingerprint"] = list(self.graph_fingerprint)
        return row

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "RunManifest":
        """Rebuild a manifest from a JSON row (unknown keys rejected)."""
        if not isinstance(row, Mapping):
            raise ManifestError(
                f"manifest must be an object, got {type(row).__name__}"
            )
        data = dict(row)
        fingerprint = data.get("graph_fingerprint")
        if fingerprint is not None:
            if len(fingerprint) != 3:
                raise ManifestError(
                    "graph_fingerprint must have exactly 3 components, "
                    f"got {len(fingerprint)}"
                )
            data["graph_fingerprint"] = tuple(int(x) for x in fingerprint)
        try:
            return cls(**data)
        except TypeError as exc:
            raise ManifestError(f"bad manifest row ({exc})") from exc

    def to_json(self) -> str:
        """Compact single-line JSON (for ``# manifest:`` comment rows)."""
        return json.dumps(self.to_dict(), sort_keys=True)


def embedded_manifest(payload: Mapping[str, Any]) -> RunManifest:
    """Extract and parse the ``"manifest"`` key of an artifact payload.

    Raises :class:`ManifestError` when the artifact carries no manifest —
    the loader-side half of the "every artifact embeds a RunManifest"
    guarantee.
    """
    if "manifest" not in payload:
        raise ManifestError("artifact has no embedded 'manifest' key")
    return RunManifest.from_dict(payload["manifest"])
