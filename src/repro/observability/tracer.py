"""Hop-level tracing of simulated message routing.

A tracer receives one flat :class:`TraceEvent` per interesting moment of a
message's life inside :class:`~repro.simulator.network.Network` or
:class:`~repro.simulator.network.EventDrivenSimulator`:

``inject``
    The message enters the network (records source, destination, time).
``hop``
    A node made a forwarding decision: which node, which neighbour it
    chose, the hop ordinal, and — in the event engine — how long the hop
    took end to end (queue wait + service + wire).
``retry``
    The source re-injected a dropped message after backoff.
``fault``
    A scheduled fault event fired (link/node went down or came back).
``drop`` / ``deliver``
    Final outcome; drops carry the structured ``DropReason`` name, the
    free-text detail, and — when the simulator knows it — the failed
    subject (``["link", u, v]`` or ``["node", u]``) so a trace report can
    attribute the drop to the fault window that caused it.  Stale
    deliveries (the table routed on out-of-date topology) carry
    ``detail="stale"``.
``corrupt`` / ``quarantine`` / ``heal``
    The table-corruption lifecycle of one node: its packed routing
    function was damaged, the damage was detected (the node stops
    forwarding), and the function was rebuilt pristine from graph+model
    knowledge.  All three carry the node subject, so corrupt→heal opens a
    fault-attribution window exactly like link/node down→up.
``mutate`` / ``repair`` / ``converged``
    The live-churn lifecycle: a topology mutation was applied to the
    running network (``reason`` carries the ``TopologyMutationKind``
    value, ``subject`` the edge or node), a dirtied node's table was
    rebuilt and installed, and the scheme finished converging (``duration``
    is the convergence time since the first uncovered mutation).
``ctx``
    The shared :class:`~repro.graphs.context.GraphContext` computed a
    fresh derivation (``detail`` names the kind, e.g. ``distances``) or
    was explicitly invalidated.  Cache *hits* are deliberately not traced
    — they are counted in the metrics registry — so a trace shows exactly
    the work that was actually performed.
``persist`` / ``reject`` / ``recover`` / ``swap``
    The durable-store lifecycle (:mod:`repro.store`): a journal record or
    snapshot was durably written (``reason`` carries the operation —
    ``put``/``swap``/``snapshot``/``compact``); a damaged record or
    snapshot was detected and quarantined instead of trusted (``reason``
    carries the damage class, ``detail`` the scan's diagnosis); a
    :class:`~repro.store.recovery.RecoveryManager` finished rebuilding
    the catalog (``duration`` is the recovery time, ``detail`` the
    source it recovered from); and a scheme's active generation was
    switched by a verified hot-swap.
``sample``
    A :class:`~repro.observability.sampling.SamplingTracer` summarising
    its own behaviour on close: how many messages it saw, kept by the
    seeded coin, and promoted because they turned anomalous.
``slo``
    A self-observed guarantee was violated (e.g. the sampler failed to
    retain an anomalous message).  Emitted defensively; a healthy run
    contains none.

Causality
---------

Every emitter returns the sequence number of the event it recorded, and
events carry two optional links that turn a flat trace into a tree:

* ``parent`` — the previous span of the *same message* (assigned
  automatically by :meth:`Tracer._record`, so ``inject → hop → … →
  deliver`` chains without any caller involvement);
* ``cause``  — an explicit cross-message/control-plane edge supplied by
  the caller, e.g. a ``quarantine`` caused by a ``corrupt`` span, or a
  ``repair``/``converged`` caused by the ``mutate`` span that dirtied it.

The simulators take ``tracer=None`` by default and normalise any tracer
whose ``enabled`` flag is false (e.g. :data:`NULL_TRACER`) to ``None``, so
the disabled path costs a single ``is None`` test per event site — that is
the zero-overhead guarantee the benchmarks pin down.

Run ledger
----------

:class:`JsonlTracer` accepts an optional
:class:`~repro.observability.manifest.RunManifest`, written as the first
JSONL row (``{"manifest": {...}}``) so every trace file is traceable to
the exact invocation that produced it.  The read helpers skip the
manifest row transparently; :func:`read_trace_manifest` recovers it.
Malformed rows (including a truncated final line from a killed run)
raise :class:`TraceDecodeError` with the offending location instead of
leaking a raw ``json`` or ``TypeError`` crash.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import asdict, dataclass
from typing import (
    IO,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ReproError
from repro.observability.manifest import RunManifest

__all__ = [
    "TraceEvent",
    "TraceDecodeError",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "JsonlTracer",
    "read_trace",
    "read_trace_manifest",
    "iter_trace",
    "load_events",
]

Subject = Tuple[str, ...]


class TraceDecodeError(ReproError):
    """A trace file row could not be decoded (bad JSON or unknown shape)."""

    def __init__(self, source: str, line: int, problem: str) -> None:
        super().__init__(f"{source}:{line}: {problem}")
        self.source = source
        self.line = line
        self.problem = problem


@dataclass(frozen=True)
class TraceEvent:
    """One moment in a traced run (a span point, JSONL-serialisable)."""

    event: str
    """``inject`` | ``hop`` | ``retry`` | ``fault`` | ``drop`` | ``deliver``
    | ``corrupt`` | ``quarantine`` | ``heal`` | ``ctx`` | ``mutate`` |
    ``repair`` | ``converged`` | ``persist`` | ``reject`` | ``recover`` |
    ``swap`` | ``sample`` | ``slo``."""
    seq: int = 0
    """Tracer-assigned monotone sequence number (total order of emission)."""
    time: float = 0.0
    """Simulated time of the event (0.0 in the untimed walker)."""
    msg_id: Optional[int] = None
    source: Optional[int] = None
    destination: Optional[int] = None
    node: Optional[int] = None
    """Node where the event happened (hop decisions, drops)."""
    next_node: Optional[int] = None
    """Chosen forwarding neighbour (hop events; the ``port`` of the span)."""
    hop: Optional[int] = None
    """Zero-based hop ordinal within the current attempt."""
    attempt: Optional[int] = None
    """Zero-based retry attempt the message is on."""
    duration: Optional[float] = None
    """Event-engine hop cost: queue wait + service + link latency."""
    reason: Optional[str] = None
    """``DropReason.name`` for drops/retries; ``FaultKind.value`` for faults."""
    detail: Optional[str] = None
    subject: Optional[Subject] = None
    """Failed entity as ``("link", u, v)`` / ``("node", u)`` strings."""
    parent: Optional[int] = None
    """``seq`` of the previous span of the same message (intra-message tree)."""
    cause: Optional[int] = None
    """``seq`` of the control-plane span that caused this one (cross links)."""

    def to_dict(self) -> dict:
        """Compact dict with ``None`` fields elided (JSONL row)."""
        return {
            key: value
            for key, value in asdict(self).items()
            if value is not None
        }

    @classmethod
    def from_dict(cls, row: dict) -> "TraceEvent":
        """Rebuild an event from a JSONL row (unknown keys are rejected)."""
        if "subject" in row and row["subject"] is not None:
            row = dict(row)
            row["subject"] = tuple(str(part) for part in row["subject"])
        return cls(**row)


def link_subject(u: int, v: int) -> Subject:
    """Canonical subject tuple for a link (endpoint order normalised)."""
    lo, hi = sorted((u, v))
    return ("link", str(lo), str(hi))


def node_subject(u: int) -> Subject:
    """Canonical subject tuple for a node."""
    return ("node", str(u))


_TERMINAL_EVENTS = frozenset(("deliver", "drop"))


class Tracer:
    """Base tracer: builds events, assigns sequence numbers, dispatches.

    Subclasses override :meth:`emit`.  All convenience emitters funnel
    through :meth:`_record` so the sequence numbering (and therefore span
    ordering) is uniform across sinks.  ``_record`` also maintains the
    per-message ``parent`` chain: each event of a message links back to
    the previous span of the same message, so a trace replays as a tree
    without any cooperation from the emission sites.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._seq = itertools.count()
        self._last_span: Dict[int, int] = {}

    def emit(self, event: TraceEvent) -> None:
        """Deliver one event to the sink."""
        raise NotImplementedError

    # -- sampling protocol ----------------------------------------------------
    #
    # Emission sites that process many messages (the event engine) ask
    # ``wants(msg_id)`` once per message and cache the answer instead of
    # paying a method call per suppressed span.  Base tracers keep every
    # message, so the default is a constant ``True`` and ``promote`` —
    # re-announcing a message the caller had suppressed — is a no-op.
    # ``SamplingTracer`` overrides both.

    def wants(self, msg_id: int) -> bool:
        """Should the caller emit this message's spans at all?"""
        return True

    def promote(
        self,
        msg_id: int,
        source: int,
        destination: int,
        inject_time: float = 0.0,
    ) -> None:
        """A suppressed message turned anomalous; start streaming it."""

    def _record(self, event: str, **fields: Any) -> int:
        seq = next(self._seq)
        msg_id = fields.get("msg_id")
        if msg_id is not None:
            if fields.get("parent") is None:
                parent = self._last_span.get(msg_id)
                if parent is not None:
                    fields["parent"] = parent
            if event in _TERMINAL_EVENTS:
                self._last_span.pop(msg_id, None)
            else:
                self._last_span[msg_id] = seq
        self.emit(TraceEvent(event=event, seq=seq, **fields))
        return seq

    # -- convenience emitters -------------------------------------------------

    def inject(
        self,
        msg_id: int,
        source: int,
        destination: int,
        time: float = 0.0,
        attempt: int = 0,
    ) -> int:
        """The message enters the network."""
        return self._record(
            "inject",
            msg_id=msg_id,
            source=source,
            destination=destination,
            time=time,
            attempt=attempt,
        )

    def hop(
        self,
        msg_id: int,
        node: int,
        next_node: int,
        hop: int,
        time: float = 0.0,
        duration: Optional[float] = None,
        attempt: int = 0,
    ) -> int:
        """A node chose an outgoing edge for the message."""
        return self._record(
            "hop",
            msg_id=msg_id,
            node=node,
            next_node=next_node,
            hop=hop,
            time=time,
            duration=duration,
            attempt=attempt,
        )

    def retry(
        self,
        msg_id: int,
        source: int,
        attempt: int,
        time: float,
        reason: str,
        duration: Optional[float] = None,
    ) -> int:
        """The source scheduled a re-transmission after a retryable drop."""
        return self._record(
            "retry",
            msg_id=msg_id,
            source=source,
            attempt=attempt,
            time=time,
            reason=reason,
            duration=duration,
        )

    def fault(
        self, kind: str, subject: Subject, time: float, detail: Optional[str] = None
    ) -> int:
        """A scheduled fault event fired."""
        return self._record(
            "fault", reason=kind, subject=subject, time=time, detail=detail
        )

    def drop(
        self,
        msg_id: int,
        node: int,
        reason: str,
        time: float = 0.0,
        detail: Optional[str] = None,
        subject: Optional[Subject] = None,
        attempt: int = 0,
        hop: Optional[int] = None,
    ) -> int:
        """Final outcome: the message was dropped at ``node``."""
        return self._record(
            "drop",
            msg_id=msg_id,
            node=node,
            reason=reason,
            time=time,
            detail=detail,
            subject=subject,
            attempt=attempt,
            hop=hop,
        )

    def deliver(
        self,
        msg_id: int,
        node: int,
        time: float = 0.0,
        hop: Optional[int] = None,
        attempt: int = 0,
        detail: Optional[str] = None,
    ) -> int:
        """Final outcome: the message arrived at its destination.

        ``detail="stale"`` marks a delivery that routed on out-of-date
        topology knowledge (an anomaly for the sampler's purposes).
        """
        return self._record(
            "deliver", msg_id=msg_id, node=node, time=time, hop=hop,
            attempt=attempt, detail=detail,
        )

    def corrupt(
        self,
        node: int,
        time: float = 0.0,
        detail: Optional[str] = None,
        cause: Optional[int] = None,
    ) -> int:
        """A node's packed routing function was corrupted."""
        return self._record(
            "corrupt",
            node=node,
            time=time,
            detail=detail,
            subject=node_subject(node),
            cause=cause,
        )

    def quarantine(
        self,
        node: int,
        time: float = 0.0,
        detail: Optional[str] = None,
        cause: Optional[int] = None,
    ) -> int:
        """Table corruption was detected; the node stops forwarding."""
        return self._record(
            "quarantine",
            node=node,
            time=time,
            detail=detail,
            subject=node_subject(node),
            cause=cause,
        )

    def heal(
        self, node: int, time: float = 0.0, cause: Optional[int] = None
    ) -> int:
        """The node's function was rebuilt pristine (self-heal or re-push)."""
        return self._record(
            "heal", node=node, time=time, subject=node_subject(node),
            cause=cause,
        )

    def mutate(
        self,
        kind: str,
        subject: Subject,
        time: float = 0.0,
        detail: Optional[str] = None,
        cause: Optional[int] = None,
    ) -> int:
        """A topology mutation was applied to the live network."""
        return self._record(
            "mutate", reason=kind, subject=subject, time=time, detail=detail,
            cause=cause,
        )

    def repair(
        self,
        node: int,
        time: float = 0.0,
        detail: Optional[str] = None,
        cause: Optional[int] = None,
    ) -> int:
        """A dirtied node's routing table was rebuilt and installed."""
        return self._record(
            "repair",
            node=node,
            time=time,
            detail=detail,
            subject=node_subject(node),
            cause=cause,
        )

    def converged(
        self,
        time: float = 0.0,
        duration: Optional[float] = None,
        detail: Optional[str] = None,
        cause: Optional[int] = None,
    ) -> int:
        """Every table is consistent with the live topology again."""
        return self._record(
            "converged", time=time, duration=duration, detail=detail,
            cause=cause,
        )

    def persist(
        self,
        op: str,
        detail: Optional[str] = None,
        time: float = 0.0,
        duration: Optional[float] = None,
    ) -> int:
        """The store durably wrote something (``op``: ``put`` | ``swap`` |
        ``snapshot`` | ``compact``); ``detail`` names the scheme/file."""
        return self._record(
            "persist", reason=op, detail=detail, time=time, duration=duration
        )

    def reject(
        self,
        reason: str,
        detail: Optional[str] = None,
        time: float = 0.0,
    ) -> int:
        """Damaged store bytes were detected and quarantined, not trusted."""
        return self._record(
            "reject", reason=reason, detail=detail, time=time
        )

    def recover(
        self,
        detail: Optional[str] = None,
        time: float = 0.0,
        duration: Optional[float] = None,
        reason: Optional[str] = None,
    ) -> int:
        """A recovery pass rebuilt the catalog (``detail`` names the
        source: the journal, a snapshot, or an empty store)."""
        return self._record(
            "recover", detail=detail, time=time, duration=duration,
            reason=reason,
        )

    def swap(
        self,
        detail: str,
        time: float = 0.0,
        cause: Optional[int] = None,
    ) -> int:
        """A verified hot-swap switched a scheme's active generation."""
        return self._record("swap", detail=detail, time=time, cause=cause)

    def ctx(
        self,
        kind: str,
        op: str,
        time: float = 0.0,
        duration: Optional[float] = None,
    ) -> int:
        """The graph context computed (``op="miss"``) or dropped
        (``op="invalidate"``) the derivation named by ``kind``."""
        return self._record(
            "ctx", reason=op, detail=kind, time=time, duration=duration
        )

    def sample(
        self,
        detail: str,
        time: float = 0.0,
        duration: Optional[float] = None,
    ) -> int:
        """A sampling tracer summarises its keep/promote/suppress tallies."""
        return self._record(
            "sample", detail=detail, time=time, duration=duration
        )

    def slo(
        self,
        reason: str,
        time: float = 0.0,
        detail: Optional[str] = None,
        subject: Optional[Subject] = None,
    ) -> int:
        """A self-observed guarantee was violated (defensive marker span)."""
        return self._record(
            "slo", reason=reason, time=time, detail=detail, subject=subject
        )


class NullTracer(Tracer):
    """Disabled tracer; simulators normalise it away entirely."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - never hot
        pass


NULL_TRACER = NullTracer()
"""Shared no-op tracer instance."""


class RecordingTracer(Tracer):
    """Keeps every event in memory (tests and in-process reports)."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def events_for(self, msg_id: int) -> List[TraceEvent]:
        """All events of one message, in emission order."""
        return [e for e in self.events if e.msg_id == msg_id]


class JsonlTracer(Tracer):
    """Streams events as JSON Lines to a file (the ``--trace-out`` sink).

    When a :class:`~repro.observability.manifest.RunManifest` is supplied
    it is written as the first row (``{"manifest": {...}}``) so the trace
    carries its own run ledger.  Because events stream as they happen,
    the embedded manifest reports the invocation's start state; the
    final wall time lives in the run's metrics/summary artifacts.
    """

    def __init__(
        self,
        target: Union[str, os.PathLike, IO[str]],
        manifest: Optional[RunManifest] = None,
    ) -> None:
        super().__init__()
        if hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._owns_handle = False
        else:
            self._handle = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        self.written = 0
        self.manifest = manifest
        if manifest is not None:
            self._handle.write(
                json.dumps({"manifest": manifest.to_dict()}, sort_keys=True)
            )
            self._handle.write("\n")

    def emit(self, event: TraceEvent) -> None:
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True))
        self._handle.write("\n")
        self.written += 1

    def close(self) -> None:
        """Flush and (if this tracer opened the file) close the sink."""
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _decode_row(line: str, source: str, lineno: int) -> Optional[TraceEvent]:
    """One JSONL row → event; ``None`` for the manifest row; raise on junk."""
    try:
        row = json.loads(line)
    except ValueError as exc:
        raise TraceDecodeError(
            source, lineno, f"not valid JSON ({exc})"
        ) from exc
    if not isinstance(row, dict):
        raise TraceDecodeError(
            source, lineno, f"expected an object row, got {type(row).__name__}"
        )
    if "event" not in row:
        if "manifest" in row:
            return None
        raise TraceDecodeError(
            source, lineno, "row has neither 'event' nor 'manifest'"
        )
    try:
        return TraceEvent.from_dict(row)
    except TypeError as exc:
        raise TraceDecodeError(
            source, lineno, f"bad trace event ({exc})"
        ) from exc


def load_events(
    lines: Sequence[str], source: str = "<events>"
) -> List[TraceEvent]:
    """Parse JSONL rows (blank lines and the manifest row skipped).

    Raises :class:`TraceDecodeError` — not a bare ``json``/``TypeError``
    crash — when a row is malformed, naming the source and line.
    """
    events = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if line:
            event = _decode_row(line, source, lineno)
            if event is not None:
                events.append(event)
    return events


def read_trace(path: Union[str, os.PathLike]) -> List[TraceEvent]:
    """Read a ``--trace-out`` JSONL file back into :class:`TraceEvent` s."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_events(handle.readlines(), source=os.fspath(path))


def read_trace_manifest(
    path: Union[str, os.PathLike],
) -> Optional[RunManifest]:
    """Recover the embedded :class:`RunManifest` from a trace file.

    Returns ``None`` when the trace was written without a manifest (the
    pre-ledger format).  Only leading blank lines may precede the
    manifest row.
    """
    source = os.fspath(path)
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError as exc:
                raise TraceDecodeError(
                    source, lineno, f"not valid JSON ({exc})"
                ) from exc
            if isinstance(row, dict) and "manifest" in row:
                return RunManifest.from_dict(row["manifest"])
            return None
    return None


def iter_trace(path: Union[str, os.PathLike]) -> Iterator[TraceEvent]:
    """Stream a JSONL trace without holding the whole file."""
    source = os.fspath(path)
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                event = _decode_row(line, source, lineno)
                if event is not None:
                    yield event
