"""Hop-level tracing of simulated message routing.

A tracer receives one flat :class:`TraceEvent` per interesting moment of a
message's life inside :class:`~repro.simulator.network.Network` or
:class:`~repro.simulator.network.EventDrivenSimulator`:

``inject``
    The message enters the network (records source, destination, time).
``hop``
    A node made a forwarding decision: which node, which neighbour it
    chose, the hop ordinal, and — in the event engine — how long the hop
    took end to end (queue wait + service + wire).
``retry``
    The source re-injected a dropped message after backoff.
``fault``
    A scheduled fault event fired (link/node went down or came back).
``drop`` / ``deliver``
    Final outcome; drops carry the structured ``DropReason`` name, the
    free-text detail, and — when the simulator knows it — the failed
    subject (``["link", u, v]`` or ``["node", u]``) so a trace report can
    attribute the drop to the fault window that caused it.
``corrupt`` / ``quarantine`` / ``heal``
    The table-corruption lifecycle of one node: its packed routing
    function was damaged, the damage was detected (the node stops
    forwarding), and the function was rebuilt pristine from graph+model
    knowledge.  All three carry the node subject, so corrupt→heal opens a
    fault-attribution window exactly like link/node down→up.
``mutate`` / ``repair`` / ``converged``
    The live-churn lifecycle: a topology mutation was applied to the
    running network (``reason`` carries the ``TopologyMutationKind``
    value, ``subject`` the edge or node), a dirtied node's table was
    rebuilt and installed, and the scheme finished converging (``duration``
    is the convergence time since the first uncovered mutation).
``ctx``
    The shared :class:`~repro.graphs.context.GraphContext` computed a
    fresh derivation (``detail`` names the kind, e.g. ``distances``) or
    was explicitly invalidated.  Cache *hits* are deliberately not traced
    — they are counted in the metrics registry — so a trace shows exactly
    the work that was actually performed.

The simulators take ``tracer=None`` by default and normalise any tracer
whose ``enabled`` flag is false (e.g. :data:`NULL_TRACER`) to ``None``, so
the disabled path costs a single ``is None`` test per event site — that is
the zero-overhead guarantee the benchmarks pin down.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import asdict, dataclass
from typing import IO, Any, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "JsonlTracer",
    "read_trace",
    "load_events",
]

Subject = Tuple[str, ...]


@dataclass(frozen=True)
class TraceEvent:
    """One moment in a traced run (a span point, JSONL-serialisable)."""

    event: str
    """``inject`` | ``hop`` | ``retry`` | ``fault`` | ``drop`` | ``deliver``
    | ``corrupt`` | ``quarantine`` | ``heal`` | ``ctx`` | ``mutate`` |
    ``repair`` | ``converged``."""
    seq: int = 0
    """Tracer-assigned monotone sequence number (total order of emission)."""
    time: float = 0.0
    """Simulated time of the event (0.0 in the untimed walker)."""
    msg_id: Optional[int] = None
    source: Optional[int] = None
    destination: Optional[int] = None
    node: Optional[int] = None
    """Node where the event happened (hop decisions, drops)."""
    next_node: Optional[int] = None
    """Chosen forwarding neighbour (hop events; the ``port`` of the span)."""
    hop: Optional[int] = None
    """Zero-based hop ordinal within the current attempt."""
    attempt: Optional[int] = None
    """Zero-based retry attempt the message is on."""
    duration: Optional[float] = None
    """Event-engine hop cost: queue wait + service + link latency."""
    reason: Optional[str] = None
    """``DropReason.name`` for drops/retries; ``FaultKind.value`` for faults."""
    detail: Optional[str] = None
    subject: Optional[Subject] = None
    """Failed entity as ``("link", u, v)`` / ``("node", u)`` strings."""

    def to_dict(self) -> dict:
        """Compact dict with ``None`` fields elided (JSONL row)."""
        return {
            key: value
            for key, value in asdict(self).items()
            if value is not None
        }

    @classmethod
    def from_dict(cls, row: dict) -> "TraceEvent":
        """Rebuild an event from a JSONL row (unknown keys are rejected)."""
        if "subject" in row and row["subject"] is not None:
            row = dict(row)
            row["subject"] = tuple(str(part) for part in row["subject"])
        return cls(**row)


def link_subject(u: int, v: int) -> Subject:
    """Canonical subject tuple for a link (endpoint order normalised)."""
    lo, hi = sorted((u, v))
    return ("link", str(lo), str(hi))


def node_subject(u: int) -> Subject:
    """Canonical subject tuple for a node."""
    return ("node", str(u))


class Tracer:
    """Base tracer: builds events, assigns sequence numbers, dispatches.

    Subclasses override :meth:`emit`.  All convenience emitters funnel
    through :meth:`_record` so the sequence numbering (and therefore span
    ordering) is uniform across sinks.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._seq = itertools.count()

    def emit(self, event: TraceEvent) -> None:
        """Deliver one event to the sink."""
        raise NotImplementedError

    def _record(self, event: str, **fields: Any) -> None:
        self.emit(TraceEvent(event=event, seq=next(self._seq), **fields))

    # -- convenience emitters -------------------------------------------------

    def inject(
        self,
        msg_id: int,
        source: int,
        destination: int,
        time: float = 0.0,
        attempt: int = 0,
    ) -> None:
        """The message enters the network."""
        self._record(
            "inject",
            msg_id=msg_id,
            source=source,
            destination=destination,
            time=time,
            attempt=attempt,
        )

    def hop(
        self,
        msg_id: int,
        node: int,
        next_node: int,
        hop: int,
        time: float = 0.0,
        duration: Optional[float] = None,
        attempt: int = 0,
    ) -> None:
        """A node chose an outgoing edge for the message."""
        self._record(
            "hop",
            msg_id=msg_id,
            node=node,
            next_node=next_node,
            hop=hop,
            time=time,
            duration=duration,
            attempt=attempt,
        )

    def retry(
        self,
        msg_id: int,
        source: int,
        attempt: int,
        time: float,
        reason: str,
        duration: Optional[float] = None,
    ) -> None:
        """The source scheduled a re-transmission after a retryable drop."""
        self._record(
            "retry",
            msg_id=msg_id,
            source=source,
            attempt=attempt,
            time=time,
            reason=reason,
            duration=duration,
        )

    def fault(
        self, kind: str, subject: Subject, time: float, detail: Optional[str] = None
    ) -> None:
        """A scheduled fault event fired."""
        self._record(
            "fault", reason=kind, subject=subject, time=time, detail=detail
        )

    def drop(
        self,
        msg_id: int,
        node: int,
        reason: str,
        time: float = 0.0,
        detail: Optional[str] = None,
        subject: Optional[Subject] = None,
        attempt: int = 0,
        hop: Optional[int] = None,
    ) -> None:
        """Final outcome: the message was dropped at ``node``."""
        self._record(
            "drop",
            msg_id=msg_id,
            node=node,
            reason=reason,
            time=time,
            detail=detail,
            subject=subject,
            attempt=attempt,
            hop=hop,
        )

    def deliver(
        self,
        msg_id: int,
        node: int,
        time: float = 0.0,
        hop: Optional[int] = None,
        attempt: int = 0,
    ) -> None:
        """Final outcome: the message arrived at its destination."""
        self._record(
            "deliver", msg_id=msg_id, node=node, time=time, hop=hop,
            attempt=attempt,
        )

    def corrupt(
        self, node: int, time: float = 0.0, detail: Optional[str] = None
    ) -> None:
        """A node's packed routing function was corrupted."""
        self._record(
            "corrupt",
            node=node,
            time=time,
            detail=detail,
            subject=node_subject(node),
        )

    def quarantine(
        self, node: int, time: float = 0.0, detail: Optional[str] = None
    ) -> None:
        """Table corruption was detected; the node stops forwarding."""
        self._record(
            "quarantine",
            node=node,
            time=time,
            detail=detail,
            subject=node_subject(node),
        )

    def heal(self, node: int, time: float = 0.0) -> None:
        """The node's function was rebuilt pristine (self-heal or re-push)."""
        self._record(
            "heal", node=node, time=time, subject=node_subject(node)
        )

    def mutate(
        self,
        kind: str,
        subject: Subject,
        time: float = 0.0,
        detail: Optional[str] = None,
    ) -> None:
        """A topology mutation was applied to the live network."""
        self._record(
            "mutate", reason=kind, subject=subject, time=time, detail=detail
        )

    def repair(
        self, node: int, time: float = 0.0, detail: Optional[str] = None
    ) -> None:
        """A dirtied node's routing table was rebuilt and installed."""
        self._record(
            "repair",
            node=node,
            time=time,
            detail=detail,
            subject=node_subject(node),
        )

    def converged(
        self,
        time: float = 0.0,
        duration: Optional[float] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Every table is consistent with the live topology again."""
        self._record(
            "converged", time=time, duration=duration, detail=detail
        )

    def ctx(
        self,
        kind: str,
        op: str,
        time: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        """The graph context computed (``op="miss"``) or dropped
        (``op="invalidate"``) the derivation named by ``kind``."""
        self._record(
            "ctx", reason=op, detail=kind, time=time, duration=duration
        )


class NullTracer(Tracer):
    """Disabled tracer; simulators normalise it away entirely."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - never hot
        pass


NULL_TRACER = NullTracer()
"""Shared no-op tracer instance."""


class RecordingTracer(Tracer):
    """Keeps every event in memory (tests and in-process reports)."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def events_for(self, msg_id: int) -> List[TraceEvent]:
        """All events of one message, in emission order."""
        return [e for e in self.events if e.msg_id == msg_id]


class JsonlTracer(Tracer):
    """Streams events as JSON Lines to a file (the ``--trace-out`` sink)."""

    def __init__(self, target: Union[str, os.PathLike, IO[str]]) -> None:
        super().__init__()
        if hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._owns_handle = False
        else:
            self._handle = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        self.written = 0

    def emit(self, event: TraceEvent) -> None:
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True))
        self._handle.write("\n")
        self.written += 1

    def close(self) -> None:
        """Flush and (if this tracer opened the file) close the sink."""
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def load_events(lines: Sequence[str]) -> List[TraceEvent]:
    """Parse JSONL rows (blank lines skipped) into events."""
    events = []
    for line in lines:
        line = line.strip()
        if line:
            events.append(TraceEvent.from_dict(json.loads(line)))
    return events


def read_trace(path: Union[str, os.PathLike]) -> List[TraceEvent]:
    """Read a ``--trace-out`` JSONL file back into :class:`TraceEvent` s."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_events(handle.readlines())


def iter_trace(path: Union[str, os.PathLike]) -> Iterator[TraceEvent]:
    """Stream a JSONL trace without holding the whole file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield TraceEvent.from_dict(json.loads(line))
