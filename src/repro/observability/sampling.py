"""Sampled tracing that never loses an anomaly.

Recording every hop of every message is fine at thousands of messages and
ruinous at millions: the full recording path costs ~1.7× the untraced
loop.  :class:`SamplingTracer` keeps tracing affordable at scale with
*head-based deterministic sampling*:

* At ``inject`` time a seeded hash of the message id decides — once, and
  reproducibly across runs and processes — whether the message is *kept*
  (all of its spans stream to the sink) or *suppressed* (its spans are
  counted but never constructed).
* Suppressed messages leave a tiny breadcrumb (source, destination,
  inject time).  The moment one turns anomalous — a retry, a drop, or a
  stale delivery — it is **promoted**: a synthesised ``inject`` span is
  emitted from the breadcrumb, the anomalous span follows it, and every
  later span of that message streams normally.  Anomalous messages are
  therefore retained at 100% regardless of the sampling rate; the price
  of head sampling is only that a promoted message's pre-anomaly hops are
  summarised by the synthetic inject rather than replayed in full.
* Control-plane spans (faults, corruption lifecycle, churn lifecycle,
  ctx derivations) always pass through — they are rare and load-bearing.
* High-rate emission sites (the event engine) can skip suppressed
  messages entirely: they ask :meth:`~SamplingTracer.wants` once per
  message, cache the verdict on the message, and bypass every span call
  for suppressed ones — a field test per hop instead of a method call.
  When a bypassed message turns anomalous the engine calls
  :meth:`~SamplingTracer.promote` with the inject facts it still holds,
  which emits the synthetic inject and re-opens the stream.  The
  breadcrumb path above remains for emitters that do not cooperate
  (the hop-by-hop walker, hand-driven tests).

On :meth:`~SamplingTracer.close` the tracer emits one ``sample`` span
summarising its tallies, and — defensively — an ``slo`` span if the
retention guarantee was somehow violated.

:class:`RingBufferTracer` is the matching bounded in-memory sink: it
keeps the last ``capacity`` events, so an always-on sampler in a
long-lived process has a hard memory ceiling (a flight recorder, not an
archive).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.observability.tracer import Tracer, TraceEvent

__all__ = ["RingBufferTracer", "SamplingTracer"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix(value: int, seed: int) -> int:
    """splitmix64 finaliser: cheap, well-distributed, dependency-free."""
    z = (value + (seed + 1) * _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class RingBufferTracer(Tracer):
    """Bounded in-memory sink: keeps only the most recent events."""

    def __init__(self, capacity: int = 4096) -> None:
        super().__init__()
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.seen = 0
        """Total events offered, including the ones the ring evicted."""

    def emit(self, event: TraceEvent) -> None:
        self._ring.append(event)
        self.seen += 1

    @property
    def events(self) -> List[TraceEvent]:
        """The retained window, oldest first."""
        return list(self._ring)

    def events_for(self, msg_id: int) -> List[TraceEvent]:
        """Retained events of one message, in emission order."""
        return [e for e in self._ring if e.msg_id == msg_id]


class SamplingTracer(Tracer):
    """Head-sampled tracer: seeded per-message keep, anomalies always kept.

    Wraps a ``sink`` tracer (:class:`RecordingTracer`,
    :class:`JsonlTracer`, :class:`RingBufferTracer`, …) and forwards a
    deterministic ``rate`` fraction of message span trees to it, plus —
    unconditionally — every message that retries, drops, or is delivered
    stale, and every control-plane span.
    """

    def __init__(
        self,
        sink: Tracer,
        rate: float = 0.01,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {rate}")
        self._sink = sink
        self.rate = rate
        self.seed = seed
        # Compare the top 32 bits of the mix against a fixed-point
        # threshold so the keep decision is a single integer comparison.
        self._threshold = int(rate * (1 << 32))
        self._kept: Set[int] = set()
        self._suppressed: Set[int] = set()
        self._crumbs: Dict[int, Tuple[int, int, float]] = {}
        self.messages = 0
        self.kept_sampled = 0
        self.promoted = 0
        self.suppressed_events = 0
        self._slo_breaches = 0
        self._closed = False

    # -- plumbing -------------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        self._sink.emit(event)

    def _keep(self, msg_id: int) -> bool:
        return (_mix(msg_id, self.seed) >> 32) < self._threshold

    def wants(self, msg_id: int) -> bool:
        """The seeded keep decision, memoised (and tallied) per message.

        Cooperating emission sites (the event engine) call this once per
        message and skip span construction entirely for suppressed ones;
        when one of those turns anomalous they call :meth:`promote` with
        the inject facts they still hold, replacing the breadcrumb path.
        """
        if msg_id in self._kept:
            return True
        if msg_id in self._suppressed:
            return False
        self.messages += 1
        if self._keep(msg_id):
            self._kept.add(msg_id)
            self.kept_sampled += 1
            return True
        self._suppressed.add(msg_id)
        return False

    def promote(
        self,
        msg_id: int,
        source: int,
        destination: int,
        inject_time: float = 0.0,
    ) -> None:
        """Start streaming a suppressed message: synthetic inject first."""
        if msg_id in self._kept:
            return
        self._crumbs.pop(msg_id, None)
        self._suppressed.discard(msg_id)
        self._kept.add(msg_id)
        self.promoted += 1
        super().inject(msg_id, source, destination, time=inject_time)

    def _promote(self, msg_id: int, time: float) -> None:
        """Replay the breadcrumb as a synthetic inject; keep from here on."""
        crumb = self._crumbs.pop(msg_id, None)
        if crumb is not None:
            source, destination, inject_time = crumb
            self.promote(msg_id, source, destination, inject_time)
        else:
            # No breadcrumb means we never saw the inject — defensively
            # flag the retention gap instead of silently under-reporting.
            self._kept.add(msg_id)
            self.promoted += 1
            self._slo_breaches += 1
            super().slo(
                "sampling_retention",
                time=time,
                detail=f"anomalous msg {msg_id} had no breadcrumb",
            )

    # -- message-plane emitters (sampled) -------------------------------------

    def inject(
        self,
        msg_id: int,
        source: int,
        destination: int,
        time: float = 0.0,
        attempt: int = 0,
    ) -> int:
        if attempt == 0 and not self.wants(msg_id):
            self._crumbs[msg_id] = (source, destination, time)
        if msg_id in self._kept:
            return super().inject(
                msg_id, source, destination, time=time, attempt=attempt
            )
        self.suppressed_events += 1
        return -1

    def hop(
        self,
        msg_id: int,
        node: int,
        next_node: int,
        hop: int,
        time: float = 0.0,
        duration: Optional[float] = None,
        attempt: int = 0,
    ) -> int:
        if msg_id in self._kept:
            return super().hop(
                msg_id, node, next_node, hop,
                time=time, duration=duration, attempt=attempt,
            )
        self.suppressed_events += 1
        return -1

    def retry(
        self,
        msg_id: int,
        source: int,
        attempt: int,
        time: float,
        reason: str,
        duration: Optional[float] = None,
    ) -> int:
        if msg_id not in self._kept:
            self._promote(msg_id, time)
        return super().retry(
            msg_id, source, attempt, time, reason, duration=duration
        )

    def drop(
        self,
        msg_id: int,
        node: int,
        reason: str,
        time: float = 0.0,
        detail: Optional[str] = None,
        subject: Optional[Tuple[str, ...]] = None,
        attempt: int = 0,
        hop: Optional[int] = None,
    ) -> int:
        if msg_id not in self._kept:
            self._promote(msg_id, time)
        seq = super().drop(
            msg_id, node, reason,
            time=time, detail=detail, subject=subject,
            attempt=attempt, hop=hop,
        )
        self._kept.discard(msg_id)
        return seq

    def deliver(
        self,
        msg_id: int,
        node: int,
        time: float = 0.0,
        hop: Optional[int] = None,
        attempt: int = 0,
        detail: Optional[str] = None,
    ) -> int:
        if msg_id in self._kept:
            seq = super().deliver(
                msg_id, node, time=time, hop=hop, attempt=attempt,
                detail=detail,
            )
            self._kept.discard(msg_id)
            return seq
        if detail == "stale":
            # A clean-looking delivery that routed on stale topology is an
            # anomaly: promote it even though the message never dropped.
            self._promote(msg_id, time)
            seq = super().deliver(
                msg_id, node, time=time, hop=hop, attempt=attempt,
                detail=detail,
            )
            self._kept.discard(msg_id)
            return seq
        self._crumbs.pop(msg_id, None)
        self.suppressed_events += 1
        return -1

    # -- summary --------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Tallies of the sampling decisions taken so far."""
        return {
            "rate": self.rate,
            "seed": self.seed,
            "messages": self.messages,
            "kept_sampled": self.kept_sampled,
            "promoted": self.promoted,
            "suppressed_events": self.suppressed_events,
            "slo_breaches": self._slo_breaches,
        }

    def close(self, time: float = 0.0) -> None:
        """Emit the ``sample`` summary span (idempotent)."""
        if self._closed:
            return
        self._closed = True
        tallies = self.summary()
        detail = (
            f"rate={self.rate} seed={self.seed} "
            f"messages={self.messages} kept={self.kept_sampled} "
            f"promoted={self.promoted} "
            f"suppressed={self.suppressed_events}"
        )
        super().sample(detail, time=time)
        if tallies["slo_breaches"]:
            super().slo(
                "sampling_retention",
                time=time,
                detail=f"{self._slo_breaches} anomalous message(s) lost",
            )
