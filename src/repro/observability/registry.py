"""Process-wide metrics registry: counters, gauges, histograms.

Every long-lived quantity the stack wants to expose — messages routed,
retries, drops by :class:`~repro.simulator.message.DropReason`,
distance-cache hits, per-scheme table bits, build-phase timings — lives in
one :class:`MetricsRegistry` so a run can be dumped as a single JSON
document or scraped in the Prometheus text exposition format.

The registry is deliberately tiny and dependency-free: metrics are keyed by
``(name, sorted labels)``, creation is get-or-create, and the hot-path
operations (``Counter.inc``, ``Histogram.observe``) are a dict lookup plus
an integer/float update.  A process-wide default registry is reachable via
:func:`get_registry`; experiments that need isolation construct their own
and pass it explicitly.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple, Type, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

Labels = Tuple[Tuple[str, str], ...]
_MetricKey = Tuple[str, Labels]

# Geometric default buckets (powers of 4 from 1 µs up) cover everything from
# a single dict lookup to a multi-minute build in 16 buckets.
_DEFAULT_BUCKETS = tuple(1e-6 * 4.0 ** i for i in range(16))


def _labels_of(label_kwargs: Dict[str, object]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in label_kwargs.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view of this metric."""
        return {"value": self._value}


class Gauge:
    """A value that can go up and down (table bits, live messages, ...)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def set(self, value: Union[int, float]) -> None:
        """Replace the gauge value."""
        self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self._value += amount

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view of this metric."""
        return {"value": self._value}


class Histogram:
    """A distribution of observations with fixed cumulative buckets.

    Tracks count/sum/min/max exactly and a Prometheus-style cumulative
    bucket vector for everything else; that keeps ``observe`` O(buckets)
    worst case and the memory footprint constant regardless of how many
    phase timings or hop latencies a run produces.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        buckets: Optional[Iterable[float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        bounds = tuple(sorted(buckets)) if buckets is not None else _DEFAULT_BUCKETS
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self._bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                self._bucket_counts[i] += 1
                return
        self._bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observation (NaN when empty)."""
        return self._sum / self._count if self._count else math.nan

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self._bounds, self._bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self._bucket_counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return math.nan
        target = q * self._count
        for bound, cumulative in self.cumulative_buckets():
            if cumulative >= target:
                return min(bound, self._max)
        return self._max  # pragma: no cover - defensive

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view of this metric."""
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "mean": self.mean if self._count else None,
        }


Metric = Union[Counter, Gauge, Histogram]


def sanitize_metric_name(name: str) -> str:
    """Map a dotted metric/phase name onto the Prometheus grammar."""
    safe = [
        ch if (ch.isalnum() or ch in "_:") else "_"
        for ch in name
    ]
    text = "".join(safe)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape per the exposition format: backslash, double-quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP text escaping: backslash and newline only (quotes stay)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_text(labels: Labels, extra: Labels = ()) -> str:
    merged = labels + extra
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in merged)
    return "{" + inner + "}"


_WELL_KNOWN_HELP: Dict[str, str] = {
    "repro_messages_routed_total": "Messages injected into a simulator.",
    "repro_messages_delivered_total": "Messages delivered to their destination.",
    "repro_drops_total": "Messages dropped, labelled by DropReason.",
    "repro_retries_total": "Source re-injections after a retryable drop.",
    "repro_routing_loops_total": "Walks aborted after revisiting a node.",
    "repro_stale_deliveries_total":
        "Deliveries that routed on out-of-date topology knowledge.",
    "repro_scheme_table_bits": "Total routing-table bits of the built scheme.",
    "repro_scheme_max_node_bits": "Largest per-node table in bits.",
    "repro_phase_seconds": "Wall time per profiled phase.",
    "repro_phase_calls_total": "Invocations per profiled phase.",
    "repro_distance_cache_total":
        "Distance-matrix cache accesses, labelled by hit/miss.",
    "repro_graph_ctx_total":
        "GraphContext derivation accesses, labelled by kind and op.",
    "repro_graph_ctx_invalidations_total":
        "Explicit GraphContext invalidations.",
    "repro_graph_ctx_store_total":
        "Process-wide context store traffic, labelled by op.",
    "repro_table_corruptions_total": "Injected routing-table corruptions.",
    "repro_table_corruption_detected_total":
        "Corruptions caught by integrity framing.",
    "repro_table_corruption_undetected_total":
        "Corruptions that slipped past the framing policy.",
    "repro_table_heals_total": "Corrupted tables rebuilt pristine.",
    "repro_corruption_detection_latency":
        "Simulated time from corruption to detection.",
    "repro_topology_mutations_total":
        "Live topology mutations applied, labelled by kind.",
    "repro_churn_repairs_total": "Node tables rebuilt after churn.",
    "repro_churn_tables_rebuilt_total":
        "Tables rebuilt from scratch during churn repair.",
    "repro_churn_tables_reused_total":
        "Tables carried forward unchanged during churn repair.",
    "repro_churn_table_bits_rewritten_total":
        "Table bits rewritten by incremental repair.",
    "repro_churn_table_bits_reused_total":
        "Table bits reused by incremental repair.",
    "repro_churn_convergence_time":
        "Simulated time from first uncovered mutation to convergence.",
    "repro_store_records_total":
        "Journal records durably written, labelled by op (put/swap).",
    "repro_store_quarantined_total":
        "Damaged store records/snapshots quarantined, labelled by reason.",
    "repro_store_recoveries_total":
        "Recovery passes completed, labelled by source (journal/snapshot/empty).",
    "repro_store_snapshots_total": "Catalog snapshots installed.",
    "repro_store_swaps_total": "Verified hot-swaps of a scheme's active generation.",
    "repro_store_journal_bits": "Current size of the store journal in bits.",
    "repro_store_snapshot_bits": "Current size of the newest snapshot in bits.",
    "repro_store_recovery_seconds": "Wall time per recovery pass.",
}
"""Default ``# HELP`` text for the stack's own metrics.

Keyed by the *raw* metric name (pre-sanitisation); ``describe`` overrides
these, and metrics absent from both expose no HELP line."""


class MetricsRegistry:
    """Get-or-create home for every metric in the process."""

    def __init__(self) -> None:
        self._metrics: Dict[_MetricKey, Metric] = {}
        self._help: Dict[str, str] = {}
        self._lock = threading.Lock()

    def describe(self, name: str, help_text: str) -> None:
        """Attach ``# HELP`` text to a metric name (overrides defaults)."""
        with self._lock:
            self._help[name] = help_text

    def help_for(self, name: str) -> Optional[str]:
        """The HELP text for ``name`` (described, well-known, or ``None``)."""
        with self._lock:
            described = self._help.get(name)
        return described if described is not None else _WELL_KNOWN_HELP.get(name)

    def _get_or_create(
        self, cls: Type[Metric], name: str, labels: Labels, **kwargs: Any
    ) -> Metric:
        key = (name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter named ``name`` with these labels (created on demand)."""
        return self._get_or_create(Counter, name, _labels_of(labels))

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge named ``name`` with these labels (created on demand)."""
        return self._get_or_create(Gauge, name, _labels_of(labels))

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> Histogram:
        """The histogram named ``name`` with these labels."""
        return self._get_or_create(
            Histogram, name, _labels_of(labels), buckets=buckets
        )

    def metrics(self) -> List[Metric]:
        """All registered metrics in stable (name, labels) order."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every registered metric (tests and fresh runs)."""
        with self._lock:
            self._metrics.clear()

    # -- exposition ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Nested dict: ``{name: [{labels, kind, ...values}]}``."""
        out: Dict[str, List[Dict[str, object]]] = {}
        for metric in self.metrics():
            entry: Dict[str, object] = {
                "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            entry.update(metric.snapshot())
            out.setdefault(metric.name, []).append(entry)
        return out

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`snapshot` as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4) of every metric.

        Each metric family is preceded by its ``# HELP`` line (when text
        is known via :meth:`describe` or the built-in defaults) and its
        ``# TYPE`` line; label values are escaped per the format
        (backslash, double-quote, newline).
        """
        lines: List[str] = []
        seen_types = set()
        for metric in self.metrics():
            name = sanitize_metric_name(metric.name)
            if name not in seen_types:
                help_text = self.help_for(metric.name)
                if help_text is not None:
                    lines.append(f"# HELP {name} {_escape_help(help_text)}")
                lines.append(f"# TYPE {name} {metric.kind}")
                seen_types.add(name)
            if isinstance(metric, (Counter, Gauge)):
                lines.append(
                    f"{name}{_label_text(metric.labels)} "
                    f"{_format_value(metric.value)}"
                )
            else:
                for bound, cumulative in metric.cumulative_buckets():
                    extra = (("le", _format_value(bound)),)
                    lines.append(
                        f"{name}_bucket{_label_text(metric.labels, extra)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_label_text(metric.labels)} "
                    f"{_format_value(metric.sum)}"
                )
                lines.append(
                    f"{name}_count{_label_text(metric.labels)} {metric.count}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous
