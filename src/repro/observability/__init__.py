"""Observability for the routing stack: tracing, metrics, profiling.

Three cooperating pieces, all usable independently:

* :mod:`repro.observability.tracer` — per-message, per-hop span events
  emitted by the simulators (``tracer=None`` keeps the hot path free);
* :mod:`repro.observability.registry` — process-wide counters, gauges and
  histograms with JSON and Prometheus text exposition;
* :mod:`repro.observability.profiling` — ``profile_section`` /
  ``@timed`` hooks that feed phase-time breakdowns (scheme builds, codec
  encode/decode) into the registry;
* :mod:`repro.observability.report` — the ``repro trace-report``
  summariser (hot nodes, hop latency percentiles, fault-window drop
  attribution) over a ``--trace-out`` JSONL file.
"""

from repro.observability.profiling import phase_breakdown, profile_section, timed
from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.observability.report import (
    TraceSummary,
    format_trace_report,
    summarize_trace,
)
from repro.observability.tracer import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
    link_subject,
    load_events,
    node_subject,
    read_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "TraceEvent",
    "TraceSummary",
    "Tracer",
    "format_trace_report",
    "get_registry",
    "link_subject",
    "load_events",
    "node_subject",
    "phase_breakdown",
    "profile_section",
    "read_trace",
    "set_registry",
    "summarize_trace",
    "timed",
]
