"""Observability for the routing stack: tracing, metrics, profiling.

Three cooperating pieces, all usable independently:

* :mod:`repro.observability.tracer` — per-message, per-hop span events
  emitted by the simulators (``tracer=None`` keeps the hot path free);
* :mod:`repro.observability.registry` — process-wide counters, gauges and
  histograms with JSON and Prometheus text exposition;
* :mod:`repro.observability.profiling` — ``profile_section`` /
  ``@timed`` hooks that feed phase-time breakdowns (scheme builds, codec
  encode/decode) into the registry;
* :mod:`repro.observability.report` — the ``repro trace-report``
  summariser (hot nodes, hop latency percentiles, fault-window drop
  attribution) over a ``--trace-out`` JSONL file.
"""

from repro.observability.bench import (
    BENCH_SCHEMA_VERSION,
    BenchMetric,
    BenchResult,
    BenchSchemaError,
    BetterDirection,
    ComparisonReport,
    MetricDelta,
    compare_runs,
    format_comparison,
    load_bench_result,
    write_bench_result,
)
from repro.observability.manifest import (
    ManifestError,
    RunManifest,
    embedded_manifest,
)
from repro.observability.profiling import phase_breakdown, profile_section, timed
from repro.observability.sampling import RingBufferTracer, SamplingTracer
from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.observability.report import (
    TraceSummary,
    format_trace_report,
    summarize_trace,
)
from repro.observability.tracer import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    TraceDecodeError,
    TraceEvent,
    Tracer,
    iter_trace,
    link_subject,
    load_events,
    node_subject,
    read_trace,
    read_trace_manifest,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchMetric",
    "BenchResult",
    "BenchSchemaError",
    "BetterDirection",
    "ComparisonReport",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "ManifestError",
    "MetricDelta",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "RingBufferTracer",
    "RunManifest",
    "SamplingTracer",
    "TraceDecodeError",
    "TraceEvent",
    "TraceSummary",
    "Tracer",
    "compare_runs",
    "embedded_manifest",
    "format_comparison",
    "format_trace_report",
    "get_registry",
    "iter_trace",
    "link_subject",
    "load_bench_result",
    "load_events",
    "node_subject",
    "phase_breakdown",
    "profile_section",
    "read_trace",
    "read_trace_manifest",
    "set_registry",
    "summarize_trace",
    "timed",
    "write_bench_result",
]
