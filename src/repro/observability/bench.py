"""Unified benchmark artifacts and regression gating.

Before this module every ``benchmarks/bench_*.py`` invented its own JSON
shape, and nothing compared a fresh run against history — a silent perf
regression would simply become the new committed baseline.  This module
gives all benchmarks one schema and one comparator:

* :class:`BenchResult` — schema-versioned artifact: the benchmark name,
  the :class:`~repro.observability.manifest.RunManifest` of the run that
  produced it, the workload knobs, and a dict of named
  :class:`BenchMetric` values annotated with which direction is *better*
  (:class:`BetterDirection`) and an optional per-metric relative
  tolerance.  Legacy payloads ride along untyped under ``extra``.
* :func:`write_bench_result` / :func:`load_bench_result` — the only
  writer/loader; the loader rejects schema-less bench JSON outright
  (:class:`BenchSchemaError`), which is what lets CI refuse unversioned
  artifacts.
* :func:`compare_runs` — per-metric regression detection: a directed
  metric whose relative change exceeds its tolerance (default
  ``0.10``) is a regression; a directed metric that vanished from the
  fresh run is a failure too.  ``repro bench-report`` turns the
  resulting :class:`ComparisonReport` into an exit code CI can gate on.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import ReproError
from repro.observability.manifest import RunManifest

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchMetric",
    "BenchResult",
    "BenchSchemaError",
    "BetterDirection",
    "ComparisonReport",
    "MetricDelta",
    "compare_runs",
    "format_comparison",
    "load_bench_result",
    "write_bench_result",
]

BENCH_SCHEMA_VERSION = 2
"""Version 1 is the retroactive name for the ad-hoc pre-harness shapes."""


class BenchSchemaError(ReproError):
    """A bench artifact is schema-less, mis-versioned, or malformed."""


class BetterDirection(enum.Enum):
    """Which way a metric should move to count as an improvement."""

    HIGHER = "higher"
    """Bigger is better (speedup ratios, detection rates, retention)."""
    LOWER = "lower"
    """Smaller is better (overhead ratios, bit counts, latencies)."""
    NEUTRAL = "neutral"
    """Informational only (raw seconds, event counts); never gated."""


@dataclass(frozen=True)
class BenchMetric:
    """One named measurement with its regression-gating contract."""

    value: float
    direction: BetterDirection = BetterDirection.NEUTRAL
    tolerance: Optional[float] = None
    """Relative slack before a directed move counts as a regression;
    ``None`` defers to the comparator's default."""
    unit: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "value": self.value,
            "direction": self.direction.value,
        }
        if self.tolerance is not None:
            row["tolerance"] = self.tolerance
        if self.unit is not None:
            row["unit"] = self.unit
        return row

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "BenchMetric":
        try:
            direction = BetterDirection(row.get("direction", "neutral"))
        except ValueError as exc:
            raise BenchSchemaError(
                f"unknown metric direction {row.get('direction')!r}"
            ) from exc
        if "value" not in row:
            raise BenchSchemaError("metric row has no 'value'")
        return cls(
            value=float(row["value"]),
            direction=direction,
            tolerance=(
                float(row["tolerance"]) if row.get("tolerance") is not None
                else None
            ),
            unit=row.get("unit"),
        )


@dataclass
class BenchResult:
    """Schema-versioned benchmark artifact with an embedded run ledger."""

    bench: str
    manifest: RunManifest
    workload: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, BenchMetric] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)
    """Legacy/auxiliary payload (sweeps, per-cell detail) — not gated."""
    schema_version: int = BENCH_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "bench": self.bench,
            "manifest": self.manifest.to_dict(),
            "workload": self.workload,
            "metrics": {
                name: metric.to_dict()
                for name, metric in sorted(self.metrics.items())
            },
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "BenchResult":
        if not isinstance(row, Mapping):
            raise BenchSchemaError(
                f"bench artifact must be an object, got {type(row).__name__}"
            )
        if "schema_version" not in row:
            raise BenchSchemaError(
                "schema-less bench JSON (no 'schema_version'); regenerate "
                "with the repro.observability.bench writer"
            )
        version = row["schema_version"]
        if version != BENCH_SCHEMA_VERSION:
            raise BenchSchemaError(
                f"unsupported bench schema_version {version!r} "
                f"(this loader reads {BENCH_SCHEMA_VERSION})"
            )
        if "bench" not in row or "manifest" not in row:
            raise BenchSchemaError(
                "bench artifact must carry 'bench' and 'manifest'"
            )
        metrics_row = row.get("metrics", {})
        if not isinstance(metrics_row, Mapping):
            raise BenchSchemaError("'metrics' must be an object")
        return cls(
            bench=str(row["bench"]),
            manifest=RunManifest.from_dict(row["manifest"]),
            workload=dict(row.get("workload", {})),
            metrics={
                str(name): BenchMetric.from_dict(metric)
                for name, metric in metrics_row.items()
            },
            extra=dict(row.get("extra", {})),
            schema_version=int(version),
        )


def write_bench_result(
    result: BenchResult, path: Union[str, os.PathLike]
) -> None:
    """Write the artifact as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench_result(path: Union[str, os.PathLike]) -> BenchResult:
    """Load and validate a bench artifact (schema-less JSON is rejected)."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            row = json.load(handle)
        except ValueError as exc:
            raise BenchSchemaError(
                f"{os.fspath(path)}: not valid JSON ({exc})"
            ) from exc
    if not isinstance(row, dict):
        raise BenchSchemaError(
            f"{os.fspath(path)}: bench artifact must be a JSON object"
        )
    return BenchResult.from_dict(row)


@dataclass(frozen=True)
class MetricDelta:
    """Comparison of one metric between a baseline and a fresh run."""

    metric: str
    baseline: Optional[float]
    fresh: Optional[float]
    relative_change: Optional[float]
    direction: BetterDirection
    tolerance: float
    verdict: str
    """``regression`` | ``improvement`` | ``ok`` | ``missing``."""


@dataclass
class ComparisonReport:
    """Everything ``repro bench-report`` needs to render and gate."""

    bench: str
    deltas: List[MetricDelta]
    baseline_manifest: RunManifest
    fresh_manifest: RunManifest

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict in ("regression", "missing")]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "improvement"]

    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": self.bench,
            "ok": self.ok(),
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "deltas": [
                {
                    "metric": d.metric,
                    "baseline": d.baseline,
                    "fresh": d.fresh,
                    "relative_change": d.relative_change,
                    "direction": d.direction.value,
                    "tolerance": d.tolerance,
                    "verdict": d.verdict,
                }
                for d in self.deltas
            ],
            "baseline_manifest": self.baseline_manifest.to_dict(),
            "fresh_manifest": self.fresh_manifest.to_dict(),
        }


def _relative_change(baseline: float, fresh: float) -> float:
    if baseline == 0.0:
        if fresh == baseline:
            return 0.0
        return float("inf") if fresh > baseline else float("-inf")
    return (fresh - baseline) / abs(baseline)


def _verdict(
    direction: BetterDirection, relative_change: float, tolerance: float
) -> str:
    if direction is BetterDirection.HIGHER:
        if relative_change < -tolerance:
            return "regression"
        if relative_change > tolerance:
            return "improvement"
        return "ok"
    elif direction is BetterDirection.LOWER:
        if relative_change > tolerance:
            return "regression"
        if relative_change < -tolerance:
            return "improvement"
        return "ok"
    elif direction is BetterDirection.NEUTRAL:
        return "ok"
    else:  # pragma: no cover - closed enum
        raise AssertionError(f"unhandled direction {direction!r}")


def compare_runs(
    baseline: BenchResult,
    fresh: BenchResult,
    default_tolerance: float = 0.10,
) -> ComparisonReport:
    """Diff two runs of the same benchmark, metric by metric.

    The baseline's per-metric tolerances are the contract; metrics that
    declare none use ``default_tolerance``.  A directed metric missing
    from the fresh run fails the comparison (verdict ``missing``) — a
    gate that silently stopped measuring is not a passing gate.
    """
    if baseline.bench != fresh.bench:
        raise BenchSchemaError(
            f"cannot compare different benchmarks: baseline is "
            f"{baseline.bench!r}, fresh is {fresh.bench!r}"
        )
    if default_tolerance < 0.0:
        raise ValueError(
            f"default_tolerance must be >= 0, got {default_tolerance}"
        )
    deltas: List[MetricDelta] = []
    for name in sorted(baseline.metrics):
        base = baseline.metrics[name]
        tolerance = (
            base.tolerance if base.tolerance is not None else default_tolerance
        )
        live = fresh.metrics.get(name)
        if live is None:
            verdict = (
                "missing" if base.direction is not BetterDirection.NEUTRAL
                else "ok"
            )
            deltas.append(
                MetricDelta(
                    metric=name,
                    baseline=base.value,
                    fresh=None,
                    relative_change=None,
                    direction=base.direction,
                    tolerance=tolerance,
                    verdict=verdict,
                )
            )
            continue
        rel = _relative_change(base.value, live.value)
        deltas.append(
            MetricDelta(
                metric=name,
                baseline=base.value,
                fresh=live.value,
                relative_change=rel,
                direction=base.direction,
                tolerance=tolerance,
                verdict=_verdict(base.direction, rel, tolerance),
            )
        )
    return ComparisonReport(
        bench=baseline.bench,
        deltas=deltas,
        baseline_manifest=baseline.manifest,
        fresh_manifest=fresh.manifest,
    )


def format_comparison(report: ComparisonReport) -> str:
    """Human-readable comparison table with a one-line verdict."""
    lines = [
        f"bench-report: {report.bench}",
        f"  baseline: {report.baseline_manifest.git_sha[:12]} "
        f"({report.baseline_manifest.created_at})",
        f"  fresh:    {report.fresh_manifest.git_sha[:12]} "
        f"({report.fresh_manifest.created_at})",
        "",
        f"  {'metric':<32} {'baseline':>12} {'fresh':>12} "
        f"{'change':>9}  verdict",
    ]
    for delta in report.deltas:
        fresh = "-" if delta.fresh is None else f"{delta.fresh:.6g}"
        base = "-" if delta.baseline is None else f"{delta.baseline:.6g}"
        change = (
            "-" if delta.relative_change is None
            else f"{delta.relative_change:+.1%}"
        )
        marker = "!" if delta.verdict in ("regression", "missing") else " "
        lines.append(
            f" {marker}{delta.metric:<32} {base:>12} {fresh:>12} "
            f"{change:>9}  {delta.verdict}"
        )
    lines.append("")
    if report.ok():
        lines.append(
            f"OK: no regressions across {len(report.deltas)} metric(s)"
            + (
                f", {len(report.improvements)} improvement(s)"
                if report.improvements else ""
            )
        )
    else:
        names = ", ".join(d.metric for d in report.regressions)
        lines.append(
            f"REGRESSION: {len(report.regressions)} gated metric(s) "
            f"failed: {names}"
        )
    return "\n".join(lines)
