"""Summarise a hop-level JSONL trace: the ``repro trace-report`` backend.

Answers the questions the aggregate :class:`RoutingMetrics` cannot:

* **hot nodes** — which nodes forwarded the most traffic;
* **hop latency percentiles** — distribution of per-hop end-to-end cost
  (queue wait + service + wire) from the event engine's hop durations;
* **fault-window attribution** — for every drop, whether a traced fault
  window (link/node down interval) was active on the failed subject at
  drop time, and which fault subjects caused the most drops.

The attribution invariant backing the acceptance criterion: every ``drop``
event carries a ``DropReason`` name, and drops whose subject was inside an
active fault window are attributed to it; the remainder are reported as
unattributed (hop-limit loops, scheme bugs, pre-existing static failures).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.observability.tracer import TraceEvent

__all__ = ["TraceSummary", "summarize_trace", "format_trace_report"]

_DOWN_KINDS = frozenset({"link down", "node down"})
_UP_KINDS = frozenset({"link up", "node up"})


def _percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; sorts internally (input order is free)."""
    if not samples:
        return math.nan
    ordered = sorted(samples)
    rank = max(int(math.ceil(q / 100.0 * len(ordered))) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


@dataclass
class TraceSummary:
    """Everything ``repro trace-report`` prints, as plain data."""

    events: int = 0
    messages: int = 0
    """Distinct messages injected."""
    injections: int = 0
    """Inject events including retries' re-injections."""
    delivered: int = 0
    dropped: int = 0
    retries: int = 0
    faults: int = 0
    hops: int = 0
    hot_nodes: List[Tuple[int, int]] = field(default_factory=list)
    """``(node, forwards)`` sorted by forwards, descending."""
    hop_latency_percentiles: Dict[str, float] = field(default_factory=dict)
    """p50/p90/p99/max of hop durations (empty for untimed walker traces)."""
    corruptions: int = 0
    """Table-corruption events (``corrupt`` spans)."""
    quarantines: int = 0
    """Detections: nodes quarantined after an integrity failure."""
    heals: int = 0
    """Tables rebuilt pristine (self-heal or scheduled re-push)."""
    drops_by_reason: Dict[str, int] = field(default_factory=dict)
    drops_attributed: int = 0
    """Drops whose failed subject was inside an active fault window."""
    drops_unattributed: int = 0
    drops_by_fault_subject: List[Tuple[str, int]] = field(default_factory=list)
    """``("link 3-7", count)`` per fault subject, sorted descending."""
    span_violations: int = 0
    """Messages whose event sequence was malformed (diagnostic; expect 0)."""

    def to_dict(self) -> dict:
        """JSON-ready view (``repro trace-report --json``)."""
        percentiles = {
            key: (None if math.isnan(value) else value)
            for key, value in self.hop_latency_percentiles.items()
        }
        return {
            "events": self.events,
            "messages": self.messages,
            "injections": self.injections,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "retries": self.retries,
            "faults": self.faults,
            "hops": self.hops,
            "corruptions": self.corruptions,
            "quarantines": self.quarantines,
            "heals": self.heals,
            "hot_nodes": [list(pair) for pair in self.hot_nodes],
            "hop_latency_percentiles": percentiles,
            "drops_by_reason": dict(self.drops_by_reason),
            "drops_attributed": self.drops_attributed,
            "drops_unattributed": self.drops_unattributed,
            "drops_by_fault_subject": [
                list(pair) for pair in self.drops_by_fault_subject
            ],
            "span_violations": self.span_violations,
        }


def _subject_text(subject: Sequence[str]) -> str:
    if subject and subject[0] == "link" and len(subject) == 3:
        return f"link {subject[1]}-{subject[2]}"
    if subject and subject[0] == "node" and len(subject) == 2:
        return f"node {subject[1]}"
    return " ".join(subject)


def _check_span_order(events: List[TraceEvent]) -> int:
    """Count messages whose span sequence is malformed.

    A well-formed message span is, per attempt: one ``inject`` (attempt 0)
    or implicit re-injection (``retry``), then hops, then at most one
    terminal ``deliver``/``drop`` — with tracer sequence numbers strictly
    increasing along the way.
    """
    per_message: Dict[int, List[TraceEvent]] = {}
    for event in events:
        if event.msg_id is not None:
            per_message.setdefault(event.msg_id, []).append(event)
    violations = 0
    for msg_events in per_message.values():
        ordered = sorted(msg_events, key=lambda e: e.seq)
        ok = True
        if ordered[0].event not in ("inject",):
            ok = False
        terminal_seen = False
        for event in ordered:
            if terminal_seen and event.event in ("hop", "deliver"):
                ok = False
            if event.event == "deliver":
                terminal_seen = True
            elif event.event in ("drop", "retry"):
                # a retry re-opens the span; a final drop closes it
                terminal_seen = event.event == "drop"
        if not ok:
            violations += 1
    return violations


def summarize_trace(events: Sequence[TraceEvent], top: int = 10) -> TraceSummary:
    """Aggregate a trace (any order) into a :class:`TraceSummary`."""
    summary = TraceSummary(events=len(events))
    ordered = sorted(events, key=lambda e: (e.time, e.seq))
    forwards: Dict[int, int] = {}
    durations: List[float] = []
    message_ids = set()
    down: Dict[Tuple[str, ...], float] = {}
    subject_drops: Dict[Tuple[str, ...], int] = {}
    for event in ordered:
        if event.event == "inject":
            summary.injections += 1
            if event.msg_id is not None:
                message_ids.add(event.msg_id)
        elif event.event == "hop":
            summary.hops += 1
            if event.node is not None:
                forwards[event.node] = forwards.get(event.node, 0) + 1
            if event.duration is not None:
                durations.append(event.duration)
        elif event.event == "retry":
            summary.retries += 1
        elif event.event == "fault":
            summary.faults += 1
            kind = (event.reason or "").lower()
            if event.subject is not None:
                if kind in _DOWN_KINDS:
                    down[tuple(event.subject)] = event.time
                elif kind in _UP_KINDS:
                    down.pop(tuple(event.subject), None)
        elif event.event == "corrupt":
            # A corrupt table opens a fault-attribution window on the node
            # exactly like a node-down event; heal closes it.
            summary.corruptions += 1
            if event.subject is not None:
                down[tuple(event.subject)] = event.time
        elif event.event == "quarantine":
            summary.quarantines += 1
        elif event.event == "heal":
            summary.heals += 1
            if event.subject is not None:
                down.pop(tuple(event.subject), None)
        elif event.event == "deliver":
            summary.delivered += 1
        elif event.event == "drop":
            summary.dropped += 1
            reason = event.reason or "UNKNOWN"
            summary.drops_by_reason[reason] = (
                summary.drops_by_reason.get(reason, 0) + 1
            )
            subject = tuple(event.subject) if event.subject else None
            if subject is not None and subject in down:
                summary.drops_attributed += 1
                subject_drops[subject] = subject_drops.get(subject, 0) + 1
            else:
                summary.drops_unattributed += 1
    summary.messages = len(message_ids)
    summary.hot_nodes = sorted(
        forwards.items(), key=lambda kv: (-kv[1], kv[0])
    )[:top]
    durations.sort()
    if durations:
        summary.hop_latency_percentiles = {
            "p50": _percentile(durations, 50),
            "p90": _percentile(durations, 90),
            "p99": _percentile(durations, 99),
            "max": durations[-1],
        }
    summary.drops_by_fault_subject = [
        (_subject_text(subject), count)
        for subject, count in sorted(
            subject_drops.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ][:top]
    summary.span_violations = _check_span_order(list(events))
    return summary


def format_trace_report(summary: TraceSummary) -> str:
    """Human-readable rendering of a :class:`TraceSummary`."""
    lines = [
        f"trace: {summary.events} events, {summary.messages} messages "
        f"({summary.injections} injections incl. retries)",
        f"outcomes: {summary.delivered} delivered, {summary.dropped} "
        f"dropped, {summary.retries} retries, {summary.faults} fault events",
        f"hops: {summary.hops}",
    ]
    if summary.corruptions or summary.quarantines or summary.heals:
        lines.append(
            f"table corruption: {summary.corruptions} corrupted, "
            f"{summary.quarantines} quarantined, {summary.heals} healed"
        )
    if summary.hop_latency_percentiles:
        p = summary.hop_latency_percentiles
        lines.append(
            "hop latency: "
            f"p50 {p['p50']:.2f}  p90 {p['p90']:.2f}  "
            f"p99 {p['p99']:.2f}  max {p['max']:.2f}"
        )
    if summary.hot_nodes:
        hot = "  ".join(f"{node} ({count}x)" for node, count in summary.hot_nodes)
        lines.append(f"hot nodes: {hot}")
    if summary.dropped:
        lines.append(
            f"drops: {summary.drops_attributed} inside a traced fault "
            f"window, {summary.drops_unattributed} unattributed"
        )
        for reason, count in sorted(
            summary.drops_by_reason.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"  {reason}: {count}")
        if summary.drops_by_fault_subject:
            worst = "  ".join(
                f"{text} ({count} drops)"
                for text, count in summary.drops_by_fault_subject
            )
            lines.append(f"fault attribution: {worst}")
    if summary.span_violations:
        lines.append(
            f"WARNING: {summary.span_violations} malformed message spans"
        )
    return "\n".join(lines)
