"""Charged integrity framing over encoded routing functions.

The paper's space measure is the exact length of each node's serialised
routing function; a deployment that wants to *detect* corruption of those
bits must pay for the detector in the same currency.  This module frames a
payload ``BitArray`` with a trailing checksum — a parity bit or a CRC —
and charges the checksum width explicitly (see
:meth:`~repro.core.scheme.RoutingScheme.integrity_bits` and the
``integrity_bits`` line of every :class:`~repro.models.SpaceReport`).

Frame layout (``policy.overhead_bits`` trailing bits)::

    payload bits ... | checksum(payload)

Verification recomputes the checksum over the leading bits and compares;
a mismatch raises :class:`~repro.errors.IntegrityError`.  Both CRC
polynomials in use (CRC-8/0x07, CRC-16/CCITT 0x1021) have more than one
term, so every single-bit flip — anywhere in payload or checksum — is
detected, as is any burst no longer than the checksum width.  Truncation
shifts the checksum region onto payload bits: dropping ``c`` trailing
bits survives verification only when the ``c`` lost bits happen to be
consistent with the shifted register, probability ``~2^-c`` (floored at
``2^-width``).  The registers initialise to all-ones (standard
CRC-8/CCITT practice) so the degenerate all-zeros table, whose init-0
CRC would stay zero at *every* truncated length, is covered too.
"""

from __future__ import annotations

import enum

from repro.bitio import BitArray
from repro.errors import BitstreamError, IntegrityError

__all__ = [
    "FramingPolicy",
    "frame_bits",
    "unframe_bits",
    "verify_frame",
]


def _crc_over_bits(payload: BitArray, poly: int, width: int, init: int) -> int:
    """Non-reflected CRC of a bit stream (all-ones init, no final XOR)."""
    mask = (1 << width) - 1
    top = width - 1
    register = init
    for bit in payload:
        feedback = ((register >> top) & 1) ^ bit
        register = (register << 1) & mask
        if feedback:
            register ^= poly
    return register


class FramingPolicy(str, enum.Enum):
    """Which checksum (if any) frames each encoded routing function."""

    NONE = "none"
    """No framing: zero overhead, zero detection (the pre-framing stack)."""
    PARITY = "parity"
    """One even-parity bit: detects every odd number of flipped bits."""
    CRC8 = "crc8"
    """CRC-8 (poly 0x07): all single flips, bursts <= 8 bits."""
    CRC16 = "crc16"
    """CRC-16/CCITT (poly 0x1021): all single flips, bursts <= 16 bits."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def overhead_bits(self) -> int:
        """Charged checksum width per framed function."""
        if self is FramingPolicy.NONE:
            return 0
        if self is FramingPolicy.PARITY:
            return 1
        if self is FramingPolicy.CRC8:
            return 8
        return 16

    def checksum(self, payload: BitArray) -> BitArray:
        """The checksum bits this policy appends to ``payload``."""
        if self is FramingPolicy.NONE:
            return BitArray()
        if self is FramingPolicy.PARITY:
            return BitArray((payload.count(1) & 1,))
        if self is FramingPolicy.CRC8:
            return BitArray.from_int(
                _crc_over_bits(payload, 0x07, 8, 0xFF), 8
            )
        return BitArray.from_int(
            _crc_over_bits(payload, 0x1021, 16, 0xFFFF), 16
        )


def frame_bits(payload: BitArray, policy: FramingPolicy) -> BitArray:
    """Append ``policy``'s checksum to ``payload`` (identity under NONE).

    Only :class:`~repro.errors.IntegrityError` escapes this entry point:
    a malformed payload that trips the bit layer is reported as a framing
    failure, not as a leaked :class:`~repro.errors.BitstreamError`.
    """
    if policy is FramingPolicy.NONE:
        return payload
    try:
        return payload + policy.checksum(payload)
    except BitstreamError as exc:
        raise IntegrityError(f"cannot frame payload: {exc}") from exc


def unframe_bits(
    framed: BitArray, policy: FramingPolicy, node: int = 0
) -> BitArray:
    """Split and verify a framed function; return the payload bits.

    Raises :class:`~repro.errors.IntegrityError` when the frame is shorter
    than its checksum (truncation past the payload) or the recomputed
    checksum disagrees with the stored one.  ``node`` only flavours the
    error message.
    """
    if policy is FramingPolicy.NONE:
        return framed
    overhead = policy.overhead_bits
    if len(framed) < overhead:
        raise IntegrityError(
            f"node {node}: framed function of {len(framed)} bits is shorter "
            f"than its {overhead}-bit {policy.value} checksum"
        )
    split = len(framed) - overhead
    try:
        payload = framed[:split]
        stored = framed[split:]
        expected = policy.checksum(payload)
    except BitstreamError as exc:
        raise IntegrityError(
            f"node {node}: cannot unframe function bits: {exc}"
        ) from exc
    if stored != expected:
        raise IntegrityError(
            f"node {node}: {policy.value} checksum mismatch "
            f"(stored {stored.to01()}, computed {expected.to01()})"
        )
    return payload


def verify_frame(framed: BitArray, policy: FramingPolicy) -> bool:
    """Whether a framed bit string passes its integrity check."""
    try:
        unframe_bits(framed, policy)
    except IntegrityError:
        return False
    return True
