"""Charged integrity framing for serialised routing functions.

A per-node CRC/parity frame over each encoded local function
(:mod:`repro.integrity.framing`), a transparent scheme decorator applying
it (:class:`~repro.integrity.wrapper.IntegrityWrapper`), and the explicit
``integrity_bits`` accounting line both feed — the paper's discipline that
every bit a node stores is charged, checksums included.
"""

from repro.integrity.framing import (
    FramingPolicy,
    frame_bits,
    unframe_bits,
    verify_frame,
)
from repro.integrity.wrapper import IntegrityWrapper

__all__ = [
    "FramingPolicy",
    "IntegrityWrapper",
    "frame_bits",
    "unframe_bits",
    "verify_frame",
]
