"""Integrity-framed decorator over any :class:`RoutingScheme`.

Mirrors :class:`~repro.core.detour.DetourWrapper`'s decorator shape:
addressing, routing behaviour, stretch and hop limits are the inner
scheme's, untouched.  Only the *serialised* functions change — every
``encode_function`` output gains a trailing checksum, ``decode_function``
verifies and strips it (raising
:class:`~repro.errors.IntegrityError` on mismatch), and the checksum width
is charged on the explicit ``integrity_bits`` line of the space report.

With ``FramingPolicy.NONE`` the wrapper is bit-for-bit transparent:
encodings, space reports and routing decisions are identical to the
wrapped scheme's.
"""

from __future__ import annotations

from typing import Hashable

from repro.bitio import BitArray
from repro.core.scheme import LocalRoutingFunction, RoutingScheme
from repro.integrity.framing import FramingPolicy, frame_bits, unframe_bits

__all__ = ["IntegrityWrapper"]


class IntegrityWrapper(RoutingScheme):
    """A :class:`RoutingScheme` decorator adding checksum framing.

    Transparent for routing (functions are the inner scheme's objects) and
    additive for space accounting: each node is charged
    ``policy.overhead_bits`` extra bits, reported on the
    ``integrity_bits`` line rather than folded into ``routing_bits``.
    """

    def __init__(
        self,
        inner: RoutingScheme,
        policy: FramingPolicy = FramingPolicy.CRC8,
    ) -> None:
        super().__init__(inner.graph, inner.model, ctx=inner.ctx)
        self._inner = inner
        self._policy = policy
        self.scheme_name = f"integrity-{policy.value}({inner.scheme_name})"

    @property
    def inner(self) -> RoutingScheme:
        """The wrapped scheme."""
        return self._inner

    @property
    def policy(self) -> FramingPolicy:
        """The framing policy applied to every encoded function."""
        return self._policy

    # -- addressing: delegate -----------------------------------------------

    def address_of(self, node: int) -> Hashable:
        return self._inner.address_of(node)

    def node_of_address(self, address: Hashable) -> int:
        return self._inner.node_of_address(address)

    # -- routing: the live functions are the inner scheme's ------------------

    def _build_function(self, u: int) -> LocalRoutingFunction:
        return self._inner.function(u)

    # -- serialisation: frame on the way out, verify on the way in -----------

    def encode_function(self, u: int) -> BitArray:
        return frame_bits(self._inner.encode_function(u), self._policy)

    def decode_function(self, u: int, bits: BitArray) -> LocalRoutingFunction:
        payload = unframe_bits(bits, self._policy, node=u)
        return self._inner.decode_function(u, payload)

    # -- accounting ----------------------------------------------------------

    def label_bits(self, u: int) -> int:
        return self._inner.label_bits(u)

    def aux_bits(self, u: int) -> int:
        return self._inner.aux_bits(u)

    def integrity_bits(self, u: int) -> int:
        return self._policy.overhead_bits

    # -- guarantees ----------------------------------------------------------

    def stretch_bound(self) -> float:
        return self._inner.stretch_bound()

    def hop_limit(self) -> int:
        return self._inner.hop_limit()
