"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``schemes``
    List the registered routing schemes.
``certify N``
    Sample G(N, 1/2) and check the Lemma 1–3 randomness properties.
``build SCHEME N``
    Build a scheme on a sampled graph and print its space report
    (optionally ``--save`` the packed scheme to a file).
``route SCHEME N SRC DST``
    Build and route one message, printing the path.
``verify SCHEME N``
    Route sampled pairs and report delivery/stretch.
``simulate SCHEME N``
    Push a workload through the network simulator, optionally with
    failed links.
``simulate-chaos SCHEME N``
    Run the event engine under a dynamic fault schedule (flapping links,
    MTBF/MTTR renewal churn, or correlated regional outages), optionally
    with retry/backoff recovery and the bounce-once detour wrapper, and
    report delivery ratio, retry counts, and the drop-reason breakdown.
    ``--seed`` (default 0) seeds the schedule generator, the workload
    sampler, the retry jitter, and the injection clock alike.
``simulate-corruption SCHEME N``
    Run the event engine while seeded ``TABLE_CORRUPT`` faults mutate
    packed routing tables mid-run.  ``--framing`` wraps the scheme in a
    charged CRC/parity integrity layer (detection at decode time);
    ``--repair-delay`` enables the detection-triggered self-healer.
    Reports the corruption lifecycle (injected / detected / undetected /
    healed) alongside the delivery metrics and the integrity-bit overhead.
``simulate-churn SCHEME N``
    Run the event engine under *live topology churn*: a seeded schedule
    of mutation events (edge add/remove, node join/leave) rewires the
    graph while messages are in flight.  Each mutation dirties only the
    affected routing tables; after ``--repair-delay`` the engine rebuilds
    exactly those tables (``--full-rebuild`` forces the rebuild-everything
    control arm) and ``--repair-rate`` staggers installs at a bits-per-time
    budget.  Reports convergence times, stale deliveries, routing loops,
    and bits rewritten vs. a full rebuild alongside the delivery metrics.
``store put|get|list|verify|recover|compact``
    Crash-safe durable scheme store (``--dir`` names the store
    directory).  ``put`` builds a scheme and appends a CRC-framed,
    manifest-carrying record to the journal (``--hot-swap`` additionally
    read-back-verifies the stored bits and atomically switches the
    active generation); ``get`` fetches a generation (``--output`` saves
    the packed blob); ``list`` shows generations and active pointers;
    ``verify`` audits the disk with a fresh recovery pass plus a deep
    decode of every blob, exiting 1 on any damage; ``recover`` rebuilds
    the catalog — quarantining corrupt records, dropping the torn tail,
    falling back to the last good snapshot — and can emit the
    quarantine report (``--report``); ``compact`` snapshots the catalog
    atomically and resets the journal.
``codec NAME N``
    Run an incompressibility codec against a sampled or structured graph.
``trace-report TRACE``
    Summarize a ``--trace-out`` JSONL file: hot nodes, hop latency
    percentiles, and fault-window attribution of every drop.
``bench-report --baseline FILE --fresh FILE``
    Diff a fresh schema-versioned bench artifact against a committed
    baseline and exit non-zero on any gated-metric regression beyond the
    per-metric (or ``--threshold``) tolerance — the CI regression gate.
``lint [PATH ...]``
    Run the repo-specific AST linter: per-file rules R001–R009
    (bit-accounting integrality, DropReason exhaustiveness, tracer
    guards, seeded RNGs, scheme contract, exception hygiene, public
    annotations, mutable defaults, context-routed derivations) plus the
    cross-module flow rules R010–R013 (seed provenance, invalidation
    discipline, bit conservation, exception boundaries) and the stale
    suppression audit R014.  ``--no-flow`` skips the flow pass,
    ``--dump-callgraph FILE`` exports the resolved call graph,
    ``--diff REF`` restricts findings to files changed since the ref;
    ``--list-rules`` prints the catalogue; ``--format json``/``--output``
    emit the structured report.

Observability flags: ``simulate``, ``simulate-chaos``,
``simulate-corruption``, ``simulate-churn`` and ``build`` accept
``--trace-out FILE`` (hop-level JSONL spans), ``--metrics-out FILE``
(metrics-registry dump — JSON, or Prometheus text when the file ends in
``.prom``), and the simulators accept ``--json`` for machine-readable
:class:`RoutingMetrics` on stdout.

Every artifact-writing invocation captures a
:class:`~repro.observability.manifest.RunManifest` (git sha, seeds, graph
fingerprint, toolchain versions, wall time) and embeds it in the trace
file (first JSONL row), the metrics dump (``manifest`` key, or a
``# manifest:`` comment in Prometheus text) and the ``--json`` summary,
so any emitted number is traceable to the exact run that produced it.

All sampling is seeded (``--seed``) and therefore reproducible.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time as _time
from typing import Optional, Sequence, Set

from repro.core import available_schemes, build_scheme, route_message, verify_scheme
from repro.core.persistence import pack_scheme
from repro.errors import ReproError
from repro.graphs import (
    certify_random_graph,
    cycle_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.incompressibility import (
    Lemma1Codec,
    Lemma2Codec,
    Lemma3Codec,
    evaluate_codec,
)
from repro.integrity import FramingPolicy, IntegrityWrapper
from repro.models import Knowledge, Labeling, RoutingModel
from repro.observability import (
    JsonlTracer,
    RunManifest,
    TraceDecodeError,
    compare_runs,
    format_trace_report,
    get_registry,
    load_bench_result,
    read_trace,
    summarize_trace,
)
from repro.observability.bench import format_comparison as _format_bench_diff
from repro.simulator import (
    DetourWrapper,
    EventDrivenSimulator,
    MutationKind,
    Network,
    RetryPolicy,
    TopologyMutationKind,
    flapping_links,
    random_churn,
    regional_failures,
    renewal_faults,
    retry_histogram,
    sample_link_failures,
    sample_node_failures,
    summarize,
    table_corruption,
)
from repro.store import LocalFilesystem, SchemeStore
from repro.simulator.workloads import (
    all_to_one,
    hotspot_pairs,
    one_to_all,
    permutation_traffic,
    uniform_pairs,
)

__all__ = ["main", "parse_model"]

_CODECS = {
    "lemma1": Lemma1Codec,
    "lemma2": Lemma2Codec,
    "lemma3": Lemma3Codec,
}

_STRUCTURED = {
    "random": None,  # handled via gnp
    "path": path_graph,
    "cycle": cycle_graph,
    "star": star_graph,
}


def parse_model(text: str) -> RoutingModel:
    """Parse ``II.alpha`` / ``ia.gamma`` style model names."""
    try:
        knowledge_text, labeling_text = text.split(".")
        knowledge = Knowledge[knowledge_text.upper()]
        labeling = Labeling[labeling_text.upper()]
    except (ValueError, KeyError) as exc:
        raise argparse.ArgumentTypeError(
            f"model must look like II.alpha (one of IA/IB/II and "
            f"alpha/beta/gamma), got {text!r}"
        ) from exc
    return RoutingModel(knowledge, labeling)


def _make_graph(kind: str, n: int, seed: int):
    if kind == "random":
        return gnp_random_graph(n, seed=seed)
    return _STRUCTURED[kind](n)


def _add_observability_flags(
    parser: argparse.ArgumentParser, json_flag: bool = True
) -> None:
    parser.add_argument(
        "--trace-out", type=str, default=None, metavar="FILE",
        help="write hop-level trace spans to this JSONL file",
    )
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="FILE",
        help="dump the metrics registry here (JSON, or Prometheus text "
             "for a .prom file)",
    )
    if json_flag:
        parser.add_argument(
            "--json", action="store_true",
            help="print machine-readable RoutingMetrics JSON instead of text",
        )


def _retry_parent() -> argparse.ArgumentParser:
    """Shared ``--retries``/backoff flags for every retrying simulator.

    One parent parser (``add_help=False`` so it composes) instead of the
    same four ``add_argument`` calls repeated per subcommand — and the
    full :class:`~repro.simulator.recovery.RetryPolicy` surface is
    reachable: multiplier, cap, and jitter, not just the base delay.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--retries", type=int, default=0,
                        help="max re-transmissions per message (0 = none)")
    parent.add_argument("--backoff-base", type=float, default=1.0,
                        help="base retry backoff delay")
    parent.add_argument("--backoff-multiplier", type=float, default=2.0,
                        help="exponential backoff growth factor per retry")
    parent.add_argument("--max-delay", type=float, default=60.0,
                        help="cap on any single backoff delay")
    parent.add_argument("--jitter", type=float, default=0.1,
                        help="+/- fraction of seeded jitter on each delay")
    return parent


def _retry_policy(args: argparse.Namespace) -> Optional[RetryPolicy]:
    """The RetryPolicy the retry flags describe (None when retries off)."""
    if args.retries <= 0:
        return None
    return RetryPolicy(
        max_attempts=args.retries + 1,
        base_delay=args.backoff_base,
        multiplier=args.backoff_multiplier,
        max_delay=args.max_delay,
        jitter=args.jitter,
    )


def _batch_parent() -> argparse.ArgumentParser:
    """Shared ``--batch``/``--workers`` flags for every simulate command.

    Same parent-parser pattern as :func:`_retry_parent`: one definition,
    composed into each subcommand instead of repeated per parser.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--batch", action="store_true",
        help="route through the vectorised batch kernel (bit-identical "
             "records to the scalar path under the same configuration)",
    )
    parent.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run N seed replicas (seed..seed+N-1) through the "
             "multiprocessing sweep driver and print aggregate results "
             "(replicas use the kernel-expressible core of this command; "
             "tracing/metrics flags apply only to single runs)",
    )
    return parent


def _run_manifest(args: argparse.Namespace, graph=None) -> RunManifest:
    """One RunManifest per CLI invocation, embedded in every artifact."""
    params = {
        key: value
        for key, value in vars(args).items()
        if key != "command"
    }
    command = args.command
    if getattr(args, "store_command", None):
        command = f"store-{args.store_command}"
    return RunManifest.capture(
        command=command,
        seed=getattr(args, "seed", None),
        scheme=getattr(args, "scheme", None),
        n=getattr(args, "n", None),
        params=params,
        graph=graph,
    )


def _open_tracer(
    args: argparse.Namespace, manifest: RunManifest
) -> Optional[JsonlTracer]:
    if getattr(args, "trace_out", None):
        return JsonlTracer(args.trace_out, manifest=manifest)
    return None


def _write_metrics_out(
    args: argparse.Namespace, manifest: RunManifest
) -> None:
    path = getattr(args, "metrics_out", None)
    if not path:
        return
    registry = get_registry()
    if path.endswith(".prom"):
        text = (
            f"# manifest: {manifest.to_json()}\n" + registry.to_prometheus()
        )
    else:
        text = json.dumps(
            {"manifest": manifest.to_dict(), "metrics": registry.snapshot()},
            indent=2,
            sort_keys=True,
        ) + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def _metrics_json(
    args: argparse.Namespace, metrics, records, manifest: RunManifest
) -> str:
    payload = metrics.to_dict()
    payload["scheme"] = args.scheme
    payload["n"] = args.n
    payload["seed"] = args.seed
    payload["retry_histogram"] = {
        str(retries): count
        for retries, count in sorted(retry_histogram(records).items())
    }
    payload["manifest"] = manifest.to_dict()
    return json.dumps(payload, indent=2, sort_keys=True)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal Routing Tables (PODC 1996), executable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schemes", help="list registered routing schemes")

    certify = sub.add_parser("certify", help="certify a sampled random graph")
    certify.add_argument("n", type=int)
    certify.add_argument("--seed", type=int, default=0)
    certify.add_argument("--c", type=float, default=3.0)

    build = sub.add_parser("build", help="build a scheme and report its size")
    build.add_argument("scheme", choices=available_schemes())
    build.add_argument("n", type=int)
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--model", type=parse_model, default=None)
    build.add_argument("--save", type=str, default=None,
                       help="write the packed scheme blob to this file")
    _add_observability_flags(build, json_flag=False)

    route = sub.add_parser("route", help="route one message")
    route.add_argument("scheme", choices=available_schemes())
    route.add_argument("n", type=int)
    route.add_argument("source", type=int)
    route.add_argument("destination", type=int)
    route.add_argument("--seed", type=int, default=0)
    route.add_argument("--model", type=parse_model, default=None)

    verify = sub.add_parser("verify", help="verify delivery and stretch")
    verify.add_argument("scheme", choices=available_schemes())
    verify.add_argument("n", type=int)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--pairs", type=int, default=500)
    verify.add_argument("--model", type=parse_model, default=None)

    batch_parent = _batch_parent()

    simulate = sub.add_parser(
        "simulate",
        help="run a workload through the simulator",
        parents=[batch_parent],
    )
    simulate.add_argument("scheme", choices=available_schemes())
    simulate.add_argument("n", type=int)
    simulate.add_argument(
        "--seed", type=int, default=0,
        help="seeds the graph, failure sample and workload (default: 0)",
    )
    simulate.add_argument("--model", type=parse_model, default=None)
    simulate.add_argument("--messages", type=int, default=200)
    simulate.add_argument("--failures", type=int, default=0,
                          help="number of links to fail")
    simulate.add_argument("--node-failures", type=int, default=0,
                          help="number of nodes to crash")
    simulate.add_argument(
        "--workload",
        choices=("uniform", "hotspot", "all-to-one", "one-to-all", "permutation"),
        default="uniform",
    )
    _add_observability_flags(simulate)

    retry_parent = _retry_parent()

    chaos = sub.add_parser(
        "simulate-chaos",
        help="run the event engine under a dynamic fault schedule",
        parents=[retry_parent, batch_parent],
    )
    chaos.add_argument("scheme", choices=available_schemes())
    chaos.add_argument("n", type=int)
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="seeds the schedule generator, workload, retry jitter and "
             "injection clock (default: 0)",
    )
    chaos.add_argument("--model", type=parse_model, default=None)
    chaos.add_argument("--messages", type=int, default=300)
    chaos.add_argument(
        "--workload",
        choices=("uniform", "hotspot", "permutation"),
        default="uniform",
    )
    chaos.add_argument(
        "--schedule",
        choices=("flapping", "renewal", "regional"),
        default="flapping",
        help="fault-schedule generator (default: flapping links)",
    )
    chaos.add_argument("--horizon", type=float, default=100.0,
                       help="schedule horizon in simulated time units")
    chaos.add_argument("--chaos-links", type=int, default=None,
                       help="links under churn (default: half the edges)")
    chaos.add_argument("--chaos-nodes", type=int, default=0,
                       help="nodes under churn (renewal schedule only)")
    chaos.add_argument("--period", type=float, default=10.0,
                       help="flapping: down/up cycle length")
    chaos.add_argument("--duty", type=float, default=0.5,
                       help="flapping: fraction of each cycle spent down")
    chaos.add_argument("--mtbf", type=float, default=20.0,
                       help="renewal: mean time between failures")
    chaos.add_argument("--mttr", type=float, default=5.0,
                       help="renewal: mean time to repair")
    chaos.add_argument("--regions", type=int, default=2,
                       help="regional: number of correlated outages")
    chaos.add_argument("--radius", type=int, default=1,
                       help="regional: hop radius of each outage")
    chaos.add_argument("--outage", type=float, default=20.0,
                       help="regional: outage duration")
    chaos.add_argument("--detour", action="store_true",
                       help="wrap the scheme in the bounce-once DetourWrapper")
    _add_observability_flags(chaos)

    corruption = sub.add_parser(
        "simulate-corruption",
        help="run the event engine while seeded faults corrupt routing "
             "tables mid-run (integrity framing + self-healing)",
        parents=[retry_parent, batch_parent],
    )
    corruption.add_argument("scheme", choices=available_schemes())
    corruption.add_argument("n", type=int)
    corruption.add_argument(
        "--seed", type=int, default=0,
        help="seeds the corruption schedule, workload, retry jitter and "
             "injection clock (default: 0)",
    )
    corruption.add_argument("--model", type=parse_model, default=None)
    corruption.add_argument("--messages", type=int, default=300)
    corruption.add_argument(
        "--workload",
        choices=("uniform", "hotspot", "permutation"),
        default="uniform",
    )
    corruption.add_argument("--horizon", type=float, default=100.0,
                            help="schedule horizon in simulated time units")
    corruption.add_argument(
        "--corrupt-nodes", type=int, default=None,
        help="how many distinct nodes suffer a table corruption "
             "(default: a quarter of the nodes)",
    )
    corruption.add_argument(
        "--mutation",
        choices=("bit-flip", "burst", "truncate", "mixed"),
        default="bit-flip",
        help="damage model applied to the packed function bits",
    )
    corruption.add_argument("--flips", type=int, default=1,
                            help="bit-flip: independent flips per corruption")
    corruption.add_argument("--burst-span", type=int, default=8,
                            help="burst: contiguous bits flipped")
    corruption.add_argument("--truncate-bits", type=int, default=4,
                            help="truncate: trailing bits dropped")
    corruption.add_argument(
        "--framing",
        choices=tuple(policy.value for policy in FramingPolicy),
        default=FramingPolicy.CRC8.value,
        help="integrity framing charged on every table (default: crc8; "
             "'none' reproduces the unprotected pre-framing behaviour)",
    )
    corruption.add_argument(
        "--repair-delay", type=float, default=10.0,
        help="self-heal rebuilds a table this long after detection "
             "(negative disables healing)",
    )
    corruption.add_argument(
        "--detour", action="store_true",
        help="wrap the scheme in the bounce-once DetourWrapper "
             "(composes outside the integrity framing)",
    )
    _add_observability_flags(corruption)

    churn = sub.add_parser(
        "simulate-churn",
        help="run the event engine under live topology churn with "
             "incremental scheme repair and convergence reporting",
        parents=[retry_parent, batch_parent],
    )
    churn.add_argument("scheme", choices=available_schemes())
    churn.add_argument("n", type=int)
    churn.add_argument(
        "--seed", type=int, default=0,
        help="seeds the graph, churn schedule, workload, retry jitter and "
             "injection clock (default: 0)",
    )
    churn.add_argument("--model", type=parse_model, default=None)
    churn.add_argument("--messages", type=int, default=300)
    churn.add_argument(
        "--workload",
        choices=("uniform", "hotspot", "permutation"),
        default="uniform",
    )
    churn.add_argument("--events", type=int, default=6,
                       help="topology mutations scheduled over the horizon")
    churn.add_argument(
        "--kinds",
        choices=("edges", "nodes", "all"),
        default="edges",
        help="mutation mix: edge add/remove, node leave/join, or all four",
    )
    churn.add_argument("--horizon", type=float, default=100.0,
                       help="churn horizon in simulated time units")
    churn.add_argument(
        "--repair-delay", type=float, default=5.0,
        help="repair planning starts this long after a mutation "
             "(coalescing mutations that land in the window)",
    )
    churn.add_argument(
        "--repair-rate", type=float, default=None,
        help="stagger table installs at this many bits per time unit "
             "(default: install the whole repair plan instantly)",
    )
    churn.add_argument(
        "--full-rebuild", action="store_true",
        help="rebuild every table on each repair instead of only the "
             "dirtied ones (the control arm incremental repair is "
             "measured against)",
    )
    _add_observability_flags(churn)

    codec = sub.add_parser("codec", help="run an incompressibility codec")
    codec.add_argument("name", choices=sorted(_CODECS))
    codec.add_argument("n", type=int)
    codec.add_argument("--seed", type=int, default=0)
    codec.add_argument("--graph", choices=sorted(_STRUCTURED), default="random")

    compare = sub.add_parser(
        "compare", help="build every scheme on one graph and tabulate"
    )
    compare.add_argument("n", type=int)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--pairs", type=int, default=300)

    bootstrap = sub.add_parser(
        "bootstrap", help="simulate disseminating a scheme's tables"
    )
    bootstrap.add_argument("scheme", choices=available_schemes())
    bootstrap.add_argument("n", type=int)
    bootstrap.add_argument("--seed", type=int, default=0)
    bootstrap.add_argument("--model", type=parse_model, default=None)
    bootstrap.add_argument("--root", type=int, default=1)
    bootstrap.add_argument("--rate", type=float, default=10_000.0,
                           help="link rate in bits per time unit")

    report = sub.add_parser(
        "report",
        help="aggregate benchmarks/results/*.txt into one reproduction report",
    )
    report.add_argument(
        "--results-dir", type=str, default="benchmarks/results",
    )
    report.add_argument("--output", type=str, default=None,
                        help="write the report here instead of stdout")

    lint = sub.add_parser(
        "lint",
        help="run the repo-specific AST linter (per-file rules R001-R009 "
             "plus the flow-sensitive R010-R013) over source paths",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--no-flow", action="store_true",
        help="skip the cross-module flow rules (R010-R013); only the "
             "per-file rules run",
    )
    lint.add_argument(
        "--dump-callgraph", type=str, default=None, metavar="FILE",
        help="write the import-resolved call graph as JSON to this file "
             "(requires the flow pass)",
    )
    lint.add_argument(
        "--diff", type=str, default=None, metavar="REF",
        help="report findings only for files changed since this git ref "
             "(the whole program is still parsed for flow analysis)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="findings rendering (default: text)",
    )
    lint.add_argument(
        "--output", type=str, default=None, metavar="FILE",
        help="also write the JSON report to this file",
    )
    lint.add_argument(
        "--select", type=str, default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--fail-on", choices=("error", "warning", "never"), default="warning",
        help="lowest severity that fails the build (default: warning, "
             "i.e. any finding)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )

    bench_report = sub.add_parser(
        "bench-report",
        help="diff a fresh bench artifact against a committed baseline "
             "and exit non-zero on gated-metric regressions",
    )
    bench_report.add_argument(
        "--baseline", type=str, required=True, metavar="FILE",
        help="committed schema-versioned BENCH_*.json baseline",
    )
    bench_report.add_argument(
        "--fresh", type=str, required=True, metavar="FILE",
        help="freshly generated bench artifact to judge",
    )
    bench_report.add_argument(
        "--threshold", type=float, default=0.10,
        help="default relative tolerance for metrics that declare none "
             "(default: 0.10)",
    )
    bench_report.add_argument(
        "--json", action="store_true",
        help="print the comparison as JSON instead of the table",
    )
    bench_report.add_argument(
        "--output", type=str, default=None, metavar="FILE",
        help="also write the comparison JSON (with manifest) here",
    )

    store = sub.add_parser(
        "store",
        help="crash-safe durable scheme store: journaled puts, snapshots, "
             "verified hot-swap, audited recovery",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_put = store_sub.add_parser(
        "put", help="build a scheme and durably store a new generation"
    )
    store_put.add_argument("scheme", choices=available_schemes())
    store_put.add_argument("n", type=int)
    store_put.add_argument("--dir", type=str, required=True, metavar="DIR",
                           help="store directory (created on first use)")
    store_put.add_argument("--seed", type=int, default=0)
    store_put.add_argument("--model", type=parse_model, default=None)
    store_put.add_argument("--name", type=str, default=None,
                           help="store key (default: the scheme name)")
    store_put.add_argument(
        "--hot-swap", action="store_true",
        help="verified hot-swap: store, read back bit-exact, then switch "
             "the active generation (failure leaves the old one serving)",
    )
    store_put.add_argument(
        "--snapshot-every", type=int, default=8,
        help="compact into a snapshot after this many puts (default: 8)",
    )
    _add_observability_flags(store_put, json_flag=False)

    store_get = store_sub.add_parser(
        "get", help="fetch a stored generation (active by default)"
    )
    store_get.add_argument("name", type=str, help="store key")
    store_get.add_argument("--dir", type=str, required=True, metavar="DIR")
    store_get.add_argument("--generation", type=int, default=None)
    store_get.add_argument("--output", type=str, default=None, metavar="FILE",
                           help="write the packed scheme blob to this file")

    store_list = store_sub.add_parser(
        "list", help="list stored schemes, generations and active pointers"
    )
    store_list.add_argument("--dir", type=str, required=True, metavar="DIR")
    store_list.add_argument("--json", action="store_true")

    store_verify = store_sub.add_parser(
        "verify",
        help="audit the disk: fresh recovery pass + deep blob decode, "
             "diffed against the catalog (exit 1 on any damage)",
    )
    store_verify.add_argument("--dir", type=str, required=True, metavar="DIR")
    store_verify.add_argument("--json", action="store_true")

    store_recover = store_sub.add_parser(
        "recover",
        help="rebuild the catalog from disk, quarantining damaged records "
             "and falling back to the last good snapshot",
    )
    store_recover.add_argument("--dir", type=str, required=True, metavar="DIR")
    store_recover.add_argument("--json", action="store_true")
    store_recover.add_argument(
        "--report", type=str, default=None, metavar="FILE",
        help="write the quarantine/recovery report JSON here (CI artifact)",
    )
    _add_observability_flags(store_recover, json_flag=False)

    store_compact = store_sub.add_parser(
        "compact",
        help="snapshot the catalog atomically and reset the journal",
    )
    store_compact.add_argument("--dir", type=str, required=True, metavar="DIR")

    trace_report = sub.add_parser(
        "trace-report",
        help="summarize a --trace-out JSONL file (hot nodes, hop latency "
             "percentiles, fault-window drop attribution)",
    )
    trace_report.add_argument("trace", type=str, help="JSONL trace file")
    trace_report.add_argument("--top", type=int, default=10,
                              help="how many hot nodes / fault subjects to list")
    trace_report.add_argument("--json", action="store_true",
                              help="print the summary as JSON")
    return parser


def _default_model(scheme: str) -> RoutingModel:
    if scheme == "thm2-neighbor-labels":
        return RoutingModel(Knowledge.II, Labeling.GAMMA)
    if scheme in ("interval", "chain-comparison"):
        return RoutingModel(Knowledge.II, Labeling.BETA)
    return RoutingModel(Knowledge.II, Labeling.ALPHA)


def _cmd_schemes(_: argparse.Namespace) -> int:
    for name in available_schemes():
        print(name)
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    graph = gnp_random_graph(args.n, seed=args.seed)
    cert = certify_random_graph(graph, c=args.c)
    print(f"G({args.n}, 1/2) seed {args.seed}: {graph.edge_count} edges")
    print(f"  degrees within Lemma 1 band : {cert.degrees_in_band} "
          f"(max deviation {cert.max_degree_deviation}, "
          f"scale {cert.lemma1_scale:.1f})")
    print(f"  diameter 2 (Lemma 2)        : {cert.diameter_two}")
    print(f"  cover prefix (Lemma 3)      : {cert.max_cover_prefix} "
          f"<= {cert.lemma3_scale:.1f}: {cert.cover_within_bound}")
    print(f"  estimated deficiency        : {cert.estimated_deficiency} bits")
    print(f"  certified                   : {cert.certified}")
    return 0 if cert.certified else 1


def _cmd_build(args: argparse.Namespace) -> int:
    started = _time.perf_counter()
    model = args.model or _default_model(args.scheme)
    graph = gnp_random_graph(args.n, seed=args.seed)
    manifest = _run_manifest(args, graph)
    scheme = build_scheme(args.scheme, graph, model)
    report = scheme.space_report()
    print(report.summary())
    if args.save:
        blob = pack_scheme(scheme)
        with open(args.save, "wb") as handle:
            handle.write(blob)
        print(f"packed scheme written to {args.save} ({len(blob)} bytes)")
    manifest = manifest.completed(_time.perf_counter() - started)
    if args.trace_out:
        # Builds emit no hop spans; a manifest-only trace file beats a
        # surprising missing one when scripts pass the flag uniformly.
        JsonlTracer(args.trace_out, manifest=manifest).close()
    _write_metrics_out(args, manifest)
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    model = args.model or _default_model(args.scheme)
    graph = gnp_random_graph(args.n, seed=args.seed)
    scheme = build_scheme(args.scheme, graph, model)
    trace = route_message(scheme, args.source, args.destination)
    print(" -> ".join(map(str, trace.path)))
    print(f"{trace.hops} hops")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    model = args.model or _default_model(args.scheme)
    graph = gnp_random_graph(args.n, seed=args.seed)
    scheme = build_scheme(args.scheme, graph, model)
    result = verify_scheme(scheme, sample_pairs=args.pairs, seed=args.seed)
    print(f"pairs: {result.pairs_checked}  delivered: {result.delivered}  "
          f"max stretch: {result.max_stretch:.2f}  "
          f"bound: {scheme.stretch_bound():.2f}  ok: {result.ok()}")
    return 0 if result.ok() else 1



def _cmd_sweep_replicas(args: argparse.Namespace, variant: str) -> int:
    """Shard N seed replicas of a simulate command over worker processes.

    Each replica is a :class:`~repro.simulator.sweep.SweepTask` built from
    the command's kernel-expressible knobs; records never cross the
    process boundary, only per-replica aggregates and record digests.
    """
    from repro.simulator.sweep import run_sweep, seed_replicas

    if args.workload not in ("uniform", "hotspot", "permutation"):
        print(f"--workers sweeps support uniform/hotspot/permutation "
              f"workloads, not {args.workload!r}", file=sys.stderr)
        return 2
    knobs: dict = {
        "messages": args.messages,
        "workload": args.workload,
        "variant": variant,
        "batch": True,
    }
    if variant == "plain":
        knobs["failures"] = args.failures
        knobs["node_failures"] = args.node_failures
    else:
        knobs["horizon"] = args.horizon
        knobs["retries"] = args.retries
        knobs["retry_base_delay"] = args.backoff_base
    if variant == "chaos":
        knobs["chaos_links"] = args.chaos_links
        knobs["chaos_nodes"] = args.chaos_nodes
    elif variant == "corruption":
        knobs["corrupt_nodes"] = args.corrupt_nodes
        knobs["repair_delay"] = (
            args.repair_delay if args.repair_delay > 0 else None
        )
    elif variant == "churn":
        knobs["churn_events"] = args.events
        knobs["churn_repair_delay"] = args.repair_delay
    tasks = seed_replicas(
        args.scheme, args.n, graph_seed=args.seed, base_seed=args.seed,
        count=args.workers, **knobs,
    )
    results = run_sweep(tasks, workers=args.workers)
    if getattr(args, "json", False):
        payload = [
            {
                "seed": result.task.seed,
                "messages": result.messages,
                "delivered": result.delivered,
                "dropped": result.dropped,
                "retries": result.retries,
                "stale": result.stale,
                "drop_reasons": dict(result.drop_reasons),
                "record_digest": result.record_digest,
            }
            for result in results
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    total = sum(r.messages for r in results)
    delivered = sum(r.delivered for r in results)
    print(f"{args.scheme} on G({args.n}, 1/2) x{args.workers} seed "
          f"replicas ({variant} sweep, {total} messages)")
    for result in results:
        print(f"  seed {result.task.seed}: {result.delivered}/"
              f"{result.messages} delivered, {result.retries} retries, "
              f"digest {result.record_digest[:12]}")
    fraction = delivered / total if total else 0.0
    print(f"aggregate: {delivered}/{total} delivered ({fraction:.1%})")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.workers > 1:
        return _cmd_sweep_replicas(args, "plain")
    started = _time.perf_counter()
    model = args.model or _default_model(args.scheme)
    graph = gnp_random_graph(args.n, seed=args.seed)
    manifest = _run_manifest(args, graph)
    scheme = build_scheme(args.scheme, graph, model)
    failures = (
        sample_link_failures(graph, args.failures, seed=args.seed)
        if args.failures
        else set()
    )
    node_failures = (
        sample_node_failures(graph, args.node_failures, seed=args.seed)
        if args.node_failures
        else set()
    )
    if args.workload == "uniform":
        pairs = uniform_pairs(graph, args.messages, seed=args.seed)
    elif args.workload == "hotspot":
        pairs = hotspot_pairs(graph, args.messages, seed=args.seed)
    elif args.workload == "all-to-one":
        pairs = all_to_one(graph)
    elif args.workload == "one-to-all":
        pairs = one_to_all(graph)
    else:
        pairs = permutation_traffic(graph, seed=args.seed)
    tracer = _open_tracer(args, manifest)
    network = Network(
        scheme, failures, failed_nodes=node_failures, tracer=tracer
    )
    if args.batch:
        records = network.route_batch(pairs)
    else:
        records = [network.route(s, t) for s, t in pairs]
    if tracer is not None:
        tracer.close()
    metrics = summarize(records, graph)
    manifest = manifest.completed(_time.perf_counter() - started)
    _write_metrics_out(args, manifest)
    if args.json:
        print(_metrics_json(args, metrics, records, manifest))
        return 0
    print(f"messages: {metrics.messages}  delivered: {metrics.delivered} "
          f"({metrics.delivered_fraction:.1%})")
    if metrics.delivered:
        print(f"mean hops: {metrics.mean_hops:.2f}  "
              f"mean stretch: {metrics.mean_stretch:.2f}  "
              f"max stretch: {metrics.max_stretch:.2f}")
    for reason, count in sorted(metrics.drop_reasons.items()):
        print(f"  dropped ({count}): {reason}")
    return 0


def _cmd_simulate_chaos(args: argparse.Namespace) -> int:
    import random as _random

    if args.workers > 1:
        if args.schedule != "renewal":
            print("--workers sweeps support only the renewal schedule",
                  file=sys.stderr)
            return 2
        return _cmd_sweep_replicas(args, "chaos")
    started = _time.perf_counter()
    model = args.model or _default_model(args.scheme)
    graph = gnp_random_graph(args.n, seed=args.seed)
    manifest = _run_manifest(args, graph)
    scheme = build_scheme(args.scheme, graph, model)
    if args.detour:
        scheme = DetourWrapper(scheme)
    chaos_links = (
        args.chaos_links
        if args.chaos_links is not None
        else graph.edge_count // 2
    )
    if args.schedule == "flapping":
        schedule = flapping_links(
            graph, chaos_links, period=args.period, duty=args.duty,
            horizon=args.horizon, seed=args.seed,
        )
    elif args.schedule == "renewal":
        schedule = renewal_faults(
            graph, horizon=args.horizon, seed=args.seed,
            link_count=chaos_links, link_mtbf=args.mtbf, link_mttr=args.mttr,
            node_count=args.chaos_nodes,
        )
    else:
        schedule = regional_failures(
            graph, regions=args.regions, radius=args.radius,
            duration=args.outage, horizon=args.horizon, seed=args.seed,
        )
    if args.workload == "uniform":
        pairs = uniform_pairs(graph, args.messages, seed=args.seed)
    elif args.workload == "hotspot":
        pairs = hotspot_pairs(graph, args.messages, seed=args.seed)
    else:
        pairs = permutation_traffic(graph, seed=args.seed)
    retry = _retry_policy(args)
    tracer = _open_tracer(args, manifest)
    sim: "EventDrivenSimulator | BatchKernel"
    if args.batch:
        from repro.simulator.kernel import BatchKernel

        sim = BatchKernel(
            scheme,
            fault_schedule=schedule,
            retry_policy=retry,
            retry_seed=args.seed,
            tracer=tracer,
        )
    else:
        sim = EventDrivenSimulator(
            scheme,
            fault_schedule=schedule,
            retry_policy=retry,
            retry_seed=args.seed,
            tracer=tracer,
        )
    clock = _random.Random(args.seed)
    for source, destination in pairs:
        sim.inject(source, destination, clock.uniform(0.0, args.horizon * 0.8))
    records = sim.run()
    if tracer is not None:
        tracer.close()
    metrics = summarize(records, graph)
    manifest = manifest.completed(_time.perf_counter() - started)
    _write_metrics_out(args, manifest)
    if args.json:
        print(_metrics_json(args, metrics, records, manifest))
        return 0
    print(f"{scheme.scheme_name} on G({args.n}, 1/2) under "
          f"{args.schedule} churn ({len(schedule)} fault events, "
          f"horizon {args.horizon:g})")
    print(f"messages: {metrics.messages}  delivered: {metrics.delivered} "
          f"({metrics.delivered_fraction:.1%})")
    if metrics.delivered:
        print(f"mean hops: {metrics.mean_hops:.2f}  "
              f"mean stretch: {metrics.mean_stretch:.2f}  "
              f"max stretch: {metrics.max_stretch:.2f}  "
              f"mean time-to-delivery: {metrics.mean_time_to_delivery:.2f}")
    print(f"retries: {metrics.total_retries} total, "
          f"{metrics.mean_retries:.2f} per message")
    histogram = retry_histogram(records)
    if len(histogram) > 1:
        spread = "  ".join(
            f"{count}x{retries}r" for retries, count in sorted(histogram.items())
        )
        print(f"  retry histogram: {spread}")
    for reason, count in sorted(metrics.drop_reasons.items()):
        print(f"  dropped ({count}): {reason.value}")
    return 0


_MUTATION_CHOICES = {
    "bit-flip": (MutationKind.BIT_FLIP,),
    "burst": (MutationKind.BURST,),
    "truncate": (MutationKind.TRUNCATE,),
    "mixed": (
        MutationKind.BIT_FLIP,
        MutationKind.BURST,
        MutationKind.TRUNCATE,
    ),
}


def _cmd_simulate_corruption(args: argparse.Namespace) -> int:
    import random as _random

    if args.workers > 1:
        return _cmd_sweep_replicas(args, "corruption")
    started = _time.perf_counter()
    model = args.model or _default_model(args.scheme)
    graph = gnp_random_graph(args.n, seed=args.seed)
    manifest = _run_manifest(args, graph)
    scheme = build_scheme(args.scheme, graph, model)
    policy = FramingPolicy(args.framing)
    if policy is not FramingPolicy.NONE:
        scheme = IntegrityWrapper(scheme, policy)
    if args.detour:
        scheme = DetourWrapper(scheme)
    corrupt_nodes = (
        args.corrupt_nodes
        if args.corrupt_nodes is not None
        else max(args.n // 4, 1)
    )
    schedule = table_corruption(
        graph,
        corrupt_nodes,
        horizon=args.horizon,
        seed=args.seed,
        kinds=_MUTATION_CHOICES[args.mutation],
        flips=args.flips,
        burst_span=args.burst_span,
        truncate_bits=args.truncate_bits,
    )
    if args.workload == "uniform":
        pairs = uniform_pairs(graph, args.messages, seed=args.seed)
    elif args.workload == "hotspot":
        pairs = hotspot_pairs(graph, args.messages, seed=args.seed)
    else:
        pairs = permutation_traffic(graph, seed=args.seed)
    retry = _retry_policy(args)
    repair_delay = args.repair_delay if args.repair_delay > 0 else None
    tracer = _open_tracer(args, manifest)
    sim: "EventDrivenSimulator | BatchKernel"
    if args.batch:
        from repro.simulator.kernel import BatchKernel

        sim = BatchKernel(
            scheme,
            fault_schedule=schedule,
            retry_policy=retry,
            retry_seed=args.seed,
            tracer=tracer,
            repair_delay=repair_delay,
        )
    else:
        sim = EventDrivenSimulator(
            scheme,
            fault_schedule=schedule,
            retry_policy=retry,
            retry_seed=args.seed,
            tracer=tracer,
            repair_delay=repair_delay,
        )
    clock = _random.Random(args.seed)
    for source, destination in pairs:
        sim.inject(source, destination, clock.uniform(0.0, args.horizon * 0.8))
    records = sim.run()
    if tracer is not None:
        tracer.close()
    metrics = summarize(records, graph)
    lifecycle = sim.network.corruption_summary()
    integrity_overhead = scheme.space_report().integrity_bits
    manifest = manifest.completed(_time.perf_counter() - started)
    _write_metrics_out(args, manifest)
    if args.json:
        payload = json.loads(_metrics_json(args, metrics, records, manifest))
        payload["corruption"] = {
            "framing": policy.value,
            "scheduled": len(schedule),
            "repair_delay": repair_delay,
            "integrity_bits": integrity_overhead,
            **lifecycle,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{scheme.scheme_name} on G({args.n}, 1/2) under table "
          f"corruption ({len(schedule)} scheduled corruptions, "
          f"horizon {args.horizon:g})")
    print(f"integrity framing: {policy.value} "
          f"({integrity_overhead} bits total overhead)")
    print(f"corruption lifecycle: {lifecycle['injected']} injected, "
          f"{lifecycle['detected']} detected, "
          f"{lifecycle['undetected']} undetected, "
          f"{lifecycle['healed']} healed")
    print(f"messages: {metrics.messages}  delivered: {metrics.delivered} "
          f"({metrics.delivered_fraction:.1%})")
    if metrics.delivered:
        print(f"mean hops: {metrics.mean_hops:.2f}  "
              f"mean stretch: {metrics.mean_stretch:.2f}  "
              f"max stretch: {metrics.max_stretch:.2f}")
    print(f"retries: {metrics.total_retries} total, "
          f"{metrics.mean_retries:.2f} per message")
    for reason, count in sorted(metrics.drop_reasons.items()):
        print(f"  dropped ({count}): {reason.value}")
    return 0


_CHURN_KINDS = {
    "edges": (
        TopologyMutationKind.EDGE_ADD,
        TopologyMutationKind.EDGE_REMOVE,
    ),
    "nodes": (
        TopologyMutationKind.NODE_LEAVE,
        TopologyMutationKind.NODE_JOIN,
    ),
    "all": (
        TopologyMutationKind.EDGE_ADD,
        TopologyMutationKind.EDGE_REMOVE,
        TopologyMutationKind.NODE_LEAVE,
        TopologyMutationKind.NODE_JOIN,
    ),
}


def _cmd_simulate_churn(args: argparse.Namespace) -> int:
    import random as _random

    if args.workers > 1:
        return _cmd_sweep_replicas(args, "churn")
    started = _time.perf_counter()
    model = args.model or _default_model(args.scheme)
    graph = gnp_random_graph(args.n, seed=args.seed)
    manifest = _run_manifest(args, graph)
    scheme = build_scheme(args.scheme, graph, model)
    schedule = random_churn(
        graph,
        args.events,
        horizon=args.horizon,
        seed=args.seed,
        kinds=_CHURN_KINDS[args.kinds],
    )
    if args.workload == "uniform":
        pairs = uniform_pairs(graph, args.messages, seed=args.seed)
    elif args.workload == "hotspot":
        pairs = hotspot_pairs(graph, args.messages, seed=args.seed)
    else:
        pairs = permutation_traffic(graph, seed=args.seed)
    retry = _retry_policy(args)
    tracer = _open_tracer(args, manifest)
    sim: "EventDrivenSimulator | BatchKernel"
    if args.batch:
        from repro.simulator.kernel import BatchKernel

        if args.repair_rate is not None:
            print("--batch installs repairs instantly; --repair-rate "
                  "needs the scalar engine", file=sys.stderr)
            return 2
        sim = BatchKernel(
            scheme,
            retry_policy=retry,
            retry_seed=args.seed,
            tracer=tracer,
            churn_schedule=schedule,
            churn_repair_delay=args.repair_delay,
            incremental_repair=not args.full_rebuild,
        )
    else:
        sim = EventDrivenSimulator(
            scheme,
            retry_policy=retry,
            retry_seed=args.seed,
            tracer=tracer,
            churn_schedule=schedule,
            churn_repair_delay=args.repair_delay,
            churn_repair_rate=args.repair_rate,
            incremental_repair=not args.full_rebuild,
        )
    clock = _random.Random(args.seed)
    for source, destination in pairs:
        sim.inject(source, destination, clock.uniform(0.0, args.horizon * 0.8))
    records = sim.run()
    if tracer is not None:
        tracer.close()
    # Stretch is judged against the post-churn topology: that is the graph
    # the converged scheme routes on.
    metrics = summarize(records, sim.network.live_graph)
    churn_stats = sim.churn_summary()
    manifest = manifest.completed(_time.perf_counter() - started)
    _write_metrics_out(args, manifest)
    if args.json:
        payload = json.loads(_metrics_json(args, metrics, records, manifest))
        payload["churn"] = {
            "scheduled": len(schedule),
            "kinds": args.kinds,
            "repair_delay": args.repair_delay,
            "repair_rate": args.repair_rate,
            "incremental": not args.full_rebuild,
            **churn_stats,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    mode = "full-rebuild" if args.full_rebuild else "incremental"
    print(f"{scheme.scheme_name} on G({args.n}, 1/2) under live topology "
          f"churn ({len(schedule)} mutations, horizon {args.horizon:g}, "
          f"{mode} repair)")
    times = churn_stats["convergence_times"]
    assert isinstance(times, list)
    converged = "yes" if churn_stats["converged"] else "NO"
    print(f"churn lifecycle: {churn_stats['mutations']} applied, "
          f"{churn_stats['repairs']} repairs, converged: {converged}")
    if times:
        print(f"  convergence time: mean {sum(times) / len(times):.2f}, "
              f"max {max(times):.2f}")
    print(f"  tables rebuilt: {churn_stats['tables_rebuilt']} "
          f"(reused {churn_stats['tables_reused']})  "
          f"bits rewritten: {churn_stats['bits_rewritten']} "
          f"of {churn_stats['bits_full']} a full rebuild would touch")
    print(f"messages: {metrics.messages}  delivered: {metrics.delivered} "
          f"({metrics.delivered_fraction:.1%})  "
          f"stale deliveries: {metrics.stale_deliveries}")
    if metrics.delivered:
        print(f"mean hops: {metrics.mean_hops:.2f}  "
              f"mean stretch: {metrics.mean_stretch:.2f}  "
              f"max stretch: {metrics.max_stretch:.2f}")
    print(f"retries: {metrics.total_retries} total, "
          f"{metrics.mean_retries:.2f} per message")
    for reason, count in sorted(metrics.drop_reasons.items()):
        print(f"  dropped ({count}): {reason.value}")
    return 0


def _cmd_codec(args: argparse.Namespace) -> int:
    graph = _make_graph(args.graph, args.n, args.seed)
    codec = _CODECS[args.name]()
    try:
        report = evaluate_codec(codec, graph)
    except ReproError as exc:
        print(f"{codec.name}: inapplicable — {exc}")
        return 1
    print(f"{codec.name} on {args.graph} graph (n={args.n}):")
    print(f"  baseline E(G): {report.baseline_bits} bits")
    print(f"  encoded      : {report.encoded_bits} bits")
    print(f"  savings      : {report.savings} bits")
    print(f"  round trip   : {report.round_trip_ok}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis import compare_schemes, format_comparison

    graph = gnp_random_graph(args.n, seed=args.seed)
    rows = compare_schemes(graph, sample_pairs=args.pairs, seed=args.seed)
    print(f"G({args.n}, 1/2) seed {args.seed}: {graph.edge_count} edges\n")
    print(format_comparison(rows))
    return 0


def _cmd_bootstrap(args: argparse.Namespace) -> int:
    from repro.simulator import simulate_dissemination

    model = args.model or _default_model(args.scheme)
    graph = gnp_random_graph(args.n, seed=args.seed)
    scheme = build_scheme(args.scheme, graph, model)
    result = simulate_dissemination(
        scheme, root=args.root, link_rate_bits=args.rate
    )
    print(f"{args.scheme} on G({args.n}, 1/2): "
          f"{result.total_payload_bits} payload bits")
    print(f"  control traffic : {result.total_bit_hops} bit-hops")
    print(f"  boot makespan   : {result.makespan:.2f} time units")
    print(f"  mean install    : {result.mean_install_time:.2f} time units")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    results_dir = pathlib.Path(args.results_dir)
    if not results_dir.is_dir():
        print(
            f"error: {results_dir} not found — run "
            f"`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 2
    blocks = []
    for path in sorted(results_dir.glob("*.txt")):
        title = path.stem.replace("_", " ")
        blocks.append(f"## {title}\n\n```\n{path.read_text().rstrip()}\n```")
    if not blocks:
        print(f"error: no result files in {results_dir}", file=sys.stderr)
        return 2
    text = (
        "# Reproduction report — Optimal Routing Tables (PODC 1996)\n\n"
        + "\n\n".join(blocks)
        + "\n"
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"report written to {args.output} ({len(blocks)} experiments)")
    else:
        print(text)
    return 0


def _changed_python_files(ref: str) -> Set[str]:
    """Absolute paths of ``.py`` files changed since ``ref`` (tracked diff
    plus untracked files), for ``lint --diff``."""
    import os

    changed: Set[str] = set()
    diff = subprocess.run(
        ["git", "diff", "--name-only", ref, "--", "*.py"],
        capture_output=True,
        text=True,
        check=True,
    )
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard", "--", "*.py"],
        capture_output=True,
        text=True,
        check=True,
    )
    root = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True,
        text=True,
        check=True,
    ).stdout.strip()
    for blob in (diff.stdout, untracked.stdout):
        for line in blob.splitlines():
            line = line.strip()
            if line:
                changed.add(os.path.abspath(os.path.join(root, line)))
    return changed


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the linter is a dev-facing subsystem and the other
    # subcommands should not pay for loading the rule registry.
    from repro.analysis.lint import (
        Severity,
        all_rules,
        describe_rules,
        lint_paths,
        render_json,
        render_text,
        rule_by_id,
    )

    if args.list_rules:
        print(describe_rules())
        return 0
    if args.select:
        try:
            active = tuple(
                rule_by_id(rule_id.strip())
                for rule_id in args.select.split(",")
                if rule_id.strip()
            )
        except KeyError as exc:
            known = ", ".join(rule.rule_id for rule in all_rules())
            print(
                f"error: unknown rule id {exc.args[0]!r}; known: {known}",
                file=sys.stderr,
            )
            return 2
    else:
        active = None
    flow = not args.no_flow
    if args.dump_callgraph and not flow:
        print(
            "error: --dump-callgraph needs the flow pass; drop --no-flow",
            file=sys.stderr,
        )
        return 2
    restrict_to = None
    if args.diff is not None:
        try:
            restrict_to = _changed_python_files(args.diff)
        except (OSError, subprocess.CalledProcessError) as exc:
            print(
                f"error: cannot resolve --diff {args.diff!r}: {exc}",
                file=sys.stderr,
            )
            return 2
    result = lint_paths(
        args.paths, active_rules=active, flow=flow, restrict_to=restrict_to
    )
    if result.files_checked == 0:
        print(
            "error: no Python files found under: "
            + " ".join(args.paths),
            file=sys.stderr,
        )
        return 2
    if args.dump_callgraph:
        if result.callgraph is None:
            print(
                "error: flow pass produced no call graph (no flow rules "
                "selected?)",
                file=sys.stderr,
            )
            return 2
        with open(args.dump_callgraph, "w", encoding="utf-8") as handle:
            json.dump(result.callgraph, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(render_json(result))
            handle.write("\n")
    if any(f.rule_id == "R000" for f in result.findings):
        # Unreadable or unparseable input: a structured diagnostic, and a
        # usage-style exit code — the run could not honestly complete.
        return 2
    worst = result.worst_severity()
    if worst is None or args.fail_on == "never":
        return 0
    if args.fail_on == "error" and worst is not Severity.ERROR:
        return 0
    return 1


def _cmd_bench_report(args: argparse.Namespace) -> int:
    started = _time.perf_counter()
    try:
        baseline = load_bench_result(args.baseline)
        fresh = load_bench_result(args.fresh)
    except FileNotFoundError as exc:
        print(f"error: bench artifact not found: {exc.filename}",
              file=sys.stderr)
        return 2
    report = compare_runs(
        baseline, fresh, default_tolerance=args.threshold
    )
    manifest = _run_manifest(args).completed(_time.perf_counter() - started)
    payload = {"manifest": manifest.to_dict(), **report.to_dict()}
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(_format_bench_diff(report))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report.ok() else 1


def _cmd_trace_report(args: argparse.Namespace) -> int:
    try:
        events = read_trace(args.trace)
    except FileNotFoundError:
        print(f"error: trace file {args.trace} not found", file=sys.stderr)
        return 2
    except (TraceDecodeError, ValueError, TypeError) as exc:
        print(f"error: malformed trace {args.trace}: {exc}", file=sys.stderr)
        return 2
    summary = summarize_trace(events, top=args.top)
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_trace_report(summary))
    return 0


def _store_put(args: argparse.Namespace) -> int:
    started = _time.perf_counter()
    model = args.model or _default_model(args.scheme)
    graph = gnp_random_graph(args.n, seed=args.seed)
    manifest = _run_manifest(args, graph)
    scheme = build_scheme(args.scheme, graph, model)
    blob = pack_scheme(scheme)
    name = args.name or args.scheme
    tracer = _open_tracer(args, manifest)
    store = SchemeStore.open(
        LocalFilesystem(args.dir),
        snapshot_every=args.snapshot_every,
        tracer=tracer,
    )
    manifest = manifest.completed(_time.perf_counter() - started)
    if args.hot_swap:
        generation = store.hot_swap(name, blob, manifest=manifest.to_dict())
        action = "hot-swapped"
    else:
        generation = store.put(name, blob, manifest=manifest.to_dict())
        action = "stored"
    if tracer is not None:
        tracer.close()
    _write_metrics_out(args, manifest)
    print(f"{action} {name}@{generation} ({8 * len(blob)} bits, "
          f"active generation {store.active_generation(name)})")
    return 0


def _store_get(args: argparse.Namespace) -> int:
    store = SchemeStore.open(LocalFilesystem(args.dir))
    entry = store.get(args.name, args.generation)
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(entry.blob)
        print(f"{entry.name}@{entry.generation} ({entry.blob_bits} bits) "
              f"written to {args.output}")
    else:
        print(f"{entry.name}@{entry.generation}: {entry.blob_bits} bits, "
              f"manifest {'present' if entry.manifest else 'absent'}")
    return 0


def _store_list(args: argparse.Namespace) -> int:
    store = SchemeStore.open(LocalFilesystem(args.dir))
    rows = store.list()
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if not rows:
        print("store is empty")
        return 0
    for row in rows:
        generations = ", ".join(map(str, row["generations"]))
        print(f"{row['name']}: active @{row['active_generation']} "
              f"({row['active_blob_bits']} bits), generations [{generations}]")
    return 0


def _store_verify(args: argparse.Namespace) -> int:
    # Read-only audit: recover WITHOUT self-healing, so damage on disk is
    # reported instead of silently compacted away before we look at it.
    store = SchemeStore(LocalFilesystem(args.dir))
    store.recover(heal=False)
    report = store.verify()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    elif report["ok"]:
        print(f"store verified clean "
              f"({report['recovery']['records_replayed']} records, "
              f"{len(store.list())} schemes)")
    else:
        print(f"store verification FAILED ({len(report['problems'])} problems):")
        for problem in report["problems"]:
            print(f"  - {problem}")
    return 0 if report["ok"] else 1


def _store_recover(args: argparse.Namespace) -> int:
    manifest = _run_manifest(args)
    tracer = _open_tracer(args, manifest)
    store = SchemeStore.open(LocalFilesystem(args.dir), tracer=tracer)
    report = store.last_recovery
    assert report is not None  # open() always recovers
    if tracer is not None:
        tracer.close()
    _write_metrics_out(args, manifest)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(
                {"manifest": manifest.to_dict(), "recovery": report.to_dict()},
                handle, indent=2, sort_keys=True,
            )
            handle.write("\n")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"recovered from {report.source}: "
              f"{report.records_applied}/{report.records_replayed} records "
              f"applied, {len(report.quarantined)} quarantined, "
              f"{report.torn_tail_bytes} torn-tail bytes, "
              f"{len(report.snapshots_rejected)} snapshots rejected")
    # Degraded-but-recovered is still success: the catalog is consistent.
    return 0


def _store_compact(args: argparse.Namespace) -> int:
    store = SchemeStore.open(LocalFilesystem(args.dir))
    target = store.compact()
    print(f"catalog compacted into {target} "
          f"({store.catalog.total_entries} entries)")
    return 0


_STORE_COMMANDS = {
    "put": _store_put,
    "get": _store_get,
    "list": _store_list,
    "verify": _store_verify,
    "recover": _store_recover,
    "compact": _store_compact,
}


def _cmd_store(args: argparse.Namespace) -> int:
    return _STORE_COMMANDS[args.store_command](args)


_COMMANDS = {
    "schemes": _cmd_schemes,
    "certify": _cmd_certify,
    "build": _cmd_build,
    "route": _cmd_route,
    "verify": _cmd_verify,
    "simulate": _cmd_simulate,
    "simulate-chaos": _cmd_simulate_chaos,
    "simulate-corruption": _cmd_simulate_corruption,
    "simulate-churn": _cmd_simulate_churn,
    "codec": _cmd_codec,
    "bootstrap": _cmd_bootstrap,
    "compare": _cmd_compare,
    "report": _cmd_report,
    "lint": _cmd_lint,
    "bench-report": _cmd_bench_report,
    "trace-report": _cmd_trace_report,
    "store": _cmd_store,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
