"""Theorem 1 — shortest-path routing in ``6n`` bits per node (models IB ∨ II).

The construction for node ``u`` on a Kolmogorov random graph (diameter 2,
Lemma 2; logarithmic covers, Lemma 3):

* ``A₀`` — the non-neighbours of ``u``;
* ``v₁, ..., v_m`` — a covering sequence of neighbours (the *least* ones in
  the paper; Claim 1 shows each covers ≥ 1/3 of what remains);
* **table 1** — one entry per ``w ∈ A₀`` in increasing order: the index
  ``t`` of the first covering neighbour, in unary (``1^t 0``), if ``w`` was
  covered while the remainder was still large; a bare ``0`` otherwise;
* **table 2** — for the at most ``n / log n`` late-covered nodes, the index
  ``t`` in fixed ``⌈log₂ m⌉``-width binary.

Routing from ``u`` to ``w``: deliver directly if ``w`` is a neighbour,
otherwise forward to ``v_t`` — a shortest (length-2) path, stretch 1.

Under model IB the scheme additionally charges the ``n - 1``-bit
interconnection vector per node and fixes the identity port convention
(i-th least neighbour on port i); under model II neighbours are free.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import GraphError, RoutingError, SchemeBuildError
from repro.graphs import GraphContext, LabeledGraph, covering_sequence
from repro.models import RoutingModel
from repro.observability import profile_section
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme

__all__ = [
    "TwoLevelScheme",
    "TwoLevelFunction",
    "decode_two_level_function",
    "split_threshold",
]


def split_threshold(n: int, rule: str) -> float:
    """The remainder size below which entries move to the binary table.

    ``rule='log'`` is the paper's refined choice ``n / log n`` (the ``3n``
    remark); ``rule='loglog'`` is the choice used in the main ``6n``
    analysis, ``n / log log n``.
    """
    if rule == "log":
        return n / max(math.log2(max(n, 2)), 1.0)
    if rule == "loglog":
        return n / max(math.log2(max(math.log2(max(n, 4)), 2.0)), 1.0)
    raise SchemeBuildError(f"unknown split rule {rule!r}")


class TwoLevelFunction(LocalRoutingFunction):
    """Decoded Theorem 1 function: neighbour-direct plus an intermediate map."""

    def __init__(
        self,
        node: int,
        neighbors: Tuple[int, ...],
        intermediate: Dict[int, int],
    ) -> None:
        super().__init__(node)
        self._neighbor_set = frozenset(neighbors)
        self._intermediate = dict(intermediate)

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        dest = int(destination)
        if dest in self._neighbor_set:
            return HopDecision(dest)
        try:
            return HopDecision(self._intermediate[dest])
        except KeyError as exc:
            raise RoutingError(
                f"node {self.node}: no intermediate entry for {dest}"
            ) from exc

    def intermediate_for(self, destination: int) -> int:
        """The covering neighbour used for a non-adjacent destination."""
        return self._intermediate[destination]


class TwoLevelScheme(RoutingScheme):
    """The Theorem 1 construction (shortest path, stretch 1)."""

    scheme_name = "thm1-two-level"

    def __init__(
        self,
        graph: LabeledGraph,
        model: RoutingModel,
        strategy: str = "least",
        split_rule: str = "log",
        ctx: Optional[GraphContext] = None,
    ) -> None:
        super().__init__(graph, model, ctx=ctx)
        if not (model.neighbors_known or model.ports_reassignable):
            raise SchemeBuildError(
                f"Theorem 1 requires model IB or II, got {model}"
            )
        if strategy not in ("least", "greedy"):
            raise SchemeBuildError(f"unknown covering strategy {strategy!r}")
        self._strategy = strategy
        self._split_rule = split_rule
        self._threshold = split_threshold(graph.n, split_rule)
        self._plans: Dict[int, _NodePlan] = {}
        with profile_section("build.thm1-two-level.plan"):
            for u in graph.nodes:
                self._plans[u] = self._plan_node(u)

    # -- construction ---------------------------------------------------------

    def _plan_node(self, u: int) -> "_NodePlan":
        graph = self._graph
        try:
            sequence, newly_covered = covering_sequence(graph, u, self._strategy)
        except GraphError as exc:
            raise SchemeBuildError(
                f"Theorem 1 construction failed at node {u}: {exc}"
            ) from exc
        first_cover: Dict[int, int] = {}
        for t, covered in enumerate(newly_covered, start=1):
            for w in covered:
                first_cover[w] = t
        # l = number of steps taken while the remainder was still above the
        # threshold; entries first covered at t <= l go to the unary table.
        remainder = len(graph.non_neighbors(u))
        cutoff = 0
        for t, covered in enumerate(newly_covered, start=1):
            if remainder <= self._threshold:
                break
            cutoff = t
            remainder -= len(covered)
        return _NodePlan(
            sequence=tuple(sequence),
            first_cover=first_cover,
            cutoff=cutoff,
        )

    def covering_sequence_of(self, u: int) -> Tuple[int, ...]:
        """The covering neighbours ``v₁..v_m`` chosen for ``u``."""
        return self._plans[u].sequence

    # -- RoutingScheme interface ------------------------------------------------

    def _build_function(self, u: int) -> TwoLevelFunction:
        plan = self._plans[u]
        intermediate = {
            w: plan.sequence[t - 1] for w, t in plan.first_cover.items()
        }
        return TwoLevelFunction(u, self._graph.neighbors(u), intermediate)

    def encode_function(self, u: int) -> BitArray:
        plan = self._plans[u]
        graph = self._graph
        writer = BitWriter()
        writer.write_bit(0 if self._strategy == "least" else 1)
        m = len(plan.sequence)
        writer.write_gamma(m)
        if self._strategy == "greedy":
            # Greedy sequences are not derivable from the neighbour order,
            # so their identities are stored as neighbour-list indices.
            position = {nb: i for i, nb in enumerate(graph.neighbors(u))}
            for v in plan.sequence:
                writer.write_gamma(position[v])
        # Table 1: unary first-cover indices (0 marks a table-2 entry).
        overflow: List[int] = []
        for w in graph.non_neighbors(u):
            t = plan.first_cover[w]
            if t <= plan.cutoff:
                writer.write_unary(t)
            else:
                writer.write_unary(0)
                overflow.append(t)
        # Table 2: fixed-width binary indices for the late-covered nodes.
        width = max(m - 1, 0).bit_length()
        for t in overflow:
            writer.write_uint(t - 1, width)
        return writer.getvalue()

    def decode_function(self, u: int, bits: BitArray) -> TwoLevelFunction:
        return decode_two_level_function(
            u, self._graph.n, self._graph.neighbors(u), bits
        )

    def aux_bits(self, u: int) -> int:
        """Under IB the interconnection vector (``n - 1`` bits) is charged."""
        if self._model.neighbors_known:
            return 0
        return self._graph.n - 1

    def stretch_bound(self) -> float:
        return 1.0


def decode_two_level_function(
    u: int, n: int, neighbors: Tuple[int, ...], bits: BitArray
) -> TwoLevelFunction:
    """Rebuild a Theorem 1 function from its bits and free knowledge only.

    The decoder uses exactly what the model grants: the node's own label,
    ``n``, and its sorted neighbour list (known under II; derivable from the
    stored interconnection vector under IB).  The Theorem 6 codec reuses
    this entry point, since its proof reconstructs ``F(u)`` from an
    embedded description under the same side information.
    """
    neighbor_set = frozenset(neighbors)
    non_neighbors = [w for w in range(1, n + 1) if w != u and w not in neighbor_set]
    reader = BitReader(bits)
    strategy_bit = reader.read_bit()
    m = reader.read_gamma()
    if strategy_bit:
        sequence: Tuple[int, ...] = tuple(
            neighbors[reader.read_gamma()] for _ in range(m)
        )
    else:
        sequence = neighbors[:m]
    pending: List[int] = []
    intermediate: Dict[int, int] = {}
    for w in non_neighbors:
        t = reader.read_unary()
        if t == 0:
            pending.append(w)
        else:
            intermediate[w] = sequence[t - 1]
    width = max(m - 1, 0).bit_length()
    for w in pending:
        intermediate[w] = sequence[reader.read_uint(width)]
    return TwoLevelFunction(u, neighbors, intermediate)


class _NodePlan:
    """Per-node construction artefacts (internal)."""

    __slots__ = ("sequence", "first_cover", "cutoff")

    def __init__(
        self,
        sequence: Tuple[int, ...],
        first_cover: Dict[int, int],
        cutoff: int,
    ) -> None:
        self.sequence = sequence
        self.first_cover = first_cover
        self.cutoff = cutoff
