"""Theorem 2 — shortest paths with O(1)-bit functions and rich labels (II ∧ γ).

When nodes may be arbitrarily relabelled (and label bits are charged), the
whole routing table can migrate into the destination's *address*: relabel
every node ``v`` as the pair

    ``(v, f(v))``  where ``f(v)`` = the least covering neighbours of ``v``

(Lemma 3: ``|f(v)| ≤ (c+3) log n`` on random graphs).  Routing from ``u`` to
a destination address ``(v, f(v))`` is then uniform — deliver if ``v`` is a
neighbour, else forward to any neighbour whose original label appears in
``f(v)`` — so the local function itself needs O(1) bits, and the total cost
is the ``(1 + (c+3) log n) log n`` bits of each label:
``O(n log² n)`` overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import GraphError, RoutingError, SchemeBuildError
from repro.graphs import GraphContext, LabeledGraph, covering_sequence
from repro.models import RoutingModel, minimal_label_bits
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme

__all__ = ["NeighborLabelScheme", "NodeAddress", "NeighborLabelFunction"]


@dataclass(frozen=True)
class NodeAddress:
    """The complex label of model γ: original label plus covering neighbours."""

    original: int
    cover: Tuple[int, ...]

    def bit_length(self, n: int) -> int:
        """Charged size: ``(1 + |cover|) ⌈log(n+1)⌉`` bits."""
        return (1 + len(self.cover)) * minimal_label_bits(n)


class NeighborLabelFunction(LocalRoutingFunction):
    """The uniform O(1) routing rule of Theorem 2."""

    def __init__(self, node: int, neighbors: Tuple[int, ...]) -> None:
        super().__init__(node)
        self._neighbor_set = frozenset(neighbors)

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        if not isinstance(destination, NodeAddress):
            raise RoutingError(
                f"node {self.node}: Theorem 2 routing needs a NodeAddress, "
                f"got {destination!r}"
            )
        if destination.original in self._neighbor_set:
            return HopDecision(destination.original)
        for candidate in destination.cover:
            if candidate in self._neighbor_set:
                return HopDecision(candidate)
        raise RoutingError(
            f"node {self.node}: no neighbour covers destination "
            f"{destination.original}"
        )


class NeighborLabelScheme(RoutingScheme):
    """The Theorem 2 construction (shortest path, labels carry the tables)."""

    scheme_name = "thm2-neighbor-labels"

    def __init__(
        self,
        graph: LabeledGraph,
        model: RoutingModel,
        ctx: Optional[GraphContext] = None,
    ) -> None:
        super().__init__(graph, model, ctx=ctx)
        model.require(neighbors_known=True, relabeling=True)
        if not model.labels_charged:
            raise SchemeBuildError(
                f"Theorem 2 needs arbitrary (charged) labels: model γ, got {model}"
            )
        self._addresses = {}
        for v in graph.nodes:
            try:
                sequence, _ = covering_sequence(graph, v, "least")
            except GraphError as exc:
                raise SchemeBuildError(
                    f"Theorem 2 construction failed at node {v}: {exc}"
                ) from exc
            self._addresses[v] = NodeAddress(v, tuple(sequence))

    # -- addressing -------------------------------------------------------------

    def address_of(self, node: int) -> NodeAddress:
        return self._addresses[node]

    def node_of_address(self, address: Hashable) -> int:
        if isinstance(address, NodeAddress):
            return address.original
        return super().node_of_address(address)

    # -- RoutingScheme interface --------------------------------------------------

    def _build_function(self, u: int) -> NeighborLabelFunction:
        return NeighborLabelFunction(u, self._graph.neighbors(u))

    def encode_function(self, u: int) -> BitArray:
        """One marker bit: the function is uniform across all nodes (O(1))."""
        writer = BitWriter()
        writer.write_bit(1)
        return writer.getvalue()

    def decode_function(self, u: int, bits: BitArray) -> NeighborLabelFunction:
        reader = BitReader(bits)
        if reader.read_bit() != 1:
            raise RoutingError("corrupt Theorem 2 function encoding")
        return NeighborLabelFunction(u, self._graph.neighbors(u))

    def label_bits(self, u: int) -> int:
        """Model γ charges every bit of the complex label."""
        return self._addresses[u].bit_length(self._graph.n)

    def stretch_bound(self) -> float:
        return 1.0
