"""Interval routing — the related-work scheme of Flammini/van Leeuwen [1].

An extension to the paper's core constructions: nodes are renumbered by a
DFS traversal of a spanning tree (this needs relabelling, so models β/γ),
and each node stores one DFS-number interval per tree edge.  Messages
follow the unique tree path: downward when the destination falls in a
child's subtree interval, upward otherwise.

On trees this is exact shortest-path routing with ``O(d log n)`` bits per
node; on general graphs it routes along the spanning tree and the measured
stretch is whatever the tree imposes (reported by the benches, contrasting
with the paper's Theorem 3–5 trade-offs).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import GraphContext, LabeledGraph
from repro.models import RoutingModel, minimal_label_bits
from repro.observability import profile_section
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme

__all__ = ["IntervalRoutingScheme", "IntervalFunction"]


class IntervalFunction(LocalRoutingFunction):
    """Per-node interval table over tree edges."""

    def __init__(
        self,
        node: int,
        own_number: int,
        child_intervals: List[Tuple[int, Tuple[int, int]]],
        parent: Optional[int],
    ) -> None:
        super().__init__(node)
        self._own = own_number
        self._children = list(child_intervals)
        self._parent = parent

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        number = int(destination)
        if number == self._own:
            raise RoutingError(f"node {self.node}: message already delivered")
        for child, (lo, hi) in self._children:
            if lo <= number <= hi:
                return HopDecision(child)
        if self._parent is None:
            raise RoutingError(
                f"root {self.node}: destination number {number} outside all "
                f"subtree intervals"
            )
        return HopDecision(self._parent)


class IntervalRoutingScheme(RoutingScheme):
    """DFS-numbered interval routing over a spanning tree."""

    scheme_name = "interval"

    def __init__(
        self,
        graph: LabeledGraph,
        model: RoutingModel,
        root: int = 1,
        ctx: Optional[GraphContext] = None,
    ) -> None:
        super().__init__(graph, model, ctx=ctx)
        model.require(relabeling=True)
        if not graph.is_connected():
            raise SchemeBuildError("interval routing requires a connected graph")
        self._root = root
        self._parent: Dict[int, Optional[int]] = {root: None}
        self._children: Dict[int, List[int]] = {u: [] for u in graph.nodes}
        self._dfs_number: Dict[int, int] = {}
        self._subtree_end: Dict[int, int] = {}
        with profile_section("build.interval.dfs"):
            self._run_dfs(root)
        self._node_of_number = {
            number: node for node, number in self._dfs_number.items()
        }
        self._is_tree = graph.edge_count == graph.n - 1
        self._depth: Dict[int, int] = {root: 0}
        for u in self._dfs_order:
            for child in self._children[u]:
                self._depth[child] = self._depth[u] + 1

    def _run_dfs(self, root: int) -> None:
        """Iterative DFS assigning preorder numbers and subtree extents."""
        graph = self._graph
        counter = 0
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(root, False)]
        seen = {root}
        while stack:
            node, processed = stack.pop()
            if processed:
                self._subtree_end[node] = counter
                continue
            counter += 1
            self._dfs_number[node] = counter
            order.append(node)
            stack.append((node, True))
            for neighbor in reversed(graph.neighbors(node)):
                if neighbor not in seen:
                    seen.add(neighbor)
                    self._parent[neighbor] = node
                    self._children[node].append(neighbor)
                    stack.append((neighbor, False))
        self._dfs_order = order

    # -- addressing ---------------------------------------------------------

    def address_of(self, node: int) -> int:
        """Destination addresses are DFS preorder numbers (model β labels)."""
        return self._dfs_number[node]

    def node_of_address(self, address: Hashable) -> int:
        try:
            return self._node_of_number[int(address)]
        except (KeyError, TypeError, ValueError) as exc:
            raise RoutingError(f"invalid DFS address {address!r}") from exc

    def tree_parent(self, u: int) -> Optional[int]:
        """Parent of ``u`` in the spanning tree (None at the root)."""
        return self._parent[u]

    def tree_depth(self, u: int) -> int:
        """Depth of ``u`` below the root."""
        return self._depth[u]

    # -- RoutingScheme interface ------------------------------------------------

    def _interval_of(self, child: int) -> Tuple[int, int]:
        return (self._dfs_number[child], self._subtree_end[child])

    def _build_function(self, u: int) -> IntervalFunction:
        return IntervalFunction(
            u,
            self._dfs_number[u],
            [(child, self._interval_of(child)) for child in self._children[u]],
            self._parent[u],
        )

    def encode_function(self, u: int) -> BitArray:
        """Child count, then per child: (neighbour index, interval) triple."""
        graph = self._graph
        width = minimal_label_bits(graph.n)
        position = {nb: i for i, nb in enumerate(graph.neighbors(u))}
        writer = BitWriter()
        writer.write_gamma(len(self._children[u]))
        for child in self._children[u]:
            lo, hi = self._interval_of(child)
            writer.write_gamma(position[child])
            writer.write_uint(lo, width)
            writer.write_uint(hi, width)
        parent = self._parent[u]
        if parent is not None:
            writer.write_gamma(position[parent])
        return writer.getvalue()

    def decode_function(self, u: int, bits: BitArray) -> IntervalFunction:
        graph = self._graph
        width = minimal_label_bits(graph.n)
        neighbors = graph.neighbors(u)
        reader = BitReader(bits)
        child_count = reader.read_gamma()
        children = []
        for _ in range(child_count):
            child = neighbors[reader.read_gamma()]
            lo = reader.read_uint(width)
            hi = reader.read_uint(width)
            children.append((child, (lo, hi)))
        parent = None
        if u != self._root:
            parent = neighbors[reader.read_gamma()]
        return IntervalFunction(u, self._dfs_number[u], children, parent)

    def stretch_bound(self) -> float:
        """Exact on trees; bounded by twice the tree depth otherwise."""
        if self._is_tree:
            return 1.0
        max_depth = max(self._depth.values(), default=0)
        return float(max(2 * max_depth, 1))
