"""Whole-scheme serialisation: pack every local function into one blob.

A deployed routing scheme is distributed to nodes as their individual
function encodings; for storage, transport and offline diffing it is
convenient to hold the whole scheme in one self-describing byte string.
The container format is deliberately simple:

``magic | version | scheme-name' | n' | per-node prime-coded functions``

where ``x'`` is the paper's self-delimiting prime code.  Loading restores
the per-node bit strings exactly; rebuilding live functions additionally
needs the graph and model (the knowledge the paper's models grant for
free), which the caller supplies — the blob never smuggles uncharged
information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import BitstreamError, CodecError
from repro.graphs import LabeledGraph
from repro.models import RoutingModel
from repro.core.builder import build_scheme
from repro.core.scheme import RoutingScheme

__all__ = ["SchemeBlob", "pack_scheme", "unpack_blob", "restore_scheme"]

_MAGIC = 0b10110101
_VERSION = 1


@dataclass(frozen=True)
class SchemeBlob:
    """A deserialised container: name, size and per-node function bits."""

    scheme_name: str
    n: int
    functions: Dict[int, BitArray]

    @property
    def total_function_bits(self) -> int:
        """Sum of the packed routing-function lengths."""
        return sum(len(bits) for bits in self.functions.values())


def pack_scheme(scheme: RoutingScheme) -> bytes:
    """Serialise every local function of a scheme into one byte string."""
    writer = BitWriter()
    writer.write_uint(_MAGIC, 8)
    writer.write_uint(_VERSION, 8)
    name_bytes = scheme.scheme_name.encode("utf-8")
    name_bits = BitArray(
        (byte >> (7 - i)) & 1 for byte in name_bytes for i in range(8)
    )
    writer.write_prime(name_bits)
    writer.write_gamma(scheme.graph.n)
    for u in scheme.graph.nodes:
        writer.write_prime(scheme.encode_function(u))
    bits = writer.getvalue()
    # Length in bits travels in a 32-bit header so byte padding is explicit.
    header = len(bits).to_bytes(4, "big")
    return header + bits.to_bytes()


def unpack_blob(data: bytes) -> SchemeBlob:
    """Parse a packed scheme back into per-node bit strings.

    Hardened against hostile or damaged input: *every* malformed blob —
    truncated mid-field, garbage prime codes, a name that is not valid
    UTF-8 — raises :class:`CodecError` with context, never a leaked
    :class:`BitstreamError`, ``UnicodeDecodeError`` or ``IndexError``.
    """
    if len(data) < 4:
        raise CodecError("blob too short for its length header")
    bit_length = int.from_bytes(data[:4], "big")
    payload = data[4:]
    if bit_length > 8 * len(payload):
        raise CodecError("blob length header exceeds payload")
    try:
        bits = BitArray._from_packed(payload, bit_length)
        reader = BitReader(bits)
        if reader.read_uint(8) != _MAGIC:
            raise CodecError("bad magic: not a packed routing scheme")
        version = reader.read_uint(8)
        if version != _VERSION:
            raise CodecError(f"unsupported scheme blob version {version}")
        name_bits = reader.read_prime()
        if len(name_bits) % 8:
            raise CodecError("scheme name is not byte-aligned")
        name_bytes = bytes(
            name_bits[8 * i : 8 * i + 8].to_int()
            for i in range(len(name_bits) // 8)
        )
        try:
            name = name_bytes.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"scheme name is not valid UTF-8: {exc}") from exc
        n = reader.read_gamma()
        functions: Dict[int, BitArray] = {}
        for u in range(1, n + 1):
            try:
                functions[u] = reader.read_prime()
            except BitstreamError as exc:
                # A short blob must be reported as the structural lie it
                # is — declared n vs functions actually present — not as
                # a leaked bitstream exhaustion deep inside a prime code.
                raise CodecError(
                    f"blob declares n={n} but holds only {len(functions)} "
                    f"per-node functions ({exc})"
                ) from exc
        if not reader.at_end():
            raise CodecError(
                f"blob declares n={n} but {reader.remaining} bits of "
                "trailing data follow the last function"
            )
    except CodecError:
        raise
    except (BitstreamError, ValueError, OverflowError, MemoryError) as exc:
        raise CodecError(
            f"malformed scheme blob ({type(exc).__name__}: {exc})"
        ) from exc
    return SchemeBlob(scheme_name=name, n=n, functions=functions)


def restore_scheme(
    data: bytes, graph: LabeledGraph, model: RoutingModel, **params: Any
) -> RoutingScheme:
    """Rebuild a live scheme whose functions come from a packed blob.

    The scheme object is rebuilt from the graph/model (free knowledge) and
    every local function is then replaced by its decoded twin from the
    blob, so the restored scheme routes exactly as the packed one did.
    """
    blob = unpack_blob(data)
    if blob.n != graph.n:
        raise CodecError(
            f"blob is for n={blob.n} but the graph has n={graph.n}"
        )
    scheme = build_scheme(blob.scheme_name, graph, model, **params)
    for u in graph.nodes:
        scheme._function_cache[u] = scheme.decode_function(
            u, blob.functions[u]
        )
    return scheme
