"""Incremental scheme repair after live topology mutations.

When the topology changes under a running network the installed routing
tables describe a graph that no longer exists.  The brute-force fix —
rebuild the whole scheme and re-push every table — rewrites ``O(n² log n)``
bits for a mutation that touched two nodes.  This module plans the cheap
fix instead: compute which nodes a mutation actually *dirtied*, rebuild
only those tables, and carry every clean node's serialised table forward
bit-for-bit.

The dirty-set closure rule: node ``u`` is dirty iff its adjacency
changed, its own distance row changed, or a neighbour's distance row
changed.  For schemes whose per-node tables depend only on that immediate
neighbourhood (``scheme.supports_incremental_repair()`` — the full-table
and full-information schemes here), a node outside the closure provably
encodes to the same bits, so its pristine snapshot is *adopted* into the
successor graph's :class:`~repro.graphs.context.GraphContext` unchanged
(:meth:`~repro.graphs.context.GraphContext.adopt_pristine_bits`) and the
heal machinery can keep rebuilding it from knowledge without a single
re-encode.  Schemes with global structure fall back to a full rebuild.

The plan's bit accounting is what the convergence benchmark sweeps:
``bits_rewritten`` (dirty tables only) against ``bits_total`` (what a
full rebuild would have pushed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

from repro.core.scheme import RoutingScheme
from repro.errors import GraphError
from repro.graphs import LabeledGraph, get_context

__all__ = [
    "RepairPlan",
    "dirty_nodes",
    "plan_repair",
    "CHURN_TABLES_REBUILT",
    "CHURN_TABLES_REUSED",
    "CHURN_BITS_REWRITTEN",
    "CHURN_BITS_REUSED",
]

CHURN_TABLES_REBUILT = "repro_churn_tables_rebuilt_total"
"""Counter: dirty tables re-encoded by repair plans."""
CHURN_TABLES_REUSED = "repro_churn_tables_reused_total"
"""Counter: clean tables carried forward bit-identically."""
CHURN_BITS_REWRITTEN = "repro_churn_table_bits_rewritten_total"
"""Counter: table bits re-encoded and re-pushed by repair plans."""
CHURN_BITS_REUSED = "repro_churn_table_bits_reused_total"
"""Counter: table bits a full rebuild would have pushed but repair kept."""


@dataclass(frozen=True)
class RepairPlan:
    """Everything needed to converge a scheme onto a mutated graph.

    ``new_scheme`` is the converged target (built over the mutated graph,
    sharing its context); ``table_bits`` lists the dirty tables in install
    order with their encoded lengths, which is what lets the simulator
    stagger installs at a bits-per-time repair rate.
    """

    old_scheme: RoutingScheme
    new_scheme: RoutingScheme
    dirty: FrozenSet[int]
    """Nodes whose tables must be re-encoded and re-pushed."""
    clean: FrozenSet[int]
    """Nodes whose tables are provably bit-identical and carried forward."""
    bits_rewritten: int
    """Total encoded length of the dirty tables."""
    bits_reused: int
    """Total encoded length of the carried-forward clean tables."""
    table_bits: Tuple[Tuple[int, int], ...]
    """``(node, encoded_bits)`` per dirty node, in install (label) order."""

    @property
    def bits_total(self) -> int:
        """What a full rebuild would push: every node's new encoding."""
        return self.bits_rewritten + self.bits_reused

    def describe(self) -> str:
        """Human-readable summary for trace details."""
        n = len(self.dirty) + len(self.clean)
        return (
            f"{len(self.dirty)}/{n} tables dirty, "
            f"{self.bits_rewritten} of {self.bits_total} bits rewritten"
        )


def dirty_nodes(old: LabeledGraph, new: LabeledGraph) -> FrozenSet[int]:
    """The closure of nodes a topology change dirties.

    Node ``u`` is dirty iff its adjacency changed, its own distance row
    changed, or the distance row of one of its (old or new) neighbours
    changed.  This is exactly the knowledge a neighbourhood-local scheme
    reads when building F(u), so a node outside the set builds an
    identical table on both graphs.
    """
    if old.n != new.n:
        raise GraphError(
            f"churn never changes the node count ({old.n} vs {new.n})"
        )
    old_dist = get_context(old).distances()
    new_dist = get_context(new).distances()
    row_changed = (old_dist != new_dist).any(axis=1)
    dirty = set()
    for u in new.nodes:
        old_nb = old.neighbor_set(u)
        new_nb = new.neighbor_set(u)
        if old_nb != new_nb or row_changed[u - 1]:
            dirty.add(u)
            continue
        if any(row_changed[w - 1] for w in new_nb):
            dirty.add(u)
    return frozenset(dirty)


def plan_repair(
    scheme: RoutingScheme,
    new_graph: LabeledGraph,
    full: bool = False,
    extra_dirty: Iterable[int] = (),
) -> RepairPlan:
    """Plan the convergence of ``scheme`` onto ``new_graph``.

    Builds the target scheme over the mutated graph, carries every still
    valid per-node derivation and pristine table into the new graph's
    context, and returns the dirty/clean split with its bit accounting.
    ``full`` forces a full rebuild (the benchmark's control arm);
    ``extra_dirty`` adds nodes the caller knows hold non-converged tables
    (e.g. installs from a repair that a newer mutation aborted).

    Schemes that do not declare
    :meth:`~repro.core.scheme.RoutingScheme.supports_incremental_repair`
    are planned as full rebuilds regardless of ``full``.
    """
    from repro.observability import get_registry

    old_graph = scheme.graph
    old_ctx = scheme.ctx
    new_ctx = get_context(new_graph)
    if full or not scheme.supports_incremental_repair():
        dirty = frozenset(new_graph.nodes)
    else:
        dirty = dirty_nodes(old_graph, new_graph) | frozenset(
            int(u) for u in extra_dirty
        )
    new_ctx.inherit(old_ctx, dirty)
    new_scheme = scheme.rebuild(new_graph, ctx=new_ctx)
    clean = frozenset(new_graph.nodes) - dirty
    bits_reused = 0
    for u in sorted(clean):
        bits = old_ctx.pristine_bits(scheme, u)
        new_ctx.adopt_pristine_bits(new_scheme, u, bits)
        bits_reused += len(bits)
    table_bits = []
    bits_rewritten = 0
    for u in sorted(dirty):
        bits = new_ctx.pristine_bits(new_scheme, u)
        table_bits.append((u, len(bits)))
        bits_rewritten += len(bits)
    registry = get_registry()
    registry.counter(CHURN_TABLES_REBUILT).inc(len(dirty))
    registry.counter(CHURN_TABLES_REUSED).inc(len(clean))
    registry.counter(CHURN_BITS_REWRITTEN).inc(bits_rewritten)
    registry.counter(CHURN_BITS_REUSED).inc(bits_reused)
    return RepairPlan(
        old_scheme=scheme,
        new_scheme=new_scheme,
        dirty=dirty,
        clean=clean,
        bits_rewritten=bits_rewritten,
        bits_reused=bits_reused,
        table_bits=tuple(table_bits),
    )
