"""End-to-end verification of routing schemes.

A scheme is *correct* when every ordered pair of nodes is connected by the
route its local functions produce, and the ratio of route length to graph
distance never exceeds the advertised stretch.  The verifier walks real
messages through the local functions — the same code path the simulator
uses — so a scheme cannot pass by construction accident.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import RoutingError
from repro.core.scheme import RoutingScheme

__all__ = [
    "RouteTrace",
    "VerificationReport",
    "route_message",
    "verify_full_information_resilience",
    "verify_scheme",
]


@dataclass(frozen=True)
class RouteTrace:
    """The walk one message took through the network."""

    source: int
    destination: int
    path: Tuple[int, ...]
    delivered: bool

    @property
    def hops(self) -> int:
        """Number of edges traversed."""
        return len(self.path) - 1


@dataclass
class VerificationReport:
    """Aggregate results of routing every checked pair."""

    pairs_checked: int = 0
    delivered: int = 0
    max_stretch: float = 0.0
    total_stretch: float = 0.0
    worst_pair: Optional[Tuple[int, int]] = None
    violations: List[Tuple[int, int, float]] = field(default_factory=list)
    failures: List[Tuple[int, int, str]] = field(default_factory=list)

    @property
    def all_delivered(self) -> bool:
        """True when every message reached its destination."""
        return self.delivered == self.pairs_checked and not self.failures

    @property
    def mean_stretch(self) -> float:
        """Average stretch over delivered pairs."""
        if self.delivered == 0:
            return 0.0
        return self.total_stretch / self.delivered

    def ok(self) -> bool:
        """Delivered everywhere with no stretch violations."""
        return self.all_delivered and not self.violations


def route_message(
    scheme: RoutingScheme, source: int, destination: int
) -> RouteTrace:
    """Walk one message hop by hop through the scheme's local functions."""
    graph = scheme.graph
    address = scheme.address_of(destination)
    current = source
    state = None
    path = [source]
    limit = scheme.hop_limit()
    while current != destination:
        if len(path) - 1 >= limit:
            raise RoutingError(
                f"hop limit {limit} exceeded routing {source} → {destination}; "
                f"path so far {path[:12]}..."
            )
        decision = scheme.function(current).next_hop(address, state)
        next_node = decision.next_node
        if next_node != current and not graph.has_edge(current, next_node):
            raise RoutingError(
                f"node {current} forwarded to non-adjacent node {next_node}"
            )
        current = next_node
        state = decision.state
        path.append(current)
    return RouteTrace(source, destination, tuple(path), delivered=True)


def verify_full_information_resilience(
    scheme: RoutingScheme,
    sample_nodes: Optional[int] = None,
    seed: int = 0,
) -> Tuple[int, int]:
    """Verify the defining property of full-information schemes.

    "The routing function in u must, for each destination v, return *all*
    edges incident to u on shortest paths from u to v.  These schemes allow
    alternative, shortest, paths to be taken whenever an outgoing link is
    down."  Concretely, for every source and destination and every single
    failed first-hop option: either another stored option exists (and it
    lies on a shortest path), or the failed option was the *only* shortest
    edge — in which case no shortest-path scheme could do better.

    Returns ``(pairs_checked, reroutes_available)``.
    """
    from repro.core.full_information import FullInformationFunction
    from repro.errors import RoutingError as _RoutingError

    graph = scheme.graph
    dist = scheme.ctx.distances()
    nodes = list(graph.nodes)
    if sample_nodes is not None and sample_nodes < len(nodes):
        rng = random.Random(seed)
        nodes = rng.sample(nodes, sample_nodes)
    pairs_checked = 0
    reroutes = 0
    for u in nodes:
        function = scheme.function(u)
        if not isinstance(function, FullInformationFunction):
            raise _RoutingError(
                f"node {u}: not a full-information function"
            )
        for w in graph.nodes:
            if w == u:
                continue
            options = function.shortest_edges(w)
            pairs_checked += 1
            for blocked in options:
                try:
                    decision = function.next_hop_avoiding(w, [blocked])
                except _RoutingError:
                    # Only acceptable when no alternative shortest edge exists.
                    assert len(options) == 1
                    continue
                reroutes += 1
                assert decision.next_node != blocked
                assert (
                    dist[decision.next_node - 1, w - 1]
                    == dist[u - 1, w - 1] - 1
                )
    return pairs_checked, reroutes


def verify_scheme(
    scheme: RoutingScheme,
    sample_pairs: Optional[int] = None,
    seed: int = 0,
    stretch_tolerance: float = 1e-9,
) -> VerificationReport:
    """Route every ordered pair (or a random sample) and check the stretch.

    ``sample_pairs`` bounds the work on large graphs; ``None`` checks all
    ``n(n-1)`` ordered pairs.
    """
    graph = scheme.graph
    dist = scheme.ctx.distances()
    bound = scheme.stretch_bound()
    pairs = [
        (s, t)
        for s, t in itertools.permutations(graph.nodes, 2)
    ]
    if sample_pairs is not None and sample_pairs < len(pairs):
        rng = random.Random(seed)
        pairs = rng.sample(pairs, sample_pairs)
    report = VerificationReport()
    for source, destination in pairs:
        report.pairs_checked += 1
        try:
            trace = route_message(scheme, source, destination)
        except RoutingError as exc:
            report.failures.append((source, destination, str(exc)))
            continue
        report.delivered += 1
        shortest = int(dist[source - 1, destination - 1])
        stretch = trace.hops / shortest if shortest > 0 else 1.0
        report.total_stretch += stretch
        if stretch > report.max_stretch:
            report.max_stretch = stretch
            report.worst_pair = (source, destination)
        if stretch > bound + stretch_tolerance:
            report.violations.append((source, destination, stretch))
    return report
