"""Routing-scheme abstractions.

A *routing scheme* for a graph comprises a *local routing function* per
node: given a destination (and, for the stateful Theorem 5 scheme, the
message's header state) it names the neighbour to forward to.  Schemes also
serialise every local function to a real bit string — the paper's space
requirement is the measured length of those strings, never a formula.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional

from repro.bitio import BitArray
from repro.errors import RoutingError
from repro.graphs import GraphContext, LabeledGraph, get_context
from repro.models import NodeSpace, RoutingModel, SpaceReport

__all__ = ["HopDecision", "LocalRoutingFunction", "RoutingScheme", "StaticFunction"]


@dataclass(frozen=True)
class HopDecision:
    """The output of a local routing function for one message."""

    next_node: int
    """Label of the neighbour to forward to."""
    state: Any = None
    """Replacement header state carried with the message (None = stateless)."""


class LocalRoutingFunction(abc.ABC):
    """The routing function F(u) of a single node."""

    def __init__(self, node: int) -> None:
        self._node = node

    @property
    def node(self) -> int:
        """The node this function is installed on."""
        return self._node

    @abc.abstractmethod
    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        """Choose the outgoing edge for a message addressed to ``destination``.

        ``destination`` is the destination's *address* — its plain label in
        models α/β, or the scheme's complex label under model γ.  Raises
        :class:`~repro.errors.RoutingError` when the function has no entry
        (which on a correctly built scheme never happens for valid
        addresses; the paper's model γ explicitly assumes only valid labels
        are presented).
        """


class RoutingScheme(abc.ABC):
    """A full routing scheme: one local function per node, plus accounting."""

    scheme_name: str = "abstract"

    def __init__(
        self,
        graph: LabeledGraph,
        model: RoutingModel,
        ctx: Optional[GraphContext] = None,
    ) -> None:
        self._graph = graph
        self._model = model
        self._ctx = ctx if ctx is not None else get_context(graph)
        self._function_cache: Dict[int, LocalRoutingFunction] = {}

    # -- identity ------------------------------------------------------------

    @property
    def graph(self) -> LabeledGraph:
        """The static network the scheme was generated for."""
        return self._graph

    @property
    def model(self) -> RoutingModel:
        """The model the scheme was built (and is charged) under."""
        return self._model

    @property
    def ctx(self) -> GraphContext:
        """The shared derived-computation context of :attr:`graph`.

        Builders pull distances, BFS trees, port tables and degree
        statistics from here instead of recomputing them; composite
        schemes hand the same context to their inner schemes so one
        pipeline derives each object exactly once.
        """
        return self._ctx

    # -- repair (live topology churn) -----------------------------------------

    def rebuild(self, graph: LabeledGraph, ctx: Optional[GraphContext] = None) -> "RoutingScheme":
        """A same-configuration scheme over a mutated successor graph.

        The churn repair path (:mod:`repro.core.repair`) calls this after
        a topology mutation to obtain the converged target scheme.  The
        default rebuilds from the constructor with the same model; schemes
        carrying extra configuration (ports, parameters) override it.
        """
        return type(self)(graph, self._model, ctx=ctx)

    def supports_incremental_repair(self) -> bool:
        """Whether F(u) depends only on ``u``'s immediate neighbourhood.

        True means each node's table (and its encoding) is a function of
        exactly: ``u``'s adjacency, ``u``'s distance row, and the distance
        rows of ``u``'s neighbours.  Under that locality the repair layer
        can prove a node untouched by a mutation keeps bit-identical
        tables and skip re-encoding it.  Schemes with global structure
        (hubs, landmark sets, interval labellings) return False and are
        repaired by full rebuild.
        """
        return False

    # -- addressing ----------------------------------------------------------

    def address_of(self, node: int) -> Hashable:
        """The label used to address messages to ``node``.

        Plain-label schemes return the node itself; model-γ schemes return
        their complex labels.
        """
        return node

    def node_of_address(self, address: Hashable) -> int:
        """Map an address back to the node it names (for bookkeeping)."""
        if isinstance(address, int):
            return address
        raise RoutingError(f"cannot resolve address {address!r}")

    # -- routing ---------------------------------------------------------------

    def function(self, u: int) -> LocalRoutingFunction:
        """The local routing function installed at ``u`` (cached)."""
        if u not in self._function_cache:
            self._function_cache[u] = self._build_function(u)
        return self._function_cache[u]

    @abc.abstractmethod
    def _build_function(self, u: int) -> LocalRoutingFunction:
        """Construct the local function for one node."""

    # -- serialisation -----------------------------------------------------------

    @abc.abstractmethod
    def encode_function(self, u: int) -> BitArray:
        """Serialise F(u) to the bits actually charged for it."""

    @abc.abstractmethod
    def decode_function(self, u: int, bits: BitArray) -> LocalRoutingFunction:
        """Rebuild F(u) from its serialised form.

        The decoder may use exactly the knowledge the model grants for free
        (neighbour labels under II, the identity port convention under IB)
        and nothing else.
        """

    # -- accounting ----------------------------------------------------------------

    def label_bits(self, u: int) -> int:
        """Charged label bits for ``u`` (0 except under model γ)."""
        return 0

    def aux_bits(self, u: int) -> int:
        """Charged auxiliary knowledge for ``u`` (e.g. neighbour vectors)."""
        return 0

    def integrity_bits(self, u: int) -> int:
        """Checksum framing bits protecting F(u)'s encoding (0 unframed).

        Integrity wrappers override this with their per-node checksum
        width; :meth:`space_report` then charges those bits on an explicit
        line instead of smuggling them into ``routing_bits``.
        """
        return 0

    def space_report(self) -> SpaceReport:
        """Measure the scheme: every node's serialised function length.

        As a side effect the measured totals are published to the
        process-wide metrics registry (``repro_scheme_table_bits``), so a
        build run ends with per-scheme table sizes scrapable next to the
        phase timings.
        """
        from repro.observability import get_registry, profile_section

        report = SpaceReport(
            model=self._model, scheme_name=self.scheme_name, n=self._graph.n
        )
        with profile_section(f"encode.{self.scheme_name}"):
            for u in self._graph.nodes:
                encoded_bits = len(self.encode_function(u))
                checksum_bits = self.integrity_bits(u)
                report.add(
                    NodeSpace(
                        node=u,
                        routing_bits=encoded_bits - checksum_bits,
                        label_bits=self.label_bits(u),
                        aux_bits=self.aux_bits(u),
                        integrity_bits=checksum_bits,
                    )
                )
        registry = get_registry()
        labels = {"scheme": self.scheme_name, "n": self._graph.n}
        registry.gauge("repro_scheme_table_bits", **labels).set(
            report.total_bits
        )
        registry.gauge("repro_scheme_max_node_bits", **labels).set(
            report.max_node_bits
        )
        return report

    # -- guarantees -------------------------------------------------------------------

    @abc.abstractmethod
    def stretch_bound(self) -> float:
        """The stretch factor this scheme advertises."""

    def hop_limit(self) -> int:
        """Upper bound on hops before the walker declares a routing loop."""
        return 4 * self._graph.n + 8

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self._graph.n}, model={self._model}, "
            f"stretch<= {self.stretch_bound()})"
        )


class StaticFunction(LocalRoutingFunction):
    """A stateless function backed by an explicit destination → hop map."""

    def __init__(
        self,
        node: int,
        table: Dict[Hashable, int],
        default: Optional[int] = None,
    ) -> None:
        super().__init__(node)
        self._table = dict(table)
        self._default = default

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        if destination in self._table:
            return HopDecision(self._table[destination])
        if self._default is not None:
            return HopDecision(self._default)
        raise RoutingError(
            f"node {self.node}: no routing entry for destination {destination!r}"
        )

    def as_table(self) -> Dict[Hashable, int]:
        """A copy of the underlying destination → next-hop map."""
        return dict(self._table)
