"""Full-information shortest path routing (Section 1; Theorem 10).

The routing function at ``u`` must return, for each destination ``v``,
**all** edges incident to ``u`` on shortest paths from ``u`` to ``v`` —
the scheme a network runs when it wants to pick alternative shortest paths
as links go down.  Stored naively this is one ``d(u)``-bit edge bitmap per
destination, ``O(n³)`` bits in total, and Theorem 10 proves ``n³/4 - o(n³)``
bits are necessary on random graphs (see
:mod:`repro.incompressibility.theorem10` for the executable argument).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Optional, Tuple

import numpy as np

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import GraphContext, LabeledGraph
from repro.models import RoutingModel
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme

__all__ = ["FullInformationScheme", "FullInformationFunction"]


class FullInformationFunction(LocalRoutingFunction):
    """Destination → set of shortest-path neighbours."""

    def __init__(
        self,
        node: int,
        options: Dict[int, Tuple[int, ...]],
    ) -> None:
        super().__init__(node)
        self._options = {dest: tuple(hops) for dest, hops in options.items()}

    def shortest_edges(self, destination: int) -> Tuple[int, ...]:
        """All neighbours of this node lying on shortest paths to ``destination``."""
        try:
            return self._options[destination]
        except KeyError as exc:
            raise RoutingError(
                f"node {self.node}: no entry for destination {destination}"
            ) from exc

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        return HopDecision(self.shortest_edges(int(destination))[0])

    def next_hop_avoiding(
        self, destination: int, blocked: Iterable[int]
    ) -> HopDecision:
        """Route around failed incident links, still on a shortest path.

        Raises :class:`~repro.errors.RoutingError` when every shortest-path
        edge toward the destination is blocked — the situation where a
        single-path scheme would already have failed on the *first* fault.
        """
        blocked_set = set(blocked)
        for hop in self.shortest_edges(destination):
            if hop not in blocked_set:
                return HopDecision(hop)
        raise RoutingError(
            f"node {self.node}: all shortest-path edges toward "
            f"{destination} have failed"
        )


class FullInformationScheme(RoutingScheme):
    """Stores every shortest-path option: the ``O(n³)`` upper bound."""

    scheme_name = "full-information"

    def __init__(
        self,
        graph: LabeledGraph,
        model: RoutingModel,
        ctx: Optional[GraphContext] = None,
    ) -> None:
        super().__init__(graph, model, ctx=ctx)
        self._dist = self._ctx.distances()
        if (self._dist < 0).any():
            raise SchemeBuildError(
                "full-information scheme requires a connected graph"
            )
        self._options: Dict[int, Dict[int, Tuple[int, ...]]] = {
            u: self._build_options(u) for u in graph.nodes
        }

    def _build_options(self, u: int) -> Dict[int, Tuple[int, ...]]:
        graph = self._graph
        neighbors = graph.neighbors(u)
        neighbor_rows = self._dist[np.array(neighbors) - 1, :]
        own_row = self._dist[u - 1, :]
        options: Dict[int, Tuple[int, ...]] = {}
        for w in graph.nodes:
            if w == u:
                continue
            mask = neighbor_rows[:, w - 1] == own_row[w - 1] - 1
            hops = tuple(nb for nb, good in zip(neighbors, mask) if good)
            if not hops:
                raise SchemeBuildError(f"no shortest edge from {u} to {w}")
            options[w] = hops
        return options

    # -- RoutingScheme interface ------------------------------------------------

    def _build_function(self, u: int) -> FullInformationFunction:
        return FullInformationFunction(u, self._options[u])

    def encode_function(self, u: int) -> BitArray:
        """Per destination, a ``d(u)``-bit bitmap over the sorted neighbours."""
        graph = self._graph
        neighbors = graph.neighbors(u)
        writer = BitWriter()
        for w in graph.nodes:
            if w == u:
                continue
            chosen = set(self._options[u][w])
            for nb in neighbors:
                writer.write_bit(1 if nb in chosen else 0)
        return writer.getvalue()

    def decode_function(self, u: int, bits: BitArray) -> FullInformationFunction:
        graph = self._graph
        neighbors = graph.neighbors(u)
        reader = BitReader(bits)
        options: Dict[int, Tuple[int, ...]] = {}
        for w in graph.nodes:
            if w == u:
                continue
            hops = tuple(
                nb for nb in neighbors if reader.read_bit()
            )
            options[w] = hops
        return FullInformationFunction(u, options)

    def stretch_bound(self) -> float:
        return 1.0

    def supports_incremental_repair(self) -> bool:
        """Options read only N(u), row(u) and the neighbour rows.

        Note the scheme still requires the mutated graph to be connected
        (use ``keep_connected`` edge churn); node leave/join repair needs
        the full-table scheme's unreachable tolerance.
        """
        return True
