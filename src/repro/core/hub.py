"""Theorem 4 — stretch 2 with ``n log log n + 6n`` bits total (model II).

One distinguished *hub* (node 1 in the paper) stores a full Theorem 1
shortest-path function.  Every other node only remembers how to reach the
hub: neighbours of the hub route to it directly (O(1) bits), and nodes at
distance 2 store the index — among their least neighbours, ``log log n``
bits by Lemma 3 — of a neighbour adjacent to the hub.

A message is delivered directly when the target is adjacent; otherwise it
climbs to the hub (≤ 2 hops) and descends a shortest path (2 hops): at most
4 hops against a shortest distance of 2, stretch 2.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import GraphContext, LabeledGraph
from repro.models import RoutingModel
from repro.observability import profile_section
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme
from repro.core.two_level import TwoLevelScheme

__all__ = ["HubScheme", "TowardHubFunction"]


class TowardHubFunction(LocalRoutingFunction):
    """Non-hub rule: deliver to neighbours, otherwise climb toward the hub."""

    def __init__(
        self,
        node: int,
        neighbors: Tuple[int, ...],
        toward_hub: int,
    ) -> None:
        super().__init__(node)
        self._neighbor_set = frozenset(neighbors)
        if toward_hub not in self._neighbor_set:
            raise RoutingError(
                f"node {node}: hub-ward neighbour {toward_hub} is not adjacent"
            )
        self._toward_hub = toward_hub

    @property
    def toward_hub(self) -> int:
        """The neighbour this node uses to move toward the hub."""
        return self._toward_hub

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        dest = int(destination)
        if dest in self._neighbor_set:
            return HopDecision(dest)
        return HopDecision(self._toward_hub)


class HubScheme(RoutingScheme):
    """The Theorem 4 construction (stretch ≤ 2)."""

    scheme_name = "thm4-hub"

    def __init__(
        self,
        graph: LabeledGraph,
        model: RoutingModel,
        hub: int = 1,
        ctx: Optional[GraphContext] = None,
    ) -> None:
        super().__init__(graph, model, ctx=ctx)
        model.require(neighbors_known=True)
        self._hub = hub
        self._inner = TwoLevelScheme(graph, model, ctx=self._ctx)
        hub_adjacent = graph.neighbor_set(hub)
        self._hub_index: Dict[int, int] = {}
        with profile_section("build.thm4-hub.hub-index"):
            for v in graph.nodes:
                if v == hub or v in hub_adjacent:
                    continue
                neighbors = graph.neighbors(v)
                index = next(
                    (
                        i
                        for i, nb in enumerate(neighbors)
                        if nb in hub_adjacent
                    ),
                    None,
                )
                if index is None:
                    raise SchemeBuildError(
                        f"node {v} is farther than 2 hops from hub {hub}"
                    )
                self._hub_index[v] = index

    @property
    def hub(self) -> int:
        """The node storing the full shortest-path function."""
        return self._hub

    # -- RoutingScheme interface ------------------------------------------------

    def _build_function(self, u: int) -> LocalRoutingFunction:
        if u == self._hub:
            return self._inner.function(u)
        neighbors = self._graph.neighbors(u)
        if u in self._graph.neighbor_set(self._hub):
            return TowardHubFunction(u, neighbors, self._hub)
        return TowardHubFunction(
            u, neighbors, neighbors[self._hub_index[u]]
        )

    def encode_function(self, u: int) -> BitArray:
        if u == self._hub:
            return self._inner.encode_function(u)
        writer = BitWriter()
        if u in self._graph.neighbor_set(self._hub):
            writer.write_bit(1)  # adjacent: route straight to the hub
        else:
            writer.write_bit(0)
            writer.write_gamma(self._hub_index[u])
        return writer.getvalue()

    def decode_function(self, u: int, bits: BitArray) -> LocalRoutingFunction:
        if u == self._hub:
            return self._inner.decode_function(u, bits)
        reader = BitReader(bits)
        neighbors = self._graph.neighbors(u)
        if reader.read_bit():
            return TowardHubFunction(u, neighbors, self._hub)
        return TowardHubFunction(u, neighbors, neighbors[reader.read_gamma()])

    def stretch_bound(self) -> float:
        return 2.0
