"""Multi-interval routing — the compaction studied in related work [1].

Flammini, van Leeuwen and Marchetti-Spaccamela ("The complexity of interval
routing on random graphs", cited as [1]) ask how far classical routing
tables compress when each port stores *cyclic label intervals* instead of
an explicit destination list.  This scheme implements exactly that:

* build the shortest-path next-hop table (least-neighbour tie-break);
* group destinations by outgoing port;
* fuse each group into maximal cyclic intervals over the label ring
  ``1..n`` (an interval may wrap from ``n`` to ``1``);
* store, per port, its interval endpoints — ``2⌈log(n+1)⌉`` bits each.

On topologies whose labels align with the structure (cycles, chains) one
interval per port suffices and the table collapses to ``O(d log n)`` bits;
on Kolmogorov random graphs the groups shatter into ``Θ(n/d)``-ish
fragments per port and interval routing saves nothing — the observation
that motivates [1] and complements this paper's Table 1.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import GraphContext, LabeledGraph, PortAssignment
from repro.models import RoutingModel, minimal_label_bits
from repro.core.full_table import FullTableScheme
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme

__all__ = ["MultiIntervalScheme", "MultiIntervalFunction", "cyclic_intervals"]

Interval = Tuple[int, int]


def cyclic_intervals(labels: List[int], n: int) -> List[Interval]:
    """Fuse a label set into maximal cyclic intervals over ``1..n``.

    Returns inclusive ``(lo, hi)`` pairs; ``lo > hi`` denotes a wrap-around
    interval (e.g. ``(n-1, 2)`` covers ``n-1, n, 1, 2``).  The fusion is
    canonical: intervals are pairwise disjoint, non-adjacent on the ring,
    and sorted by their low endpoint.
    """
    if not labels:
        return []
    members = set(labels)
    if len(members) == n:
        return [(1, n)]
    intervals = []
    for label in sorted(members):
        predecessor = label - 1 if label > 1 else n
        if predecessor in members:
            continue  # not the start of a run
        hi = label
        while True:
            successor = hi + 1 if hi < n else 1
            if successor in members:
                hi = successor
            else:
                break
        intervals.append((label, hi))
    return intervals


def _interval_contains(interval: Interval, label: int) -> bool:
    lo, hi = interval
    if lo <= hi:
        return lo <= label <= hi
    return label >= lo or label <= hi


class MultiIntervalFunction(LocalRoutingFunction):
    """Per-port cyclic interval lists."""

    def __init__(
        self,
        node: int,
        port_intervals: Dict[int, List[Interval]],
        assignment: PortAssignment,
    ) -> None:
        super().__init__(node)
        self._port_intervals = {
            port: list(ivs) for port, ivs in port_intervals.items()
        }
        self._assignment = assignment

    def intervals_at(self, port: int) -> List[Interval]:
        """This port's interval list (empty when it routes nothing)."""
        return list(self._port_intervals.get(port, []))

    def port_for(self, destination: int) -> int:
        for port in sorted(self._port_intervals):
            for interval in self._port_intervals[port]:
                if _interval_contains(interval, destination):
                    return port
        raise RoutingError(
            f"node {self.node}: no interval covers destination {destination}"
        )

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        port = self.port_for(int(destination))
        return HopDecision(self._assignment.neighbor(self.node, port))


class MultiIntervalScheme(RoutingScheme):
    """Shortest-path routing with per-port cyclic intervals."""

    scheme_name = "multi-interval"

    def __init__(
        self,
        graph: LabeledGraph,
        model: RoutingModel,
        ports: Optional[PortAssignment] = None,
        ctx: Optional[GraphContext] = None,
    ) -> None:
        super().__init__(graph, model, ctx=ctx)
        # Reuse the full-table construction for the next-hop decisions.
        self._table = FullTableScheme(graph, model, ports=ports, ctx=self._ctx)
        self._ports = self._table.port_assignment
        self._port_intervals: Dict[int, Dict[int, List[Interval]]] = {}
        for u in graph.nodes:
            by_port: Dict[int, List[int]] = {}
            function = self._table.function(u)
            for w in graph.nodes:
                if w != u:
                    by_port.setdefault(function.port_for(w), []).append(w)
            self._port_intervals[u] = {
                port: cyclic_intervals(destinations, graph.n)
                for port, destinations in by_port.items()
            }
            self._check_partition(u)

    def _check_partition(self, u: int) -> None:
        """Every destination in exactly one interval (build-time invariant)."""
        covered = 0
        for intervals in self._port_intervals[u].values():
            for lo, hi in intervals:
                covered += (hi - lo + 1) if lo <= hi else (
                    self._graph.n - lo + 1 + hi
                )
        if covered != self._graph.n - 1:
            raise SchemeBuildError(
                f"node {u}: intervals cover {covered} labels, "
                f"expected {self._graph.n - 1}"
            )

    @property
    def port_assignment(self) -> PortAssignment:
        """The port assignment the intervals are expressed against."""
        return self._ports

    def interval_count(self, u: int) -> int:
        """Total intervals stored at ``u`` — the compaction measure of [1]."""
        return sum(len(ivs) for ivs in self._port_intervals[u].values())

    def max_intervals_per_port(self) -> int:
        """The worst port anywhere — 1 means classical interval routing."""
        return max(
            (
                len(ivs)
                for per_port in self._port_intervals.values()
                for ivs in per_port.values()
            ),
            default=0,
        )

    # -- RoutingScheme interface ------------------------------------------------

    def _build_function(self, u: int) -> MultiIntervalFunction:
        return MultiIntervalFunction(
            u, self._port_intervals[u], self._ports
        )

    def encode_function(self, u: int) -> BitArray:
        """Per port ``1..d(u)``: γ(interval count), then 2 fixed-width ends."""
        width = minimal_label_bits(self._graph.n)
        writer = BitWriter()
        for port in range(1, self._graph.degree(u) + 1):
            intervals = self._port_intervals[u].get(port, [])
            writer.write_gamma(len(intervals))
            for lo, hi in intervals:
                writer.write_uint(lo, width)
                writer.write_uint(hi, width)
        return writer.getvalue()

    def decode_function(self, u: int, bits: BitArray) -> MultiIntervalFunction:
        width = minimal_label_bits(self._graph.n)
        reader = BitReader(bits)
        port_intervals: Dict[int, List[Interval]] = {}
        for port in range(1, self._graph.degree(u) + 1):
            count = reader.read_gamma()
            if count:
                port_intervals[port] = [
                    (reader.read_uint(width), reader.read_uint(width))
                    for _ in range(count)
                ]
        return MultiIntervalFunction(u, port_intervals, self._ports)

    def stretch_bound(self) -> float:
        return 1.0
