"""The classical full routing table — the paper's trivial upper bound.

Every node stores, for every destination, the outgoing *port* of a shortest
path: ``(n - 1) ⌈log d(u)⌉ ≈ n log n`` bits per node and ``O(n² log n)``
total.  It works in every one of the nine models (ports are whatever the
network gives us, no neighbour knowledge or relabelling needed), which is
exactly why the paper uses it as the baseline that Theorem 8 shows to be
optimal under ``IA ∧ α``.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

import numpy as np

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import GraphContext, LabeledGraph, PortAssignment
from repro.models import RoutingModel
from repro.observability import profile_section
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme

__all__ = ["FullTableScheme", "PortTableFunction"]


class PortTableFunction(LocalRoutingFunction):
    """Destination → port table; the network resolves port → link."""

    def __init__(
        self, node: int, ports: Dict[int, int], assignment: PortAssignment
    ) -> None:
        super().__init__(node)
        self._ports = dict(ports)
        self._assignment = assignment

    def port_for(self, destination: int) -> int:
        """The stored port for a destination (1-based)."""
        try:
            return self._ports[destination]
        except KeyError as exc:
            raise RoutingError(
                f"node {self.node}: no table entry for destination {destination}"
            ) from exc

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        port = self.port_for(int(destination))
        return HopDecision(self._assignment.neighbor(self.node, port))


class FullTableScheme(RoutingScheme):
    """Shortest-path routing with one explicit port entry per destination."""

    scheme_name = "full-table"

    def __init__(
        self,
        graph: LabeledGraph,
        model: RoutingModel,
        ports: Optional[PortAssignment] = None,
        ctx: Optional[GraphContext] = None,
        allow_unreachable: bool = False,
    ) -> None:
        super().__init__(graph, model, ctx=ctx)
        if ports is None:
            ports = self._ctx.port_table()
        if model.ports_reassignable and not ports.is_identity():
            # A model-IB strategy would always normalise its ports first.
            ports = self._ctx.port_table()
        self._ports = ports
        with profile_section("build.full-table.distances"):
            self._dist = self._ctx.distances()
        if not allow_unreachable and (self._dist < 0).any():
            raise SchemeBuildError("full-table scheme requires a connected graph")
        with profile_section("build.full-table.tables"):
            self._tables: Dict[int, Dict[int, int]] = {
                u: self._build_table(u) for u in graph.nodes
            }

    @property
    def port_assignment(self) -> PortAssignment:
        """The port assignment the tables are expressed against."""
        return self._ports

    def _build_table(self, u: int) -> Dict[int, int]:
        """Least-neighbour-on-a-shortest-path table for one node.

        Unreachable destinations (possible only under
        ``allow_unreachable``, e.g. after a churn node-leave isolated a
        node) simply have no entry: a lookup raises
        :class:`~repro.errors.RoutingError` and the walker records a
        NO_ROUTE drop.
        """
        graph = self._graph
        neighbors = graph.neighbors(u)
        own_row = self._dist[u - 1, :]
        table: Dict[int, int] = {}
        if not neighbors:
            return table
        neighbor_rows = self._dist[np.array(neighbors) - 1, :]
        for w in graph.nodes:
            if w == u or own_row[w - 1] < 0:
                continue
            on_shortest = neighbor_rows[:, w - 1] == own_row[w - 1] - 1
            index = int(np.argmax(on_shortest))
            if not on_shortest[index]:
                raise SchemeBuildError(
                    f"no shortest-path neighbour from {u} to {w}"
                )
            table[w] = self._ports.port(u, neighbors[index])
        return table

    # -- RoutingScheme interface ----------------------------------------------

    def _build_function(self, u: int) -> PortTableFunction:
        return PortTableFunction(u, self._tables[u], self._ports)

    def entry_width(self, u: int) -> int:
        """Fixed width of one port entry at ``u``: ``⌈log₂ d(u)⌉`` bits."""
        return max(self._graph.degree(u) - 1, 0).bit_length()

    def encode_function(self, u: int) -> BitArray:
        """Fixed-width port entries, one per reachable destination, in
        destination order (``n - 1`` of them on a connected graph)."""
        width = self.entry_width(u)
        writer = BitWriter()
        own_row = self._dist[u - 1, :]
        for w in self._graph.nodes:
            if w != u and own_row[w - 1] >= 0:
                writer.write_uint(self._tables[u][w] - 1, width)
        return writer.getvalue()

    def decode_function(self, u: int, bits: BitArray) -> PortTableFunction:
        # The decoder skips the same unreachable destinations the encoder
        # skipped — reachability comes from the scheme's own distance
        # knowledge, mirroring the encode order exactly.
        width = self.entry_width(u)
        reader = BitReader(bits)
        ports = {}
        own_row = self._dist[u - 1, :]
        for w in self._graph.nodes:
            if w != u and own_row[w - 1] >= 0:
                ports[w] = reader.read_uint(width) + 1
        return PortTableFunction(u, ports, self._ports)

    def stretch_bound(self) -> float:
        return 1.0

    # -- repair (live topology churn) -----------------------------------------

    def rebuild(
        self, graph: LabeledGraph, ctx: Optional[GraphContext] = None
    ) -> "FullTableScheme":
        """Rebuild over a mutated successor graph.

        Tolerates unreachable pairs (a left node is isolated until it
        rejoins) and re-derives the identity port table for the new
        adjacency — a custom :class:`PortAssignment` cannot survive a
        topology change.
        """
        return FullTableScheme(
            graph, self._model, ctx=ctx, allow_unreachable=True
        )

    def supports_incremental_repair(self) -> bool:
        """Table entries read only N(u), row(u) and the neighbour rows."""
        return True
