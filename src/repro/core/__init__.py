"""The paper's primary contribution: compact routing-scheme constructions.

One module per construction:

========================  =========================  ==========  =================
module                    paper source               stretch     total size target
========================  =========================  ==========  =================
``full_table``            folklore baseline          1           ``O(n² log n)``
``two_level``             Theorem 1                  1           ``O(n²)``
``neighbor_labels``       Theorem 2 (model II ∧ γ)   1           ``O(n log² n)``
``centers``               Theorem 3                  1.5         ``O(n log n)``
``hub``                   Theorem 4                  2           ``O(n log log n)``
``probe``                 Theorem 5                  ``O(log n)``  ``O(n)``
``full_information``      Section 1 / Theorem 10     1 (all)     ``O(n³)``
``interval``              related work [1]           tree        ``O(n log n)``
========================  =========================  ==========  =================

Every scheme serialises its local functions to real bit strings and can
rebuild them; :mod:`~repro.core.verification` routes actual messages to
check correctness and stretch.
"""

from repro.core.builder import SCHEME_BUILDERS, available_schemes, build_scheme
from repro.core.centers import CenterScheme, RelayFunction
from repro.core.chain import ChainComparisonScheme, ComparisonFunction, chain_order
from repro.core.detour import DetourFunction, DetourState, DetourWrapper
from repro.core.full_information import (
    FullInformationFunction,
    FullInformationScheme,
)
from repro.core.full_table import FullTableScheme, PortTableFunction
from repro.core.hub import HubScheme, TowardHubFunction
from repro.core.interval import IntervalFunction, IntervalRoutingScheme
from repro.core.multi_interval import (
    MultiIntervalFunction,
    MultiIntervalScheme,
    cyclic_intervals,
)
from repro.core.neighbor_labels import (
    NeighborLabelFunction,
    NeighborLabelScheme,
    NodeAddress,
)
from repro.core.persistence import (
    SchemeBlob,
    pack_scheme,
    restore_scheme,
    unpack_blob,
)
from repro.core.probe import ProbeFunction, ProbeScheme, ProbeState
from repro.core.repair import RepairPlan, dirty_nodes, plan_repair
from repro.core.scheme import (
    HopDecision,
    LocalRoutingFunction,
    RoutingScheme,
    StaticFunction,
)
from repro.core.tree_cover import (
    TreeCoverAddress,
    TreeCoverFunction,
    TreeCoverScheme,
)
from repro.core.two_level import TwoLevelFunction, TwoLevelScheme, split_threshold
from repro.core.verification import (
    RouteTrace,
    VerificationReport,
    route_message,
    verify_full_information_resilience,
    verify_scheme,
)

__all__ = [
    "CenterScheme",
    "ChainComparisonScheme",
    "ComparisonFunction",
    "DetourFunction",
    "DetourState",
    "DetourWrapper",
    "FullInformationFunction",
    "FullInformationScheme",
    "FullTableScheme",
    "HopDecision",
    "HubScheme",
    "IntervalFunction",
    "IntervalRoutingScheme",
    "LocalRoutingFunction",
    "MultiIntervalFunction",
    "MultiIntervalScheme",
    "NeighborLabelFunction",
    "NeighborLabelScheme",
    "NodeAddress",
    "PortTableFunction",
    "ProbeFunction",
    "ProbeScheme",
    "ProbeState",
    "RelayFunction",
    "RepairPlan",
    "RouteTrace",
    "RoutingScheme",
    "SCHEME_BUILDERS",
    "SchemeBlob",
    "StaticFunction",
    "TowardHubFunction",
    "TreeCoverAddress",
    "TreeCoverFunction",
    "TreeCoverScheme",
    "TwoLevelFunction",
    "TwoLevelScheme",
    "VerificationReport",
    "available_schemes",
    "build_scheme",
    "chain_order",
    "cyclic_intervals",
    "dirty_nodes",
    "pack_scheme",
    "plan_repair",
    "restore_scheme",
    "route_message",
    "split_threshold",
    "unpack_blob",
    "verify_full_information_resilience",
    "verify_scheme",
]
