"""Scheme registry and a single entry point for building schemes by name.

Benches and examples refer to schemes by their string name (the ones used
in DESIGN.md's experiment index); :func:`build_scheme` dispatches to the
right class and surfaces the paper's model restrictions as build errors.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import SchemeBuildError
from repro.graphs import GraphContext, LabeledGraph, get_context
from repro.models import RoutingModel
from repro.observability import profile_section
from repro.core.centers import CenterScheme
from repro.core.chain import ChainComparisonScheme
from repro.core.full_information import FullInformationScheme
from repro.core.full_table import FullTableScheme
from repro.core.hub import HubScheme
from repro.core.interval import IntervalRoutingScheme
from repro.core.multi_interval import MultiIntervalScheme
from repro.core.neighbor_labels import NeighborLabelScheme
from repro.core.probe import ProbeScheme
from repro.core.scheme import RoutingScheme
from repro.core.tree_cover import TreeCoverScheme
from repro.core.two_level import TwoLevelScheme

__all__ = ["SCHEME_BUILDERS", "available_schemes", "build_scheme"]

_Builder = Callable[..., RoutingScheme]

SCHEME_BUILDERS: Dict[str, _Builder] = {
    FullTableScheme.scheme_name: FullTableScheme,
    TwoLevelScheme.scheme_name: TwoLevelScheme,
    NeighborLabelScheme.scheme_name: NeighborLabelScheme,
    CenterScheme.scheme_name: CenterScheme,
    HubScheme.scheme_name: HubScheme,
    ProbeScheme.scheme_name: ProbeScheme,
    FullInformationScheme.scheme_name: FullInformationScheme,
    IntervalRoutingScheme.scheme_name: IntervalRoutingScheme,
    ChainComparisonScheme.scheme_name: ChainComparisonScheme,
    TreeCoverScheme.scheme_name: TreeCoverScheme,
    MultiIntervalScheme.scheme_name: MultiIntervalScheme,
}


def available_schemes() -> tuple[str, ...]:
    """Names accepted by :func:`build_scheme`, in a stable order."""
    return tuple(sorted(SCHEME_BUILDERS))


def build_scheme(
    name: str,
    graph: LabeledGraph,
    model: RoutingModel,
    ctx: Optional[GraphContext] = None,
    **params: Any,
) -> RoutingScheme:
    """Build the named scheme for a graph under a model.

    ``ctx`` is the shared :class:`~repro.graphs.context.GraphContext`; by
    default the process-wide context of ``graph`` is used, so successive
    builds (and the verifier and simulator after them) reuse one set of
    derivations.  Pass an explicit context to pin several stages of a
    pipeline to the same instance.

    Raises :class:`~repro.errors.SchemeBuildError` for unknown names and
    propagates the scheme's own model/topology errors.
    """
    try:
        builder = SCHEME_BUILDERS[name]
    except KeyError as exc:
        raise SchemeBuildError(
            f"unknown scheme {name!r}; available: {', '.join(available_schemes())}"
        ) from exc
    if ctx is None:
        ctx = get_context(graph)
    with profile_section(f"build.{name}"):
        return builder(graph, model, ctx=ctx, **params)
