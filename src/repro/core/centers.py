"""Theorem 3 — stretch 1.5 with ``O(n log n)`` bits total (model II).

Pick one node ``u*`` and its covering neighbours (Lemma 3):
``B = {u*, v₁, ..., v_m}`` with ``m = O(log n)``.  Every node of the graph
is adjacent to some member of ``B`` (diameter 2), so ``B`` acts as a set of
*routing centres*: members of ``B`` store a full Theorem 1 function
(≤ ``6n`` bits); every other node stores just the label of one adjacent
centre (``⌈log(n+1)⌉`` bits) and forwards everything non-local there.

Routes take at most 3 hops where shortest paths take 2 — stretch 1.5, the
only possible value strictly between 1 and 2 on a diameter-2 graph.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import GraphContext, LabeledGraph
from repro.models import RoutingModel, minimal_label_bits
from repro.observability import profile_section
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme
from repro.core.two_level import TwoLevelScheme

__all__ = ["CenterScheme", "RelayFunction"]


class RelayFunction(LocalRoutingFunction):
    """Non-centre rule: deliver to neighbours, relay everything else."""

    def __init__(self, node: int, neighbors: Tuple[int, ...], center: int) -> None:
        super().__init__(node)
        self._neighbor_set = frozenset(neighbors)
        if center not in self._neighbor_set:
            raise RoutingError(
                f"node {node}: designated centre {center} is not adjacent"
            )
        self._center = center

    @property
    def center(self) -> int:
        """The adjacent routing centre this node relays through."""
        return self._center

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        dest = int(destination)
        if dest in self._neighbor_set:
            return HopDecision(dest)
        return HopDecision(self._center)


class CenterScheme(RoutingScheme):
    """The Theorem 3 construction (stretch ≤ 1.5)."""

    scheme_name = "thm3-centers"

    def __init__(
        self,
        graph: LabeledGraph,
        model: RoutingModel,
        anchor: int = 1,
        ctx: Optional[GraphContext] = None,
    ) -> None:
        super().__init__(graph, model, ctx=ctx)
        model.require(neighbors_known=True)
        # Centres reuse the Theorem 1 construction for their own functions.
        self._inner = TwoLevelScheme(graph, model, ctx=self._ctx)
        cover = self._inner.covering_sequence_of(anchor)
        self._centers = frozenset({anchor} | set(cover))
        self._relay_center: Dict[int, int] = {}
        with profile_section("build.thm3-centers.relay"):
            for v in graph.nodes:
                if v in self._centers:
                    continue
                adjacent_centers = self._centers & graph.neighbor_set(v)
                if not adjacent_centers:
                    raise SchemeBuildError(
                        f"node {v} is not adjacent to any routing centre; "
                        f"graph violates the Lemma 3 cover at anchor {anchor}"
                    )
                self._relay_center[v] = min(adjacent_centers)

    @property
    def centers(self) -> frozenset[int]:
        """The routing-centre set ``B``."""
        return self._centers

    # -- RoutingScheme interface ------------------------------------------------

    def _build_function(self, u: int) -> LocalRoutingFunction:
        if u in self._centers:
            return self._inner.function(u)
        return RelayFunction(u, self._graph.neighbors(u), self._relay_center[u])

    def encode_function(self, u: int) -> BitArray:
        if u in self._centers:
            return self._inner.encode_function(u)
        writer = BitWriter()
        writer.write_uint(self._relay_center[u], minimal_label_bits(self._graph.n))
        return writer.getvalue()

    def decode_function(self, u: int, bits: BitArray) -> LocalRoutingFunction:
        if u in self._centers:
            return self._inner.decode_function(u, bits)
        reader = BitReader(bits)
        center = reader.read_uint(minimal_label_bits(self._graph.n))
        return RelayFunction(u, self._graph.neighbors(u), center)

    def stretch_bound(self) -> float:
        return 1.5
