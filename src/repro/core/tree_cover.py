"""Tree-cover routing: compact routing on *general* graphs (extension).

The paper's compact constructions (Theorems 1–5) exploit the diameter-2
structure of Kolmogorov random graphs.  Downstream users also hold sparse
topologies where those builders rightfully refuse; this module provides the
classical remedy the paper's related work (Peleg/Upfal [9]) pioneered:
route along a small *cover* of BFS trees.

* ``q`` seeded roots each induce a BFS tree carrying interval routing
  (reusing :class:`~repro.core.interval.IntervalRoutingScheme`);
* a node stores, per tree, its interval table and its depth —
  ``O(q · d(v) · log n)`` bits;
* an address (model γ: charged) lists the destination's per-tree DFS
  number and depth;
* the source picks the tree minimising ``depth(u) + depth(v)`` — an upper
  bound on the tree route — and the choice rides in the message header.

The route length is at most ``min_i (depth_i(u) + depth_i(v))``, so the
scheme delivers on every connected graph with measured (not asserted)
stretch; benches report it next to the paper's diameter-2 menu.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import GraphContext, LabeledGraph
from repro.models import RoutingModel, minimal_label_bits
from repro.core.interval import IntervalRoutingScheme
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme

__all__ = ["TreeCoverScheme", "TreeCoverAddress", "TreeCoverFunction"]


@dataclass(frozen=True)
class TreeCoverAddress:
    """Model-γ label: the destination's coordinates in every cover tree."""

    node: int
    dfs_numbers: Tuple[int, ...]
    depths: Tuple[int, ...]

    def bit_length(self, n: int) -> int:
        """Charged label size: ``(1 + 2q) ⌈log(n+1)⌉`` bits."""
        return (1 + 2 * len(self.dfs_numbers)) * minimal_label_bits(n)


@dataclass(frozen=True)
class _CoverState:
    """Header state: which tree the source committed the message to."""

    tree: int


class TreeCoverFunction(LocalRoutingFunction):
    """Per-node rule: pick the cheapest tree at the source, then follow it."""

    def __init__(
        self,
        node: int,
        tree_functions: List[LocalRoutingFunction],
        own_depths: Tuple[int, ...],
        neighbors: frozenset[int],
    ) -> None:
        super().__init__(node)
        self._trees = tree_functions
        self._depths = own_depths
        self._neighbors = neighbors

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        if not isinstance(destination, TreeCoverAddress):
            raise RoutingError(
                f"node {self.node}: tree-cover routing needs a "
                f"TreeCoverAddress, got {destination!r}"
            )
        if destination.node in self._neighbors:
            return HopDecision(destination.node, state)
        if state is None:
            costs = [
                mine + theirs
                for mine, theirs in zip(self._depths, destination.depths)
            ]
            state = _CoverState(tree=costs.index(min(costs)))
        elif not isinstance(state, _CoverState):
            raise RoutingError(
                f"node {self.node}: foreign message state {state!r}"
            )
        tree_function = self._trees[state.tree]
        decision = tree_function.next_hop(destination.dfs_numbers[state.tree])
        return HopDecision(decision.next_node, state)


class TreeCoverScheme(RoutingScheme):
    """Routing over a cover of ``q`` BFS-backboned interval trees."""

    scheme_name = "tree-cover"

    def __init__(
        self,
        graph: LabeledGraph,
        model: RoutingModel,
        num_trees: int = 3,
        ctx: Optional[GraphContext] = None,
    ) -> None:
        super().__init__(graph, model, ctx=ctx)
        model.require(relabeling=True)
        if not model.labels_charged:
            raise SchemeBuildError(
                f"tree-cover addresses are complex labels: model γ required, "
                f"got {model}"
            )
        if num_trees < 1:
            raise SchemeBuildError(f"need at least one tree, got {num_trees}")
        if not graph.is_connected():
            raise SchemeBuildError("tree cover requires a connected graph")
        self._roots = self._pick_roots(graph, num_trees)
        # Reuse interval routing per tree; roots spread deterministically.
        inner_model = model
        self._trees = [
            IntervalRoutingScheme(graph, inner_model, root=root, ctx=self._ctx)
            for root in self._roots
        ]
        self._addresses: Dict[int, TreeCoverAddress] = {
            v: TreeCoverAddress(
                node=v,
                dfs_numbers=tuple(t.address_of(v) for t in self._trees),
                depths=tuple(t.tree_depth(v) for t in self._trees),
            )
            for v in graph.nodes
        }

    @staticmethod
    def _pick_roots(graph: LabeledGraph, count: int) -> List[int]:
        """Deterministic, spread-out roots: evenly spaced labels."""
        count = min(count, graph.n)
        step = max(graph.n // count, 1)
        return [1 + i * step for i in range(count)]

    @property
    def roots(self) -> Tuple[int, ...]:
        """The cover-tree roots."""
        return tuple(self._roots)

    # -- addressing ----------------------------------------------------------

    def address_of(self, node: int) -> TreeCoverAddress:
        return self._addresses[node]

    def node_of_address(self, address: Hashable) -> int:
        if isinstance(address, TreeCoverAddress):
            return address.node
        return super().node_of_address(address)

    # -- RoutingScheme interface -----------------------------------------------

    def _build_function(self, u: int) -> TreeCoverFunction:
        return TreeCoverFunction(
            u,
            [tree.function(u) for tree in self._trees],
            self._addresses[u].depths,
            self._graph.neighbor_set(u),
        )

    def encode_function(self, u: int) -> BitArray:
        """Per tree: gamma-coded depth, then the prime-coded interval table."""
        writer = BitWriter()
        writer.write_gamma(len(self._trees))
        for tree in self._trees:
            writer.write_gamma(tree.tree_depth(u))
            writer.write_prime(tree.encode_function(u))
        return writer.getvalue()

    def decode_function(self, u: int, bits: BitArray) -> TreeCoverFunction:
        reader = BitReader(bits)
        count = reader.read_gamma()
        if count != len(self._trees):
            raise RoutingError(
                f"node {u}: blob has {count} trees, scheme has "
                f"{len(self._trees)}"
            )
        depths = []
        functions = []
        for tree in self._trees:
            depths.append(reader.read_gamma())
            functions.append(tree.decode_function(u, reader.read_prime()))
        return TreeCoverFunction(
            u, functions, tuple(depths), self._graph.neighbor_set(u)
        )

    def label_bits(self, u: int) -> int:
        """Model γ charges the per-tree coordinates in the label."""
        return self._addresses[u].bit_length(self._graph.n)

    def stretch_bound(self) -> float:
        """The source's tree choice minimises ``depth_i(u) + depth_i(v)``,
        so every route is bounded by ``2 · max-depth(t)`` for *each* tree
        ``t`` — in particular by twice the shallowest tree's depth."""
        shallowest = min(
            max(tree.tree_depth(v) for v in self._graph.nodes)
            for tree in self._trees
        )
        return float(max(2 * shallowest, 1))

    def hop_limit(self) -> int:
        return 4 * self._graph.n + 8
