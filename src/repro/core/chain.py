"""The introduction's motivating example: relabelling a chain.

"On a chain, for example, the routing function is much less complicated if
we can relabel the graph and number the nodes in increasing order along the
chain."  This module makes that observation executable:

* under model α a chain with scrambled labels needs a full table — each
  node must look every destination up;
* under models β/γ the strategy renumbers the nodes monotonically along
  the chain, after which the routing function is a single comparison
  (``destination < my number ⇒ left, else right``) stored in O(1) bits.

:class:`ChainComparisonScheme` implements the relabelled version for any
graph that is a simple path, and serves as the library's didactic example
of why the α/β/γ distinction changes the space bounds.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import GraphContext, LabeledGraph
from repro.models import RoutingModel
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme

__all__ = ["ChainComparisonScheme", "ComparisonFunction", "chain_order"]


def chain_order(graph: LabeledGraph) -> List[int]:
    """The nodes of a path graph in end-to-end order.

    Raises :class:`~repro.errors.SchemeBuildError` when the graph is not a
    simple path (chain).
    """
    n = graph.n
    if n == 1:
        return [1]
    if graph.edge_count != n - 1:
        raise SchemeBuildError("a chain on n nodes has exactly n - 1 edges")
    ends = [u for u in graph.nodes if graph.degree(u) == 1]
    if len(ends) != 2 or any(graph.degree(u) > 2 for u in graph.nodes):
        raise SchemeBuildError("graph is not a simple chain")
    order = [min(ends)]
    previous: Optional[int] = None
    while len(order) < n:
        current = order[-1]
        next_nodes = [
            v for v in graph.neighbors(current) if v != previous
        ]
        if len(next_nodes) != 1:
            raise SchemeBuildError("graph is not a simple chain")
        previous = current
        order.append(next_nodes[0])
    return order


class ComparisonFunction(LocalRoutingFunction):
    """O(1)-state rule: compare the destination's position with our own."""

    def __init__(
        self,
        node: int,
        position: int,
        left: Optional[int],
        right: Optional[int],
    ) -> None:
        super().__init__(node)
        self._position = position
        self._left = left
        self._right = right

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        position = int(destination)
        if position == self._position:
            raise RoutingError(f"node {self.node}: message already delivered")
        if position < self._position:
            if self._left is None:
                raise RoutingError(
                    f"chain end {self.node}: no left neighbour toward "
                    f"position {position}"
                )
            return HopDecision(self._left)
        if self._right is None:
            raise RoutingError(
                f"chain end {self.node}: no right neighbour toward "
                f"position {position}"
            )
        return HopDecision(self._right)


class ChainComparisonScheme(RoutingScheme):
    """Comparison routing on a relabelled chain (models β/γ).

    Addresses are chain positions ``1..n``; the per-node state is the
    node's own position plus its two neighbours — all derivable at decode
    time from one gamma-coded position, so the stored routing function is
    O(log n) bits under β (the position is the new label itself, uncharged)
    and the comparison rule is uniform.
    """

    scheme_name = "chain-comparison"

    def __init__(
        self,
        graph: LabeledGraph,
        model: RoutingModel,
        ctx: Optional[GraphContext] = None,
    ) -> None:
        super().__init__(graph, model, ctx=ctx)
        model.require(relabeling=True)
        order = chain_order(graph)
        self._position: Dict[int, int] = {
            node: i + 1 for i, node in enumerate(order)
        }
        self._order = order

    # -- addressing ----------------------------------------------------------

    def address_of(self, node: int) -> int:
        """Destination addresses are chain positions (the β relabelling)."""
        return self._position[node]

    def node_of_address(self, address: Hashable) -> int:
        try:
            return self._order[int(address) - 1]
        except (IndexError, TypeError, ValueError) as exc:
            raise RoutingError(f"invalid chain position {address!r}") from exc

    def position_of(self, node: int) -> int:
        """This node's position along the chain."""
        return self._position[node]

    # -- RoutingScheme interface ----------------------------------------------

    def _neighbors_by_side(
        self, node: int
    ) -> Tuple[Optional[int], Optional[int]]:
        position = self._position[node]
        left = self._order[position - 2] if position > 1 else None
        right = self._order[position] if position < self._graph.n else None
        return left, right

    def _build_function(self, u: int) -> ComparisonFunction:
        left, right = self._neighbors_by_side(u)
        return ComparisonFunction(u, self._position[u], left, right)

    def encode_function(self, u: int) -> BitArray:
        """Under β the position *is* the node's new label; we store only a
        marker bit for the uniform comparison rule.  (The position is
        written too so the decoder is self-contained, gamma-coded — still
        O(log n), far below the full table's (n-1) log n.)"""
        writer = BitWriter()
        writer.write_bit(1)
        writer.write_gamma(self._position[u] - 1)
        return writer.getvalue()

    def decode_function(self, u: int, bits: BitArray) -> ComparisonFunction:
        reader = BitReader(bits)
        if reader.read_bit() != 1:
            raise RoutingError("corrupt chain-comparison encoding")
        position = reader.read_gamma() + 1
        if position != self._position[u]:
            raise RoutingError(
                f"node {u}: stored position {position} contradicts the chain"
            )
        left, right = self._neighbors_by_side(u)
        return ComparisonFunction(u, position, left, right)

    def stretch_bound(self) -> float:
        return 1.0
