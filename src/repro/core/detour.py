"""Bounce-once detour recovery around single-path routing functions.

The paper's full-information schemes survive link failures by storing
*every* shortest-path edge per destination — an ``O(n³)``-bit luxury.  The
compact single-path schemes (Theorems 1–5, interval routing) store one
choice and drop a message the moment that choice is a dead link.

:class:`DetourWrapper` retrofits a minimal, paper-faithful recovery onto
any single-path scheme: when the stored next hop is down, forward to some
*live* neighbour instead and let routing resume normally from there.  The
decision uses only information the node already holds under model II —
its own routing entry plus the liveness of its incident links — so the
wrapper adds **zero** table bits (its serialised functions are the inner
scheme's, bit for bit).  A bounce budget carried in the message header
(default 1: "bounce once") keeps the worst case bounded: each bounce costs
at most one wasted hop plus a fresh route from an adjacent node, after
which an unlucky message is dropped rather than wandering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Optional, Sequence, Tuple

from repro.bitio import BitArray
from repro.errors import RoutingError, SchemeBuildError
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme

__all__ = ["DetourState", "DetourFunction", "DetourWrapper"]


@dataclass(frozen=True)
class DetourState:
    """Header state of a detoured message: inner state + bounce count."""

    inner: Any = None
    bounces: int = 0


def _split_state(state: Any) -> Tuple[Any, int]:
    if isinstance(state, DetourState):
        return state.inner, state.bounces
    return state, 0


class DetourFunction(LocalRoutingFunction):
    """Wraps one node's routing function with live-neighbour fallback."""

    def __init__(
        self,
        node: int,
        inner: LocalRoutingFunction,
        neighbors: Sequence[int],
        max_bounces: int = 1,
    ) -> None:
        super().__init__(node)
        self._inner = inner
        self._neighbors = tuple(neighbors)
        self._max_bounces = max_bounces

    @property
    def inner(self) -> LocalRoutingFunction:
        """The wrapped single-path function."""
        return self._inner

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        inner_state, bounces = _split_state(state)
        decision = self._inner.next_hop(destination, inner_state)
        return HopDecision(
            decision.next_node, DetourState(decision.state, bounces)
        )

    def next_hop_avoiding(
        self,
        destination: Hashable,
        blocked: Iterable[int],
        state: Any = None,
    ) -> HopDecision:
        """Prefer the stored hop; bounce to a live neighbour if it is dead.

        Raises :class:`~repro.errors.RoutingError` when the bounce budget is
        spent or no live neighbour remains.
        """
        blocked_set = set(blocked)
        inner_state, bounces = _split_state(state)
        primary: Optional[int] = None
        decision: Optional[HopDecision] = None
        try:
            decision = self._inner.next_hop(destination, inner_state)
            primary = decision.next_node
        except RoutingError:
            pass  # fall through to a detour attempt
        if (
            decision is not None
            and primary not in blocked_set
        ):
            return HopDecision(primary, DetourState(decision.state, bounces))
        if bounces >= self._max_bounces:
            raise RoutingError(
                f"node {self.node}: stored hop toward {destination!r} is "
                f"down and the bounce budget ({self._max_bounces}) is spent"
            )
        alive = [
            nb
            for nb in self._neighbors
            if nb not in blocked_set and nb != primary
        ]
        if not alive:
            raise RoutingError(
                f"node {self.node}: every incident link is down; "
                f"cannot detour toward {destination!r}"
            )
        # Deterministic pick; the message resumes normal routing at the
        # detour neighbour, its header remembering the spent bounce.
        return HopDecision(alive[0], DetourState(inner_state, bounces + 1))


class DetourWrapper(RoutingScheme):
    """A :class:`RoutingScheme` decorator adding bounce-once recovery.

    Transparent for space accounting (tables, labels and aux bits are the
    inner scheme's) and for fault-free routing; only when the stored next
    hop is down does behaviour diverge from the wrapped scheme.
    """

    def __init__(self, inner: RoutingScheme, max_bounces: int = 1) -> None:
        if max_bounces < 1:
            raise SchemeBuildError(
                f"max_bounces must be >= 1, got {max_bounces}"
            )
        super().__init__(inner.graph, inner.model, ctx=inner.ctx)
        self._inner = inner
        self._max_bounces = max_bounces
        self.scheme_name = f"detour({inner.scheme_name})"

    @property
    def inner(self) -> RoutingScheme:
        """The wrapped scheme."""
        return self._inner

    @property
    def max_bounces(self) -> int:
        """Per-message detour budget carried in the header."""
        return self._max_bounces

    # -- addressing: delegate -----------------------------------------------

    def address_of(self, node: int) -> Hashable:
        return self._inner.address_of(node)

    def node_of_address(self, address: Hashable) -> int:
        return self._inner.node_of_address(address)

    # -- routing -------------------------------------------------------------

    def _build_function(self, u: int) -> DetourFunction:
        return DetourFunction(
            u,
            self._inner.function(u),
            self._graph.neighbors(u),
            self._max_bounces,
        )

    # -- serialisation: the wrapper costs no bits ----------------------------

    def encode_function(self, u: int) -> BitArray:
        return self._inner.encode_function(u)

    def decode_function(self, u: int, bits: BitArray) -> DetourFunction:
        return DetourFunction(
            u,
            self._inner.decode_function(u, bits),
            self._graph.neighbors(u),
            self._max_bounces,
        )

    def label_bits(self, u: int) -> int:
        return self._inner.label_bits(u)

    def aux_bits(self, u: int) -> int:
        return self._inner.aux_bits(u)

    def integrity_bits(self, u: int) -> int:
        return self._inner.integrity_bits(u)

    # -- guarantees ----------------------------------------------------------

    def stretch_bound(self) -> float:
        """Fault-free stretch is the inner scheme's; each bounce adds at
        most one hop plus a fresh route from a node one hop away."""
        inner = self._inner.stretch_bound()
        return (inner + 2.0) * (1 + self._max_bounces)

    def hop_limit(self) -> int:
        return self._inner.hop_limit()
