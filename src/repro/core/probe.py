"""Theorem 5 — ``O(n)`` bits total at stretch ``O(log n)`` (model II).

Nodes store an O(1)-bit rule and no tables at all.  A message for a
non-adjacent target is *probed*: the origin sends it to its least
neighbours in turn; each probed neighbour either sees the target among its
own neighbours and delivers, or bounces the message back.  By Lemma 3 a
random graph needs at most ``(c+3) log n`` probes, so a distance-2 target
is reached within ``2(c+3) log n`` edge traversals — stretch
``(c+3) log n``.

The probe counter travels in the message header
(:class:`ProbeState`), not in any routing table — the scheme's charged
space stays O(1) per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import GraphContext, LabeledGraph
from repro.models import RoutingModel
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme

__all__ = ["ProbeScheme", "ProbeFunction", "ProbeState"]


@dataclass(frozen=True)
class ProbeState:
    """Message-header state for the Theorem 5 probing walk."""

    origin: int
    """The node conducting the probe sequence."""
    index: int
    """Zero-based index of the neighbour currently being probed."""
    returning: bool
    """True while the message is travelling back after a failed probe."""


class ProbeFunction(LocalRoutingFunction):
    """The uniform probe-and-bounce rule."""

    def __init__(self, node: int, neighbors: Tuple[int, ...]) -> None:
        super().__init__(node)
        self._neighbors = neighbors
        self._neighbor_set = frozenset(neighbors)

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        dest = int(destination)
        if dest in self._neighbor_set:
            return HopDecision(dest)
        if state is None or (
            isinstance(state, ProbeState) and state.origin != self.node
        ):
            if isinstance(state, ProbeState) and not state.returning:
                # We are the probed neighbour and the target is not adjacent:
                # bounce the message back to the origin.
                return HopDecision(
                    state.origin,
                    ProbeState(state.origin, state.index, returning=True),
                )
            if state is None:
                return self._launch_probe(dest, 0)
            raise RoutingError(
                f"node {self.node}: unexpected probe state {state!r}"
            )
        if not isinstance(state, ProbeState):
            raise RoutingError(
                f"node {self.node}: foreign message state {state!r}"
            )
        if state.returning:
            return self._launch_probe(dest, state.index + 1)
        raise RoutingError(
            f"node {self.node}: probe for {dest} revisited its origin"
        )

    def _launch_probe(self, dest: int, index: int) -> HopDecision:
        if index >= len(self._neighbors):
            raise RoutingError(
                f"node {self.node}: probes exhausted without reaching {dest} "
                f"(graph has diameter > 2)"
            )
        return HopDecision(
            self._neighbors[index],
            ProbeState(self.node, index, returning=False),
        )


class ProbeScheme(RoutingScheme):
    """The Theorem 5 construction (O(1) bits per node)."""

    scheme_name = "thm5-probe"

    def __init__(
        self,
        graph: LabeledGraph,
        model: RoutingModel,
        ctx: Optional[GraphContext] = None,
    ) -> None:
        super().__init__(graph, model, ctx=ctx)
        model.require(neighbors_known=True)
        from repro.observability import profile_section

        with profile_section("build.thm5-probe.distance-check"):
            diameter_ok = not (self._ctx.distances(max_distance=2) < 0).any()
        if not diameter_ok:
            raise SchemeBuildError(
                "Theorem 5 probing delivers only when every pair is within "
                "distance 2 (the Lemma 2 graph class)"
            )

    def _build_function(self, u: int) -> ProbeFunction:
        return ProbeFunction(u, self._graph.neighbors(u))

    def encode_function(self, u: int) -> BitArray:
        """One marker bit — the rule is uniform (O(1))."""
        writer = BitWriter()
        writer.write_bit(1)
        return writer.getvalue()

    def decode_function(self, u: int, bits: BitArray) -> ProbeFunction:
        reader = BitReader(bits)
        if reader.read_bit() != 1:
            raise RoutingError("corrupt Theorem 5 function encoding")
        return ProbeFunction(u, self._graph.neighbors(u))

    def stretch_bound(self) -> float:
        """Worst-case hop bound over shortest distance on a diameter-2 graph.

        Lemma 3 promises success within ``(c+3) log n`` probes with ``c = 3``
        for the graph class the averages range over; each probe costs two
        traversals.
        """
        import math

        return max(6.0 * math.log2(max(self._graph.n, 2)), 1.0)

    def hop_limit(self) -> int:
        """Probing may traverse up to ``2 d(u) + 1`` edges."""
        return 2 * self._graph.n + 8
