"""The storage layer the scheme store talks to — real or simulated.

The store never touches ``open``/``os`` directly; every byte goes through
a :class:`Filesystem`, a deliberately narrow contract (read, append,
sync, atomic replace, delete, list) that two implementations satisfy:

* :class:`LocalFilesystem` — a directory on the real disk, for the CLI
  and any long-lived deployment.  ``replace`` is the classic
  write-to-temp + ``fsync`` + ``os.replace`` atomic-install idiom,
  followed by an ``fsync`` of the containing directory so the rename
  itself survives power loss; file creation gets the same directory
  sync, and leftover ``*.tmp*`` files from a crashed install are swept
  on open.
* :class:`MemoryFilesystem` — an in-memory model that distinguishes
  *visible* bytes (what a subsequent read returns) from *durable* bytes
  (what survives :meth:`MemoryFilesystem.crash`).  ``append`` alone
  leaves data volatile; only ``sync`` — or the all-in-one ``replace`` —
  promotes it.  That split is what lets the fault-injection shim
  (:mod:`repro.store.faults`) model torn writes, lost fsyncs, and
  crash-point sweeps deterministically and instantly, with no real I/O.

All paths are names relative to the filesystem's root; the store uses
flat names (``journal.log``, ``snapshot-000001.snap``) only.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List

from repro.errors import StoreError

__all__ = ["Filesystem", "LocalFilesystem", "MemoryFilesystem"]


class Filesystem:
    """Abstract byte store: the only I/O surface the scheme store uses."""

    def read(self, name: str) -> bytes:
        """All visible bytes of ``name`` (raises StoreError when absent)."""
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        """Whether ``name`` currently exists (visible, durable or not)."""
        raise NotImplementedError

    def append(self, name: str, data: bytes) -> None:
        """Append ``data`` to ``name`` (creating it); NOT yet durable."""
        raise NotImplementedError

    def sync(self, name: str) -> None:
        """Make every appended byte of ``name`` durable (fsync)."""
        raise NotImplementedError

    def replace(self, name: str, data: bytes) -> None:
        """Atomically install ``data`` as the full durable content of
        ``name`` (write temp, sync, rename): afterwards a reader sees
        either the old content or the new, never a mixture."""
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove ``name`` (missing files are ignored)."""
        raise NotImplementedError

    def list(self) -> List[str]:
        """Sorted names of every existing file."""
        raise NotImplementedError


def _is_temp(name: str) -> bool:
    """Whether ``name`` is a :meth:`LocalFilesystem.replace` scratch file.

    The store itself only ever uses flat ``journal.log`` /
    ``snapshot-NNNNNN.snap`` names, so the ``mkstemp`` prefix's
    ``.tmp`` marker cannot collide with a real file.
    """
    return ".tmp" in name


class LocalFilesystem(Filesystem):
    """A real directory on disk (created on first use).

    Durability is taken seriously: renames and file creations are
    followed by an ``fsync`` of the directory itself — without it the
    new directory entry can vanish on power failure even though the
    file's own bytes were synced.  ``*.tmp*`` droppings from an install
    that crashed between ``mkstemp`` and ``os.replace`` are invisible
    to :meth:`list` and deleted the next time the directory is opened.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        try:
            os.makedirs(root, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create store directory {root}: {exc}") from exc
        for entry in os.listdir(root):
            if _is_temp(entry):
                try:
                    os.remove(os.path.join(root, entry))
                except OSError:
                    pass  # best-effort sweep; a survivor stays hidden

    def _path(self, name: str) -> str:
        return os.path.join(self.root, name)

    def _sync_dir(self) -> None:
        """fsync the directory so renames/creations are themselves durable."""
        fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def read(self, name: str) -> bytes:
        try:
            with open(self._path(name), "rb") as handle:
                return handle.read()
        except OSError as exc:
            raise StoreError(f"cannot read {name}: {exc}") from exc

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def append(self, name: str, data: bytes) -> None:
        path = self._path(name)
        created = not os.path.exists(path)
        try:
            with open(path, "ab") as handle:
                handle.write(data)
            if created:
                self._sync_dir()
        except OSError as exc:
            raise StoreError(f"cannot append to {name}: {exc}") from exc

    def sync(self, name: str) -> None:
        try:
            fd = os.open(self._path(name), os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        except OSError as exc:
            raise StoreError(f"cannot fsync {name}: {exc}") from exc

    def replace(self, name: str, data: bytes) -> None:
        tmp = None
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, prefix=name + ".tmp")
            try:
                os.write(fd, data)
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, self._path(name))
            tmp = None  # installed; nothing left to clean up
            self._sync_dir()
        except OSError as exc:
            if tmp is not None:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
            raise StoreError(f"cannot install {name}: {exc}") from exc

    def delete(self, name: str) -> None:
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise StoreError(f"cannot delete {name}: {exc}") from exc

    def list(self) -> List[str]:
        try:
            return sorted(
                entry for entry in os.listdir(self.root)
                if os.path.isfile(self._path(entry)) and not _is_temp(entry)
            )
        except OSError as exc:
            raise StoreError(f"cannot list {self.root}: {exc}") from exc


class MemoryFilesystem(Filesystem):
    """In-memory filesystem with an explicit durability model.

    ``append`` updates only the *visible* view; ``sync`` copies it into
    the *durable* view; :meth:`crash` discards everything volatile —
    exactly the contract a crash-consistency test needs.  ``replace``
    is atomic and durable in one step, mirroring the temp+fsync+rename
    idiom of :class:`LocalFilesystem`.
    """

    def __init__(self) -> None:
        self._visible: Dict[str, bytearray] = {}
        self._durable: Dict[str, bytes] = {}

    def read(self, name: str) -> bytes:
        if name not in self._visible:
            raise StoreError(f"cannot read {name}: no such file")
        return bytes(self._visible[name])

    def exists(self, name: str) -> bool:
        return name in self._visible

    def append(self, name: str, data: bytes) -> None:
        self._visible.setdefault(name, bytearray()).extend(data)

    def sync(self, name: str) -> None:
        if name in self._visible:
            self._durable[name] = bytes(self._visible[name])

    def replace(self, name: str, data: bytes) -> None:
        self._visible[name] = bytearray(data)
        self._durable[name] = bytes(data)

    def delete(self, name: str) -> None:
        self._visible.pop(name, None)
        self._durable.pop(name, None)

    def list(self) -> List[str]:
        return sorted(self._visible)

    # -- simulation-only surface ---------------------------------------------

    def crash(self) -> None:
        """Lose every byte that was never synced (simulated power cut)."""
        self._visible = {
            name: bytearray(data) for name, data in self._durable.items()
        }

    def durable_bytes(self, name: str) -> bytes:
        """The bytes of ``name`` that would survive a crash right now."""
        return self._durable.get(name, b"")

    def corrupt_bit(self, name: str, bit_offset: int) -> int:
        """Flip one bit of ``name`` in place (post-hoc bit rot).

        The offset is reduced modulo the file length so a seeded fault is
        meaningful for any file; returns the absolute bit position hit.
        Raises :class:`~repro.errors.StoreError` on a missing/empty file.
        """
        data = self._visible.get(name)
        if not data:
            raise StoreError(f"cannot corrupt {name}: no such file or empty")
        position = bit_offset % (8 * len(data))
        data[position // 8] ^= 1 << (7 - position % 8)
        if name in self._durable:
            durable = bytearray(self._durable[name])
            if position // 8 < len(durable):
                durable[position // 8] ^= 1 << (7 - position % 8)
                self._durable[name] = bytes(durable)
        return position
