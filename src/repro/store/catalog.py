"""The generation-numbered catalog of stored schemes, and its snapshots.

The catalog is the store's in-memory truth: for every scheme *name*, a
monotone sequence of generations (each a packed blob plus the
:class:`~repro.observability.manifest.RunManifest` of the run that built
it) and a pointer to the *active* generation.  It is rebuilt from bytes
on every open — journal replay and snapshot load both funnel through
:meth:`Catalog.apply` — and its update rule is deliberately prefix-closed:

* a ``PUT`` adds (or idempotently re-adds) a generation; the *first*
  generation of a name auto-activates, so a name is never present yet
  unservable;
* a ``SWAP`` moves the active pointer, and only to a generation already
  present.

Because every journal prefix is a prefix of the same PUT/SWAP history,
replaying any crash truncation of the journal yields a catalog that is
internally consistent — the invariant the hypothesis crash-point
property pins down.  Idempotent replay by ``(name, generation)`` also
makes a stale journal re-applied over a snapshot harmless, which is what
lets compaction survive a failed journal reset.

A snapshot is the whole catalog as **one** CRC-framed journal-style
super-record installed atomically (write-temp + fsync + rename), so it
is either entirely present or entirely absent — never torn.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bitio import BitArray
from repro.errors import StoreError
from repro.integrity import FramingPolicy, verify_frame

__all__ = [
    "CatalogEntry",
    "Catalog",
    "encode_snapshot",
    "decode_snapshot",
    "snapshot_name",
    "snapshot_sequence",
]

SNAPSHOT_PREFIX = "snapshot-"
SNAPSHOT_SUFFIX = ".snap"

_SNAP_MAGIC = 0xA8
_SNAP_VERSION = 1


@dataclass(frozen=True)
class CatalogEntry:
    """One stored generation of one scheme."""

    name: str
    generation: int
    blob: bytes
    manifest: Optional[Dict[str, Any]] = None

    @property
    def blob_bits(self) -> int:
        """Size of the packed scheme blob, in the paper's currency."""
        return 8 * len(self.blob)


@dataclass
class Catalog:
    """All stored generations plus each name's active pointer."""

    entries: Dict[str, Dict[int, CatalogEntry]] = field(default_factory=dict)
    active: Dict[str, int] = field(default_factory=dict)

    # -- queries --------------------------------------------------------------

    def names(self) -> List[str]:
        """Sorted scheme names present in the catalog."""
        return sorted(self.entries)

    def generations(self, name: str) -> List[int]:
        """Sorted generation numbers stored for ``name``."""
        return sorted(self.entries.get(name, ()))

    def get(self, name: str, generation: Optional[int] = None) -> CatalogEntry:
        """The given (default: active) generation of ``name``."""
        versions = self.entries.get(name)
        if not versions:
            raise StoreError(f"no scheme named {name!r} in the store")
        if generation is None:
            generation = self.active[name]
        entry = versions.get(generation)
        if entry is None:
            raise StoreError(
                f"scheme {name!r} has no generation {generation} "
                f"(stored: {self.generations(name)})"
            )
        return entry

    def next_generation(self, name: str) -> int:
        """The generation number a fresh PUT of ``name`` should use."""
        versions = self.entries.get(name)
        return max(versions) + 1 if versions else 1

    @property
    def total_entries(self) -> int:
        """Number of stored (name, generation) pairs."""
        return sum(len(versions) for versions in self.entries.values())

    @property
    def total_blob_bits(self) -> int:
        """Packed size of every stored generation, summed."""
        return sum(
            entry.blob_bits
            for versions in self.entries.values()
            for entry in versions.values()
        )

    def is_consistent(self) -> bool:
        """Structural invariant: every active pointer names a stored entry."""
        for name, generation in self.active.items():
            if generation not in self.entries.get(name, ()):
                return False
        return all(name in self.active for name in self.entries)

    # -- updates --------------------------------------------------------------

    def apply_put(self, entry: CatalogEntry) -> bool:
        """Add a generation; returns False when it was already present.

        The first generation of a name activates automatically, so the
        catalog never holds an unservable name.
        """
        versions = self.entries.setdefault(entry.name, {})
        if entry.generation in versions:
            return False
        versions[entry.generation] = entry
        if entry.name not in self.active:
            self.active[entry.name] = entry.generation
        return True

    def apply_swap(self, name: str, generation: int) -> bool:
        """Move a name's active pointer; False if the target is absent.

        A SWAP whose target generation is missing (its PUT was torn away
        or quarantined) is ignored rather than trusted — the previous
        active generation keeps serving.
        """
        if generation not in self.entries.get(name, ()):
            return False
        self.active[name] = generation
        return True


# -- snapshots ----------------------------------------------------------------


def snapshot_name(sequence: int) -> str:
    """File name of the ``sequence``-th snapshot (zero-padded, sortable)."""
    return f"{SNAPSHOT_PREFIX}{sequence:06d}{SNAPSHOT_SUFFIX}"


def snapshot_sequence(name: str) -> Optional[int]:
    """Parse a snapshot file name back to its sequence (None if not one)."""
    if not (name.startswith(SNAPSHOT_PREFIX) and name.endswith(SNAPSHOT_SUFFIX)):
        return None
    digits = name[len(SNAPSHOT_PREFIX) : -len(SNAPSHOT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def encode_snapshot(catalog: Catalog) -> bytes:
    """Serialise a catalog as one CRC-framed super-record.

    Layout: ``magic(1) | version(1) | index length(4) | JSON index |
    concatenated blobs | CRC-16(2)``, where the index carries every
    entry's name, generation, manifest, and blob extent into the blob
    region.  One frame over the whole file means *any* single flip or
    truncation fails verification and recovery falls back to the next
    older snapshot.
    """
    index: List[Dict[str, Any]] = []
    blobs = bytearray()
    for name in catalog.names():
        for generation in catalog.generations(name):
            entry = catalog.get(name, generation)
            index.append(
                {
                    "name": entry.name,
                    "generation": entry.generation,
                    "manifest": entry.manifest,
                    "blob_offset": len(blobs),
                    "blob_length": len(entry.blob),
                }
            )
            blobs.extend(entry.blob)
    body = json.dumps(
        {"active": catalog.active, "index": index}, sort_keys=True
    ).encode("utf-8")
    head = (
        bytes((_SNAP_MAGIC, _SNAP_VERSION))
        + len(body).to_bytes(4, "big")
        + body
        + bytes(blobs)
    )
    bits = BitArray._from_packed(head, 8 * len(head))
    return head + FramingPolicy.CRC16.checksum(bits).to_bytes()


def decode_snapshot(data: bytes) -> Catalog:
    """Parse and verify a snapshot; raises StoreError on any damage."""
    if len(data) < 8:
        raise StoreError("snapshot too short to be framed")
    framed = BitArray._from_packed(data, 8 * len(data))
    if not verify_frame(framed, FramingPolicy.CRC16):
        raise StoreError("snapshot failed its CRC-16 integrity check")
    if data[0] != _SNAP_MAGIC:
        raise StoreError(f"bad snapshot magic 0x{data[0]:02x}")
    if data[1] != _SNAP_VERSION:
        raise StoreError(f"unsupported snapshot version {data[1]}")
    body_len = int.from_bytes(data[2:6], "big")
    if 6 + body_len + 2 > len(data):
        raise StoreError("snapshot index length exceeds file")
    try:
        header = json.loads(data[6 : 6 + body_len].decode("utf-8"))
        blob_region = data[6 + body_len : -2]
        catalog = Catalog()
        for item in header["index"]:
            start = item["blob_offset"]
            end = start + item["blob_length"]
            if end > len(blob_region):
                raise ValueError("blob extent exceeds snapshot blob region")
            catalog.apply_put(
                CatalogEntry(
                    name=item["name"],
                    generation=item["generation"],
                    blob=bytes(blob_region[start:end]),
                    manifest=item.get("manifest"),
                )
            )
        for name, generation in header["active"].items():
            if not catalog.apply_swap(name, generation):
                raise ValueError(
                    f"snapshot activates missing generation {generation} "
                    f"of {name!r}"
                )
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise StoreError(
            f"undecodable snapshot ({type(exc).__name__}: {exc})"
        ) from exc
    return catalog
