"""The scheme store facade: journaled puts, snapshots, verified hot-swap.

:class:`SchemeStore` ties the layers together.  All state-changing paths
follow the same durability discipline:

* **put / swap** — encode one CRC-framed record, append it to the
  journal, ``fsync``; only then is the in-memory catalog updated.  A
  crash between append and sync loses at most the torn tail the scanner
  is built to drop.
* **snapshot / compact** — serialise the whole catalog as one framed
  super-record and install it atomically (write-temp + fsync + rename),
  then reset the journal.  A failed journal reset is tolerated: replay
  is idempotent by ``(name, generation)``, so re-applying the stale
  journal over the snapshot changes nothing.
* **hot-swap** — the new blob must *prove* itself before it serves:
  it is unpacked, durably PUT, re-read **from disk** (a fresh recovery
  pass over snapshot + journal, never the in-memory catalog), compared
  bit-exact per node against the candidate, and only then SWAPped
  active.  Any failure leaves the previously active generation serving.

``verify`` re-reads the disk from scratch (a fresh recovery pass plus a
deep decode of every blob) and diffs it against the in-memory catalog,
so post-hoc bit rot is caught even when it strikes bytes the store has
no other reason to touch.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.core.persistence import unpack_blob
from repro.errors import CodecError, StoreError
from repro.observability.registry import MetricsRegistry, get_registry
from repro.observability.tracer import Tracer
from repro.store.catalog import (
    Catalog,
    CatalogEntry,
    encode_snapshot,
    snapshot_name,
    snapshot_sequence,
)
from repro.store.filesystem import Filesystem
from repro.store.journal import JOURNAL_NAME, encode_put, encode_swap
from repro.store.recovery import RecoveryManager, RecoveryReport

__all__ = ["SchemeStore"]


class SchemeStore:
    """Crash-safe, generation-numbered home for packed routing schemes."""

    def __init__(
        self,
        fs: Filesystem,
        *,
        snapshot_every: int = 8,
        keep_snapshots: int = 2,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if snapshot_every < 1:
            raise StoreError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        if keep_snapshots < 1:
            raise StoreError(
                f"keep_snapshots must be >= 1, got {keep_snapshots}"
            )
        self.fs = fs
        self.snapshot_every = snapshot_every
        self.keep_snapshots = keep_snapshots
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        self.registry = registry if registry is not None else get_registry()
        self.catalog = Catalog()
        self.last_recovery: Optional[RecoveryReport] = None
        self._puts_since_snapshot = 0
        # Journal length mirror, kept so the journal-size gauge never
        # needs to re-read the file (that would make puts O(n^2) in
        # total I/O).  Reset on recover/compact, bumped per append.
        self._journal_bytes = 0

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def open(
        cls,
        fs: Filesystem,
        *,
        snapshot_every: int = 8,
        keep_snapshots: int = 2,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> "SchemeStore":
        """Open a store directory: every open is a full recovery pass."""
        store = cls(
            fs,
            snapshot_every=snapshot_every,
            keep_snapshots=keep_snapshots,
            tracer=tracer,
            registry=registry,
        )
        store.recover()
        return store

    def recover(self, *, heal: bool = True) -> RecoveryReport:
        """(Re)build the in-memory catalog from disk; returns the report.

        A degraded recovery (torn tail, quarantined records, rejected
        snapshots) self-heals afterwards: the recovered catalog is
        snapshotted and the journal reset, so later appends never land
        behind damaged bytes.  The report still describes the damage as
        found — healing changes the disk, not the diagnosis.  Pass
        ``heal=False`` for a read-only pass (audits want to *see* the
        damage, not erase it).
        """
        manager = RecoveryManager(
            self.fs, tracer=self.tracer, registry=self.registry
        )
        self.catalog, self.last_recovery = manager.recover()
        self._puts_since_snapshot = 0
        self._journal_bytes = self.last_recovery.journal_bytes
        if heal and not self.last_recovery.clean:
            try:
                self.compact()
            except StoreError:
                # Healing is best-effort; the catalog is already correct
                # in memory and the next successful compact will land it.
                pass
        return self.last_recovery

    # -- queries --------------------------------------------------------------

    def get(self, name: str, generation: Optional[int] = None) -> CatalogEntry:
        """The given (default: active) generation of ``name``."""
        return self.catalog.get(name, generation)

    def active_generation(self, name: str) -> int:
        """The generation currently serving for ``name``."""
        if name not in self.catalog.active:
            raise StoreError(f"no scheme named {name!r} in the store")
        return self.catalog.active[name]

    def list(self) -> List[Dict[str, Any]]:
        """One JSON-ready summary row per stored scheme name."""
        rows: List[Dict[str, Any]] = []
        for name in self.catalog.names():
            active = self.catalog.active[name]
            rows.append(
                {
                    "name": name,
                    "active_generation": active,
                    "generations": self.catalog.generations(name),
                    "active_blob_bits": self.catalog.get(name, active).blob_bits,
                }
            )
        return rows

    # -- durable mutations ----------------------------------------------------

    def _append_record(self, record: bytes) -> None:
        self.fs.append(JOURNAL_NAME, record)
        self.fs.sync(JOURNAL_NAME)
        self._journal_bytes += len(record)
        self.registry.gauge("repro_store_journal_bits").set(
            8 * self._journal_bytes
        )

    def put(
        self,
        name: str,
        blob: bytes,
        manifest: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Durably store a new generation of ``name``; returns its number.

        ``blob`` is a :func:`~repro.core.persistence.pack_scheme` byte
        string; it is structurally validated before any byte is written.
        The first generation of a name becomes active immediately.
        """
        try:
            unpack_blob(blob)
        except CodecError as exc:
            raise StoreError(
                f"refusing to store undecodable blob for {name!r}: {exc}"
            ) from exc
        generation = self.catalog.next_generation(name)
        record = encode_put(name, generation, manifest or {}, blob)
        self._append_record(record)
        self.catalog.apply_put(
            CatalogEntry(
                name=name, generation=generation, blob=blob, manifest=manifest
            )
        )
        self.registry.counter("repro_store_records_total", op="put").inc()
        if self.tracer is not None:
            self.tracer.persist("put", detail=f"{name}@{generation}")
        self._puts_since_snapshot += 1
        if self._puts_since_snapshot >= self.snapshot_every:
            self.compact()
        return generation

    def swap(self, name: str, generation: int) -> None:
        """Durably switch ``name``'s active pointer to ``generation``."""
        # Validates the target exists before a record is written.
        self.catalog.get(name, generation)
        self._append_record(encode_swap(name, generation))
        self.catalog.apply_swap(name, generation)
        self.registry.counter("repro_store_records_total", op="swap").inc()
        self.registry.counter("repro_store_swaps_total").inc()
        if self.tracer is not None:
            self.tracer.persist("swap", detail=f"{name}@{generation}")
            self.tracer.swap(f"{name}@{generation}")

    def hot_swap(
        self,
        name: str,
        blob: bytes,
        manifest: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Build new → verify → atomically switch; returns the generation.

        The candidate blob is decoded up front, durably PUT, then
        re-read **from disk** — a fresh recovery pass over snapshot plus
        journal, deliberately not the in-memory catalog (which still
        holds the very bytes object just written and would make the
        comparison vacuous) — decoded again, and compared **bit-exact
        per node** against the candidate before the SWAP record is
        written.  Any failure raises :class:`~repro.errors.StoreError`
        and leaves the previously active generation serving (the
        stored-but-never-activated generation remains visible in
        ``list`` for forensics).
        """
        try:
            candidate = unpack_blob(blob)
        except CodecError as exc:
            raise StoreError(
                f"hot-swap candidate for {name!r} failed verification: {exc}"
            ) from exc
        generation = self.put(name, blob, manifest)
        # Scratch tracer/registry: this read-back is an internal proof
        # step, not an operator-visible recovery.
        audit = RecoveryManager(
            self.fs, tracer=None, registry=MetricsRegistry()
        )
        disk_catalog, _ = audit.recover()
        try:
            stored = disk_catalog.get(name, generation)
        except StoreError as exc:
            raise StoreError(
                f"hot-swap PUT of {name}@{generation} did not survive a "
                f"disk read-back: {exc}"
            ) from exc
        if stored.blob != blob:
            raise StoreError(
                f"hot-swap read-back of {name}@{generation} from disk is "
                "not byte-identical to the candidate; active generation "
                "left untouched"
            )
        try:
            readback = unpack_blob(stored.blob)
        except CodecError as exc:
            raise StoreError(
                f"hot-swap read-back of {name}@{generation} is undecodable: "
                f"{exc}"
            ) from exc
        if (
            readback.scheme_name != candidate.scheme_name
            or readback.n != candidate.n
            or readback.functions != candidate.functions
        ):
            raise StoreError(
                f"hot-swap read-back of {name}@{generation} is not bit-exact "
                "to the candidate; active generation left untouched"
            )
        self.swap(name, generation)
        return generation

    def compact(self) -> str:
        """Snapshot the catalog atomically, reset the journal; returns the
        snapshot file name.

        The snapshot install is the only step that must succeed; a failed
        journal reset or old-snapshot cleanup is tolerated because replay
        over a snapshot is idempotent.
        """
        existing = [
            seq
            for seq in (snapshot_sequence(n) for n in self.fs.list())
            if seq is not None
        ]
        sequence = max(existing, default=0) + 1
        target = snapshot_name(sequence)
        data = encode_snapshot(self.catalog)
        self.fs.replace(target, data)
        self.registry.counter("repro_store_snapshots_total").inc()
        self.registry.gauge("repro_store_snapshot_bits").set(8 * len(data))
        if self.tracer is not None:
            self.tracer.persist("snapshot", detail=target)
        self._puts_since_snapshot = 0
        try:
            self.fs.replace(JOURNAL_NAME, b"")
            self._journal_bytes = 0
            self.registry.gauge("repro_store_journal_bits").set(0)
            for seq in sorted(existing, reverse=True)[self.keep_snapshots - 1:]:
                self.fs.delete(snapshot_name(seq))
        except StoreError:
            # Stale journal / extra snapshots are safe: replay is
            # idempotent and recovery always prefers the newest snapshot.
            pass
        if self.tracer is not None:
            self.tracer.persist("compact", detail=target)
        return target

    # -- audit ----------------------------------------------------------------

    def verify(self) -> Dict[str, Any]:
        """Audit the disk against the in-memory catalog; never raises.

        Runs a fresh read-only recovery pass, deep-decodes every stored
        blob, and diffs the result against what this store believes —
        catching post-hoc bit rot, lost writes, and divergence between
        memory and disk.  Returns a JSON-ready report with ``ok``.
        """
        started = time.perf_counter()
        manager = RecoveryManager(
            self.fs, tracer=self.tracer, registry=self.registry
        )
        disk_catalog, report = manager.recover()
        problems: List[str] = []
        for damage in report.quarantined:
            problems.append(f"journal damage: {damage.reason}")
        for name, reason in report.snapshots_rejected:
            problems.append(f"snapshot damage: {name}: {reason}")
        for name in disk_catalog.names():
            for generation in disk_catalog.generations(name):
                entry = disk_catalog.get(name, generation)
                try:
                    unpack_blob(entry.blob)
                except CodecError as exc:
                    problems.append(
                        f"blob {name}@{generation} is undecodable: {exc}"
                    )
        if disk_catalog.active != self.catalog.active:
            problems.append(
                f"active pointers diverge: disk {disk_catalog.active} "
                f"vs memory {self.catalog.active}"
            )
        for name in self.catalog.names():
            for generation in self.catalog.generations(name):
                memory_entry = self.catalog.get(name, generation)
                try:
                    disk_entry = disk_catalog.get(name, generation)
                except StoreError:
                    problems.append(
                        f"{name}@{generation} present in memory, "
                        "missing on disk"
                    )
                    continue
                if disk_entry.blob != memory_entry.blob:
                    problems.append(
                        f"{name}@{generation} differs between disk and memory"
                    )
        if not disk_catalog.is_consistent():
            problems.append("disk catalog is internally inconsistent")
        return {
            "ok": not problems,
            "problems": problems,
            "recovery": report.to_dict(),
            "duration_s": time.perf_counter() - started,
        }
