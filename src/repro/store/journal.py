"""Append-only journal of integrity-framed scheme records.

Every mutation of the store is one self-contained record appended to
``journal.log``.  A record is byte-aligned and CRC-framed with the same
:class:`~repro.integrity.framing.FramingPolicy` machinery that frames
routing functions, so the detector already proven against single flips
and short bursts guards the storage path too::

    magic(1) | kind(1) | payload length(4, big-endian) | payload | CRC-16(2)

The CRC is computed over everything before it (header *and* payload), so
a flip anywhere in the record is detected.  Two record kinds exist:

* ``PUT``  — a new scheme generation: JSON metadata (name, generation,
  the full :class:`~repro.observability.manifest.RunManifest` dict) plus
  the :func:`~repro.core.persistence.pack_scheme` blob;
* ``SWAP`` — switch a name's *active* generation (JSON only).  Written
  by verified hot-swap after its PUT, so any journal prefix that
  contains a SWAP also contains its target.

:func:`scan_journal` parses a journal byte string defensively and never
raises on damage; it classifies what it finds:

* a record that ends past EOF is a **torn tail** — the expected artifact
  of a crash mid-append; the scan stops there;
* a complete record whose CRC fails verification is **quarantined** and
  skipped (its declared length is trusted for resynchronisation; if the
  length itself was hit, the next magic check fails and the rest of the
  journal is quarantined as an unreadable tail);
* a bad magic or kind byte makes the remaining bytes an **unreadable
  tail** — without a trustworthy header there is nothing to resync on.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bitio import BitArray
from repro.errors import StoreError
from repro.integrity import FramingPolicy, verify_frame

__all__ = [
    "RecordKind",
    "JournalRecord",
    "QuarantinedRange",
    "JournalScan",
    "encode_put",
    "encode_swap",
    "scan_journal",
]

JOURNAL_NAME = "journal.log"

_MAGIC = 0xA7
_HEADER_LEN = 6  # magic + kind + 4-byte payload length
_CRC_LEN = FramingPolicy.CRC16.overhead_bits // 8
_MAX_PAYLOAD = 1 << 25  # 32 MiB sanity cap on one record


class RecordKind(enum.IntEnum):
    """Wire tag of a journal record."""

    PUT = 1
    """A new scheme generation (metadata + packed blob)."""
    SWAP = 2
    """Activate an existing generation (metadata only)."""


@dataclass(frozen=True)
class JournalRecord:
    """One verified record, plus where it sat in the journal."""

    kind: RecordKind
    name: str
    generation: int
    manifest: Optional[Dict[str, Any]]
    blob: Optional[bytes]
    offset: int
    length: int


@dataclass(frozen=True)
class QuarantinedRange:
    """A damaged byte range the scan isolated instead of trusting."""

    offset: int
    length: int
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form for the quarantine report."""
        return {
            "offset": self.offset,
            "length": self.length,
            "reason": self.reason,
        }


@dataclass
class JournalScan:
    """Everything a defensive pass over journal bytes found."""

    records: List[JournalRecord] = field(default_factory=list)
    quarantined: List[QuarantinedRange] = field(default_factory=list)
    torn_tail_bytes: int = 0
    scanned_bytes: int = 0

    @property
    def clean(self) -> bool:
        """Whether the journal parsed end to end with no damage at all."""
        return not self.quarantined and self.torn_tail_bytes == 0


def _frame(head: bytes) -> bytes:
    """CRC-16 frame ``head`` (header + payload) into a full record."""
    bits = BitArray._from_packed(head, 8 * len(head))
    checksum = FramingPolicy.CRC16.checksum(bits)
    return head + checksum.to_bytes()


def _meta_bytes(name: str, generation: int, extra: Dict[str, Any]) -> bytes:
    meta = {"name": name, "generation": generation}
    meta.update(extra)
    return json.dumps(meta, sort_keys=True).encode("utf-8")


def encode_put(
    name: str,
    generation: int,
    manifest: Dict[str, Any],
    blob: bytes,
) -> bytes:
    """Encode a PUT record: JSON metadata + packed scheme blob."""
    if generation < 1:
        raise StoreError(f"generation must be >= 1, got {generation}")
    meta = _meta_bytes(name, generation, {"manifest": manifest})
    payload = len(meta).to_bytes(4, "big") + meta + blob
    if len(payload) > _MAX_PAYLOAD:
        raise StoreError(
            f"record payload of {len(payload)} bytes exceeds the "
            f"{_MAX_PAYLOAD}-byte cap"
        )
    head = bytes((_MAGIC, RecordKind.PUT)) + len(payload).to_bytes(4, "big")
    return _frame(head + payload)


def encode_swap(name: str, generation: int) -> bytes:
    """Encode a SWAP record activating ``generation`` of ``name``."""
    if generation < 1:
        raise StoreError(f"generation must be >= 1, got {generation}")
    payload = _meta_bytes(name, generation, {})
    head = bytes((_MAGIC, RecordKind.SWAP)) + len(payload).to_bytes(4, "big")
    return _frame(head + payload)


def _parse_payload(
    kind: RecordKind, payload: bytes, offset: int, length: int
) -> JournalRecord:
    """Decode a CRC-verified payload (raises ValueError on bad structure)."""
    if kind is RecordKind.PUT:
        if len(payload) < 4:
            raise ValueError("PUT payload too short for its meta header")
        meta_len = int.from_bytes(payload[:4], "big")
        if 4 + meta_len > len(payload):
            raise ValueError("PUT meta length exceeds payload")
        meta = json.loads(payload[4 : 4 + meta_len].decode("utf-8"))
        blob: Optional[bytes] = payload[4 + meta_len :]
        manifest = meta.get("manifest")
    else:
        meta = json.loads(payload.decode("utf-8"))
        blob = None
        manifest = None
    name = meta["name"]
    generation = meta["generation"]
    if not isinstance(name, str) or not isinstance(generation, int):
        raise ValueError("record metadata has wrong field types")
    return JournalRecord(
        kind=kind,
        name=name,
        generation=generation,
        manifest=manifest,
        blob=blob,
        offset=offset,
        length=length,
    )


def scan_journal(data: bytes) -> JournalScan:
    """Defensively parse journal bytes; damage is reported, never raised."""
    scan = JournalScan(scanned_bytes=len(data))
    offset = 0
    while offset < len(data):
        remaining = len(data) - offset
        if remaining < _HEADER_LEN + _CRC_LEN:
            scan.torn_tail_bytes = remaining
            break
        if data[offset] != _MAGIC:
            scan.quarantined.append(
                QuarantinedRange(
                    offset=offset,
                    length=remaining,
                    reason=(
                        f"bad magic 0x{data[offset]:02x} at offset {offset}: "
                        "unreadable tail"
                    ),
                )
            )
            break
        payload_len = int.from_bytes(data[offset + 2 : offset + 6], "big")
        record_len = _HEADER_LEN + payload_len + _CRC_LEN
        if payload_len > _MAX_PAYLOAD:
            scan.quarantined.append(
                QuarantinedRange(
                    offset=offset,
                    length=remaining,
                    reason=(
                        f"implausible payload length {payload_len} at offset "
                        f"{offset}: unreadable tail"
                    ),
                )
            )
            break
        if record_len > remaining:
            # The record runs past EOF: a crash mid-append left a prefix.
            scan.torn_tail_bytes = remaining
            break
        record = data[offset : offset + record_len]
        framed = BitArray._from_packed(record, 8 * len(record))
        if not verify_frame(framed, FramingPolicy.CRC16):
            scan.quarantined.append(
                QuarantinedRange(
                    offset=offset,
                    length=record_len,
                    reason=f"CRC-16 mismatch on record at offset {offset}",
                )
            )
            offset += record_len
            continue
        try:
            kind = RecordKind(record[1])
            scan.records.append(
                _parse_payload(
                    kind,
                    record[_HEADER_LEN : _HEADER_LEN + payload_len],
                    offset,
                    record_len,
                )
            )
        except (ValueError, KeyError, UnicodeDecodeError, TypeError) as exc:
            scan.quarantined.append(
                QuarantinedRange(
                    offset=offset,
                    length=record_len,
                    reason=(
                        f"undecodable record at offset {offset} "
                        f"({type(exc).__name__}: {exc})"
                    ),
                )
            )
        offset += record_len
    return scan
