"""Crash-safe durable storage for packed routing schemes.

The paper treats a routing table as an expensive, carefully counted bit
artifact; this package gives those bits a home that survives the disk's
failure modes.  An append-only journal of CRC-framed records
(:mod:`repro.store.journal`), periodic atomically-installed snapshots of
the generation-numbered catalog (:mod:`repro.store.catalog`), a recovery
manager that earns the catalog back from damaged bytes
(:mod:`repro.store.recovery`), and a facade tying them together with
verified hot-swap and compaction (:class:`~repro.store.store.SchemeStore`)
— all driven adversarially by a seeded fault-injecting filesystem shim
(:mod:`repro.store.faults`) over an explicit visible/durable byte model
(:mod:`repro.store.filesystem`).

This is the persistence layer the ROADMAP's routing-as-a-service server
loads from: a scheme written here can be served, verified, hot-swapped,
and recovered after any crash point without ever routing on bits that
failed their integrity check.
"""

from repro.store.catalog import (
    Catalog,
    CatalogEntry,
    decode_snapshot,
    encode_snapshot,
    snapshot_name,
    snapshot_sequence,
)
from repro.store.faults import (
    FaultyFilesystem,
    SimulatedCrash,
    StoreFault,
    StoreFaultKind,
    storage_faults,
)
from repro.store.filesystem import Filesystem, LocalFilesystem, MemoryFilesystem
from repro.store.journal import (
    JOURNAL_NAME,
    JournalRecord,
    JournalScan,
    QuarantinedRange,
    RecordKind,
    encode_put,
    encode_swap,
    scan_journal,
)
from repro.store.recovery import RecoveryManager, RecoveryReport
from repro.store.store import SchemeStore

__all__ = [
    "Catalog",
    "CatalogEntry",
    "Filesystem",
    "FaultyFilesystem",
    "JOURNAL_NAME",
    "JournalRecord",
    "JournalScan",
    "LocalFilesystem",
    "MemoryFilesystem",
    "QuarantinedRange",
    "RecordKind",
    "RecoveryManager",
    "RecoveryReport",
    "SchemeStore",
    "SimulatedCrash",
    "StoreFault",
    "StoreFaultKind",
    "decode_snapshot",
    "encode_put",
    "encode_snapshot",
    "encode_swap",
    "scan_journal",
    "snapshot_name",
    "snapshot_sequence",
    "storage_faults",
]
