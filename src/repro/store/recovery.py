"""Recovery: rebuild a consistent catalog from whatever the disk holds.

Opening a store *is* a recovery.  The :class:`RecoveryManager` never
assumes the bytes on disk are healthy; it earns the catalog back:

1. **Snapshots first.**  Snapshot files are tried newest → oldest; each
   must pass its whole-file CRC frame and decode cleanly.  A damaged
   snapshot is *rejected* (traced, counted) and the next older one is
   tried — falling back all the way to an empty base catalog.
2. **Journal replay.**  The journal is scanned defensively
   (:func:`~repro.store.journal.scan_journal`): verified records are
   replayed onto the base catalog — idempotently by
   ``(name, generation)``, so a journal that predates the snapshot it
   accompanies is harmless — while CRC-failed records are quarantined
   and a torn tail (the crash artifact) is measured and dropped.
3. **Graceful degradation.**  Damage never raises.  A SWAP whose target
   PUT was torn away is ignored (the previous generation keeps
   serving); a quarantined record costs exactly itself; the report
   carries every byte range that was not trusted so the operator — and
   the CI quarantine artifact — can see precisely what was lost.

Every pass emits a ``recover`` span (duration, source) plus ``reject``
spans per damaged range, and updates the ``repro_store_*`` metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.observability.registry import MetricsRegistry, get_registry
from repro.observability.tracer import Tracer
from repro.store.catalog import (
    Catalog,
    CatalogEntry,
    decode_snapshot,
    snapshot_sequence,
)
from repro.store.filesystem import Filesystem
from repro.store.journal import (
    JOURNAL_NAME,
    QuarantinedRange,
    RecordKind,
    scan_journal,
)
from repro.errors import StoreError

__all__ = ["RecoveryManager", "RecoveryReport"]


@dataclass
class RecoveryReport:
    """What one recovery pass found, trusted, and refused to trust."""

    source: str = "empty"
    """Where the catalog came from: ``journal`` | ``snapshot`` |
    ``snapshot+journal`` | ``empty``."""
    snapshot_used: Optional[str] = None
    snapshots_rejected: List[Tuple[str, str]] = field(default_factory=list)
    """(file name, reason) per snapshot that failed verification."""
    records_replayed: int = 0
    """Verified journal records inspected."""
    records_applied: int = 0
    """Records that changed the catalog (idempotent repeats excluded)."""
    swaps_ignored: int = 0
    """SWAP records whose target generation was missing (not trusted)."""
    quarantined: List[QuarantinedRange] = field(default_factory=list)
    torn_tail_bytes: int = 0
    journal_bytes: int = 0
    duration_s: float = 0.0

    @property
    def damage_count(self) -> int:
        """Quarantined ranges plus rejected snapshots (torn tails excluded:
        a torn tail is the *expected* artifact of a crash mid-append)."""
        return len(self.quarantined) + len(self.snapshots_rejected)

    @property
    def clean(self) -> bool:
        """Whether nothing at all had to be distrusted or dropped."""
        return self.damage_count == 0 and self.torn_tail_bytes == 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the CI quarantine-report artifact)."""
        return {
            "source": self.source,
            "snapshot_used": self.snapshot_used,
            "snapshots_rejected": [
                {"file": name, "reason": reason}
                for name, reason in self.snapshots_rejected
            ],
            "records_replayed": self.records_replayed,
            "records_applied": self.records_applied,
            "swaps_ignored": self.swaps_ignored,
            "quarantined": [item.to_dict() for item in self.quarantined],
            "torn_tail_bytes": self.torn_tail_bytes,
            "journal_bytes": self.journal_bytes,
            "duration_s": self.duration_s,
            "clean": self.clean,
        }


class RecoveryManager:
    """Rebuilds a consistent :class:`~repro.store.catalog.Catalog` from disk."""

    def __init__(
        self,
        fs: Filesystem,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.fs = fs
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        self.registry = registry if registry is not None else get_registry()

    # -- helpers --------------------------------------------------------------

    def _reject(self, reason: str, detail: str) -> None:
        if self.tracer is not None:
            self.tracer.reject(reason, detail=detail)
        self.registry.counter(
            "repro_store_quarantined_total", reason=reason
        ).inc()

    def _load_snapshot(
        self, report: RecoveryReport
    ) -> Tuple[Catalog, int]:
        """Newest verifiable snapshot (or an empty catalog), plus its bits."""
        candidates = sorted(
            (
                name
                for name in self.fs.list()
                if snapshot_sequence(name) is not None
            ),
            key=lambda name: snapshot_sequence(name) or 0,
            reverse=True,
        )
        for name in candidates:
            try:
                data = self.fs.read(name)
                catalog = decode_snapshot(data)
            except StoreError as exc:
                report.snapshots_rejected.append((name, str(exc)))
                self._reject("snapshot", f"{name}: {exc}")
                continue
            report.snapshot_used = name
            return catalog, 8 * len(data)
        return Catalog(), 0

    def _replay_journal(
        self, catalog: Catalog, report: RecoveryReport
    ) -> None:
        if not self.fs.exists(JOURNAL_NAME):
            return
        data = self.fs.read(JOURNAL_NAME)
        report.journal_bytes = len(data)
        scan = scan_journal(data)
        report.quarantined.extend(scan.quarantined)
        report.torn_tail_bytes = scan.torn_tail_bytes
        for damage in scan.quarantined:
            self._reject("record", damage.reason)
        report.records_replayed = len(scan.records)
        for record in scan.records:
            if record.kind is RecordKind.PUT:
                applied = catalog.apply_put(
                    CatalogEntry(
                        name=record.name,
                        generation=record.generation,
                        blob=record.blob if record.blob is not None else b"",
                        manifest=record.manifest,
                    )
                )
                if applied:
                    report.records_applied += 1
            else:
                if catalog.apply_swap(record.name, record.generation):
                    report.records_applied += 1
                else:
                    report.swaps_ignored += 1
                    self._reject(
                        "swap",
                        f"SWAP to missing generation {record.generation} "
                        f"of {record.name!r} at offset {record.offset}",
                    )

    # -- entry point ----------------------------------------------------------

    def recover(self) -> Tuple[Catalog, RecoveryReport]:
        """Rebuild the catalog; damage is reported, never raised."""
        started = time.perf_counter()
        report = RecoveryReport()
        catalog, snapshot_bits = self._load_snapshot(report)
        from_snapshot = report.snapshot_used is not None
        self._replay_journal(catalog, report)
        if from_snapshot and report.records_replayed:
            report.source = "snapshot+journal"
        elif from_snapshot:
            report.source = "snapshot"
        elif report.records_replayed:
            report.source = "journal"
        else:
            report.source = "empty"
        report.duration_s = time.perf_counter() - started
        self.registry.counter(
            "repro_store_recoveries_total", source=report.source
        ).inc()
        self.registry.histogram("repro_store_recovery_seconds").observe(
            report.duration_s
        )
        self.registry.gauge("repro_store_journal_bits").set(
            8 * report.journal_bytes
        )
        self.registry.gauge("repro_store_snapshot_bits").set(snapshot_bits)
        if self.tracer is not None:
            self.tracer.recover(
                detail=report.source,
                duration=report.duration_s,
                reason="degraded" if not report.clean else None,
            )
        return catalog, report
