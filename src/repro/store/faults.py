"""Seeded storage-fault injection for the scheme store.

The chaos engine (:mod:`repro.simulator.chaos`) attacks the *network*;
this module attacks the *disk* with the failure modes real storage
exhibits, so the store's crash-safety claims are tested against an
adversary rather than assumed:

* ``TORN_WRITE``  — an append persists only a prefix and the process
  dies mid-write (the classic torn journal record);
* ``SHORT_WRITE`` — an append silently writes fewer bytes than asked
  (no crash, the caller believes it succeeded);
* ``LOST_FSYNC``  — ``sync`` reports success but durable media never
  saw the bytes; a later crash reveals the lie;
* ``RENAME_FAIL`` — the atomic ``replace`` install raises instead of
  landing (snapshot installs and journal resets must survive this);
* ``BIT_ROT``     — a bit of an already-durable file flips post hoc
  (media decay; applied on demand via :meth:`FaultyFilesystem.rot`).

Faults are described by :class:`StoreFault` values targeting the *k*-th
operation of their kind, generated deterministically by
:func:`storage_faults` — the same seeded schedule-generator shape as the
chaos/corruption/churn axes — and enforced by
:class:`FaultyFilesystem`, a decorator over any
:class:`~repro.store.filesystem.Filesystem`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import StoreError
from repro.store.filesystem import Filesystem, MemoryFilesystem

__all__ = [
    "StoreFaultKind",
    "StoreFault",
    "SimulatedCrash",
    "FaultyFilesystem",
    "storage_faults",
]


class StoreFaultKind(str, enum.Enum):
    """What one injected storage fault does to the filesystem."""

    TORN_WRITE = "torn write"
    """An append persists a prefix, then the process crashes."""
    SHORT_WRITE = "short write"
    """An append silently persists a prefix (no crash, no error)."""
    LOST_FSYNC = "lost fsync"
    """``sync`` succeeds but durability is never achieved."""
    RENAME_FAIL = "rename fail"
    """The atomic ``replace`` install raises instead of landing."""
    BIT_ROT = "bit rot"
    """A bit of a durable file flips after the fact (media decay)."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SimulatedCrash(StoreError):
    """The fault plan killed the process mid-operation (simulation only)."""


@dataclass(frozen=True)
class StoreFault:
    """One scheduled storage fault.

    ``op_index`` counts operations of the fault's own kind (appends for
    the write faults, syncs for ``LOST_FSYNC``, replaces for
    ``RENAME_FAIL``), zero-based, so a plan composes independent axes
    without cross-talk.  ``fraction`` is the prefix kept by a torn/short
    write; ``bit_offset`` is the (modulo file length) position a
    ``BIT_ROT`` fault flips; ``path`` optionally pins a fault to one
    file name (``None`` matches any).
    """

    kind: StoreFaultKind
    op_index: int = 0
    fraction: float = 0.5
    bit_offset: int = 0
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op_index < 0:
            raise StoreError(
                f"fault op_index must be >= 0, got {self.op_index}"
            )
        if not 0.0 <= self.fraction < 1.0:
            raise StoreError(
                f"fault fraction must be in [0, 1), got {self.fraction}"
            )
        if self.bit_offset < 0:
            raise StoreError(
                f"fault bit_offset must be >= 0, got {self.bit_offset}"
            )


_WRITE_KINDS = (StoreFaultKind.TORN_WRITE, StoreFaultKind.SHORT_WRITE)


class FaultyFilesystem(Filesystem):
    """A :class:`Filesystem` decorator that enforces a fault plan.

    Pass-through for every operation the plan does not target.  The shim
    counts operations per fault kind; when a scheduled fault's index
    comes up it is *consumed* (fires once).  ``BIT_ROT`` faults are not
    operation-triggered: call :meth:`rot` to apply them post hoc.
    """

    def __init__(
        self, inner: Filesystem, faults: Iterable[StoreFault] = ()
    ) -> None:
        self.inner = inner
        self._pending: List[StoreFault] = list(faults)
        self._op_counts: Dict[StoreFaultKind, int] = {}
        self.fired: List[StoreFault] = []

    # -- plan machinery -------------------------------------------------------

    def _take(
        self, kinds: Tuple[StoreFaultKind, ...], name: str
    ) -> Optional[StoreFault]:
        """Consume and return the fault scheduled for this operation."""
        index = self._op_counts.get(kinds[0], 0)
        for kind in kinds:
            self._op_counts[kind] = index + 1
        for i, fault in enumerate(self._pending):
            if fault.kind not in kinds:
                continue
            if fault.op_index != index:
                continue
            if fault.path is not None and fault.path != name:
                continue
            self.fired.append(self._pending.pop(i))
            return self.fired[-1]
        return None

    @property
    def pending(self) -> List[StoreFault]:
        """Faults scheduled but not yet fired."""
        return list(self._pending)

    # -- Filesystem surface ---------------------------------------------------

    def read(self, name: str) -> bytes:
        return self.inner.read(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def append(self, name: str, data: bytes) -> None:
        fault = self._take(_WRITE_KINDS, name)
        if fault is None:
            self.inner.append(name, data)
            return
        kept = data[: int(len(data) * fault.fraction)]
        self.inner.append(name, kept)
        if fault.kind is StoreFaultKind.TORN_WRITE:
            # A torn write is a crash mid-write: the prefix it persisted
            # must be what a recovery sees, so sync it before dying.
            self.inner.sync(name)
            raise SimulatedCrash(
                f"torn write: {len(kept)} of {len(data)} bytes hit {name}"
            )

    def sync(self, name: str) -> None:
        fault = self._take((StoreFaultKind.LOST_FSYNC,), name)
        if fault is None:
            self.inner.sync(name)

    def replace(self, name: str, data: bytes) -> None:
        fault = self._take((StoreFaultKind.RENAME_FAIL,), name)
        if fault is not None:
            raise StoreError(
                f"rename fail: atomic install of {name} did not land"
            )
        self.inner.replace(name, data)

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def list(self) -> List[str]:
        return self.inner.list()

    # -- simulation-only surface ---------------------------------------------

    def rot(self, default_path: str = "journal.log") -> List[int]:
        """Apply every pending ``BIT_ROT`` fault; returns bit positions hit.

        Requires the wrapped filesystem to support post-hoc corruption
        (the :class:`~repro.store.filesystem.MemoryFilesystem` does).
        """
        if not isinstance(self.inner, MemoryFilesystem):
            raise StoreError(
                "bit rot injection needs a MemoryFilesystem underneath"
            )
        positions: List[int] = []
        rotted = [
            fault for fault in self._pending
            if fault.kind is StoreFaultKind.BIT_ROT
        ]
        for fault in rotted:
            self._pending.remove(fault)
            self.fired.append(fault)
            positions.append(
                self.inner.corrupt_bit(
                    fault.path or default_path, fault.bit_offset
                )
            )
        return positions

    def crash(self) -> None:
        """Forward a simulated power cut to the wrapped filesystem."""
        if not isinstance(self.inner, MemoryFilesystem):
            raise StoreError(
                "crash simulation needs a MemoryFilesystem underneath"
            )
        self.inner.crash()


def storage_faults(
    count: int,
    *,
    seed: int,
    kinds: Sequence[StoreFaultKind] = (
        StoreFaultKind.TORN_WRITE,
        StoreFaultKind.SHORT_WRITE,
        StoreFaultKind.LOST_FSYNC,
        StoreFaultKind.RENAME_FAIL,
        StoreFaultKind.BIT_ROT,
    ),
    horizon_ops: int = 16,
    max_bit_offset: int = 1 << 20,
) -> List[StoreFault]:
    """A seeded, deterministic plan of ``count`` storage faults.

    Mirrors the chaos schedule generators: same seed, same plan.  Op
    indices are drawn uniformly from ``[0, horizon_ops)`` per kind;
    torn/short writes keep a uniform fraction of the data; bit rot
    picks an unreduced offset (applied modulo the victim file length).
    """
    if count < 0:
        raise StoreError(f"fault count must be >= 0, got {count}")
    if not kinds:
        raise StoreError("storage fault plan needs at least one kind")
    if horizon_ops < 1:
        raise StoreError(f"horizon_ops must be >= 1, got {horizon_ops}")
    rng = random.Random(seed)
    used: Dict[StoreFaultKind, Set[int]] = {}
    plan: List[StoreFault] = []
    for _ in range(count):
        kind = rng.choice(tuple(kinds))
        taken = used.setdefault(kind, set())
        free = [i for i in range(horizon_ops) if i not in taken]
        if not free:
            continue  # this kind's horizon is saturated; best effort
        op_index = rng.choice(free)
        taken.add(op_index)
        plan.append(
            StoreFault(
                kind=kind,
                op_index=op_index,
                fraction=rng.uniform(0.0, 0.95),
                bit_offset=rng.randrange(max_bit_offset),
            )
        )
    return plan
