"""Theorem 10 as a codec: full-information routing contains a quarter of E(G).

On a diameter-2 graph, the full-information function at ``u`` lists, for
each non-neighbour ``w``, *all* intermediaries on shortest ``u → w`` paths
— which is precisely the adjacency between ``N(u)`` and ``w``.  So every
bit of ``E(G)`` between a neighbour and a non-neighbour of ``u`` — about
``(n/2)² = n²/4`` of them — is reconstructible from ``F(u)``:

    ``vw ∈ E  ⟺  v`` is among the shortest-path edges from ``u`` to ``w``.

Randomness of ``G`` then forces ``|F(u)| ≥ n²/4 - o(n²)`` per node and
``n³/4 - o(n³)`` in total, matching the trivial ``O(n³)`` upper bound of
:class:`~repro.core.full_information.FullInformationScheme`.
"""

from __future__ import annotations

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import CodecError
from repro.graphs import LabeledGraph
from repro.models import minimal_label_bits
from repro.core.full_information import FullInformationScheme
from repro.incompressibility.framework import GraphCodec

__all__ = ["Theorem10Codec"]


class Theorem10Codec(GraphCodec):
    """Encode a graph using one node's full-information routing function."""

    name = "theorem10-full-information"

    def __init__(self, scheme: FullInformationScheme, node: int) -> None:
        self._scheme = scheme
        self._node = node

    def encode(self, graph: LabeledGraph) -> BitArray:
        if graph != self._scheme.graph:
            raise CodecError("codec must encode the scheme's own graph")
        n = graph.n
        u = self._node
        width = minimal_label_bits(n)
        neighbors = set(graph.neighbors(u))
        non_neighbors = set(graph.non_neighbors(u))
        for w in non_neighbors:
            # The reconstruction identity needs distance(u, w) == 2.
            hops = self._scheme.function(u).shortest_edges(w)
            if any(not graph.has_edge(v, w) for v in hops):
                raise CodecError(
                    f"full-information entry for {w} is not distance-2-clean"
                )
        writer = BitWriter()
        writer.write_uint(u - 1, width)
        for x in graph.nodes:
            if x != u:
                writer.write_bit(1 if graph.has_edge(u, x) else 0)
        writer.write_prime(self._scheme.encode_function(u))
        # E(G) minus bits incident to u and minus every neighbour/non-neighbour
        # pair (those live inside F(u)).
        for a in graph.nodes:
            if a == u:
                continue
            for b in range(a + 1, n + 1):
                if b == u:
                    continue
                crossing = (a in neighbors and b in non_neighbors) or (
                    a in non_neighbors and b in neighbors
                )
                if crossing:
                    continue
                writer.write_bit(1 if graph.has_edge(a, b) else 0)
        return writer.getvalue()

    def decode(self, bits: BitArray, n: int) -> LabeledGraph:
        reader = BitReader(bits)
        width = minimal_label_bits(n)
        u = reader.read_uint(width) + 1
        neighbors = []
        for x in range(1, n + 1):
            if x != u and reader.read_bit():
                neighbors.append(x)
        neighbor_set = set(neighbors)
        non_neighbors = [
            w for w in range(1, n + 1) if w != u and w not in neighbor_set
        ]
        function_bits = reader.read_prime()
        edges = [(u, x) for x in neighbors]
        # Replay the scheme's per-destination bitmaps to recover every
        # neighbour/non-neighbour edge: vw ∈ E iff v is flagged for w.
        fn_reader = BitReader(function_bits)
        for w in range(1, n + 1):
            if w == u:
                continue
            flagged = [v for v in neighbors if fn_reader.read_bit()]
            if w in neighbor_set:
                continue  # bitmap {w} itself carries no extra edges
            for v in flagged:
                edges.append((v, w))
        for a in range(1, n + 1):
            if a == u:
                continue
            for b in range(a + 1, n + 1):
                if b == u:
                    continue
                crossing = (a in neighbor_set and b not in neighbor_set) or (
                    a not in neighbor_set and b in neighbor_set
                )
                if crossing:
                    continue
                if reader.read_bit():
                    edges.append((a, b))
        return LabeledGraph(n, edges)

    # -- accounting -------------------------------------------------------------

    def accounting(self, graph: LabeledGraph) -> dict[str, int]:
        """Measured ledger: deleted bits, overhead, and the |F(u)| bound."""
        n = graph.n
        u = self._node
        d = graph.degree(u)
        deleted = d * (n - 1 - d)
        function_bits = len(self._scheme.encode_function(u))
        encoded = len(self.encode(graph))
        baseline = n * (n - 1) // 2
        overhead = encoded - baseline + deleted - function_bits
        return {
            "function_bits": function_bits,
            "deleted_bits": deleted,
            "overhead_bits": overhead,
            "implied_function_bound": deleted - overhead,
        }
