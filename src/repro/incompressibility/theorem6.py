"""Theorem 6 as a codec: a routing function reveals ~n/2 edges of the graph.

The proof (model II ∧ α): describe ``G`` by node ``u``, its interconnection
row, a self-delimiting copy of the local routing function ``F(u)``, and
``E(G)`` with two groups of bits deleted —

* the ``n - 1`` bits incident to ``u`` (already in the row), and
* for every non-neighbour ``w``, the bit of edge ``{v, w}`` where ``v`` is
  the intermediary ``F(u)`` routes ``w`` through: on a diameter-2 graph
  that edge *must* exist, so it is reconstructible from ``F(u)``.

The description length is ``n(n-1)/2 + |F(u)| + O(log n) - (n/2 - o(n))``,
so randomness of ``G`` forces ``|F(u)| ≥ n/2 - o(n)`` — model II ∧ α needs
``Ω(n²)`` bits in total.  :meth:`Theorem6Codec.implied_function_bound`
computes the per-instance version of that inequality from measured sizes.
"""

from __future__ import annotations

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import CodecError
from repro.graphs import LabeledGraph
from repro.models import minimal_label_bits
from repro.core.two_level import TwoLevelScheme, decode_two_level_function
from repro.incompressibility.framework import GraphCodec

__all__ = ["Theorem6Codec"]


class Theorem6Codec(GraphCodec):
    """Encode a graph using one node's Theorem 1 routing function."""

    name = "theorem6-routing-function"

    def __init__(self, scheme: TwoLevelScheme, node: int) -> None:
        self._scheme = scheme
        self._node = node

    def _deleted_positions(self, graph: LabeledGraph) -> set[frozenset[int]]:
        """Edges recoverable from F(u): ``{intermediary(w), w}`` per non-neighbour."""
        u = self._node
        function = self._scheme.function(u)
        deleted = set()
        for w in graph.non_neighbors(u):
            v = function.intermediate_for(w)
            if not graph.has_edge(v, w):
                raise CodecError(
                    f"scheme routes {u} → {w} via non-adjacent intermediary {v}"
                )
            deleted.add(frozenset((v, w)))
        return deleted

    def encode(self, graph: LabeledGraph) -> BitArray:
        if graph is not self._scheme.graph and graph != self._scheme.graph:
            raise CodecError("codec must encode the scheme's own graph")
        n = graph.n
        u = self._node
        width = minimal_label_bits(n)
        function_bits = self._scheme.encode_function(u)
        deleted = self._deleted_positions(graph)
        writer = BitWriter()
        writer.write_uint(u - 1, width)
        for x in graph.nodes:
            if x != u:
                writer.write_bit(1 if graph.has_edge(u, x) else 0)
        writer.write_prime(function_bits)
        for a in graph.nodes:
            if a == u:
                continue
            for b in range(a + 1, n + 1):
                if b == u or frozenset((a, b)) in deleted:
                    continue
                writer.write_bit(1 if graph.has_edge(a, b) else 0)
        return writer.getvalue()

    def decode(self, bits: BitArray, n: int) -> LabeledGraph:
        reader = BitReader(bits)
        width = minimal_label_bits(n)
        u = reader.read_uint(width) + 1
        neighbors = []
        for x in range(1, n + 1):
            if x != u and reader.read_bit():
                neighbors.append(x)
        function = decode_two_level_function(
            u, n, tuple(neighbors), reader.read_prime()
        )
        edges = [(u, x) for x in neighbors]
        neighbor_set = set(neighbors)
        deleted = set()
        for w in range(1, n + 1):
            if w != u and w not in neighbor_set:
                v = function.intermediate_for(w)
                deleted.add(frozenset((v, w)))
                edges.append((v, w))
        for a in range(1, n + 1):
            if a == u:
                continue
            for b in range(a + 1, n + 1):
                if b == u or frozenset((a, b)) in deleted:
                    continue
                if reader.read_bit():
                    edges.append((a, b))
        return LabeledGraph(n, edges)

    # -- the inequality the theorem extracts ---------------------------------

    def accounting(self, graph: LabeledGraph) -> dict[str, int]:
        """The proof's ledger, measured on this instance.

        Returns the deleted-bit count, header overhead, embedded function
        size, and the implied lower bound on ``|F(u)|`` given a randomness
        deficiency budget of zero (add ``δ(n)`` for the general statement).
        """
        n = graph.n
        u = self._node
        function_bits = len(self._scheme.encode_function(u))
        deleted = len(self._deleted_positions(graph))
        encoded = len(self.encode(graph))
        baseline = n * (n - 1) // 2
        # encoded = baseline - deleted - (n-1) + header(u)+row+prime wrapper
        overhead = encoded - baseline + deleted - function_bits
        return {
            "function_bits": function_bits,
            "deleted_bits": deleted,
            "overhead_bits": overhead,
            "implied_function_bound": deleted - overhead,
        }

    def implied_function_bound(self, graph: LabeledGraph, deficiency: int = 0) -> int:
        """``|F(u)| ≥ deleted - overhead - δ`` for a ``δ``-random graph."""
        ledger = self.accounting(graph)
        return ledger["implied_function_bound"] - deficiency
