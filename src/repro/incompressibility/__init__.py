"""Executable incompressibility arguments.

Each of the paper's compression proofs is implemented as a
:class:`~repro.incompressibility.framework.GraphCodec` — a real
encoder/decoder whose measured length realises the proof's bit accounting:

* :class:`~repro.incompressibility.lemma1.Lemma1Codec` — degree deviations
  compress (Lemma 1);
* :class:`~repro.incompressibility.lemma2.Lemma2Codec` — distance > 2
  pairs compress (Lemma 2);
* :class:`~repro.incompressibility.lemma3.Lemma3Codec` — uncovered
  witnesses compress (Lemma 3);
* :class:`~repro.incompressibility.theorem6.Theorem6Codec` — a shortest
  path routing function reveals ``n/2`` edges (Theorem 6's ``Ω(n²)``);
* :class:`~repro.incompressibility.theorem10.Theorem10Codec` — a
  full-information function reveals ``n²/4`` edges (Theorem 10's ``Ω(n³)``).
"""

from repro.incompressibility.claim1 import Claim1Codec, coverage_deviation
from repro.incompressibility.framework import CodecReport, GraphCodec, evaluate_codec
from repro.incompressibility.lemma1 import Lemma1Codec
from repro.incompressibility.lemma2 import Lemma2Codec, find_distant_pair
from repro.incompressibility.lemma3 import (
    Lemma3Codec,
    cover_prefix_size,
    find_uncovered_witness,
)
from repro.incompressibility.theorem6 import Theorem6Codec
from repro.incompressibility.theorem10 import Theorem10Codec

__all__ = [
    "Claim1Codec",
    "CodecReport",
    "GraphCodec",
    "Lemma1Codec",
    "Lemma2Codec",
    "Lemma3Codec",
    "Theorem10Codec",
    "Theorem6Codec",
    "cover_prefix_size",
    "coverage_deviation",
    "evaluate_codec",
    "find_distant_pair",
    "find_uncovered_witness",
]
