"""Incompressibility arguments as executable graph codecs.

Every lower-bound proof in the paper has the same shape: *assume* some
structure (a deviant degree, a distant pair, a small routing function) and
build from it a description of ``G`` shorter than ``n(n-1)/2 - δ(n)`` bits,
contradicting randomness.  Here each proof is a :class:`GraphCodec`: a real
encoder/decoder pair whose output length can be measured and whose
round-trip is testable.  Running a codec on a graph *is* running the proof
on that graph:

* positive net savings ⇒ the graph was compressible ⇒ not ``δ``-random;
* on a random graph the codec must fail to save bits — and the measured
  deficit is exactly the quantity the theorem turns into a lower bound.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.bitio import BitArray
from repro.errors import CodecError
from repro.graphs import LabeledGraph, edge_code_length
from repro.observability import profile_section

__all__ = ["GraphCodec", "CodecReport", "evaluate_codec"]


class GraphCodec(abc.ABC):
    """An alternative self-delimiting description of a graph, given ``n``.

    ``n`` is side information (the paper conditions on it: ``C(E(G) | n)``),
    so decoders receive it explicitly.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def encode(self, graph: LabeledGraph) -> BitArray:
        """Produce the proof's alternative description of the graph.

        Raises :class:`~repro.errors.CodecError` when the structure the
        proof exploits is absent (e.g. no distant pair for Lemma 2) — that
        *is* the lemma's statement for random graphs.
        """

    @abc.abstractmethod
    def decode(self, bits: BitArray, n: int) -> LabeledGraph:
        """Reconstruct the graph exactly from the alternative description."""

    def savings(self, graph: LabeledGraph) -> int:
        """``|E(G)| - |encoding|`` — bits saved against the canonical code.

        If this exceeds the randomness deficiency ``δ(n)``, the graph is not
        ``δ``-random; contrapositively, on a ``δ``-random graph the savings
        are bounded by ``δ(n)``, which is the inequality every theorem
        exploits.
        """
        return edge_code_length(graph.n) - len(self.encode(graph))


@dataclass(frozen=True)
class CodecReport:
    """Measured outcome of running one codec on one graph."""

    codec: str
    n: int
    baseline_bits: int
    encoded_bits: int
    round_trip_ok: bool

    @property
    def savings(self) -> int:
        """Bits saved relative to the canonical ``E(G)``."""
        return self.baseline_bits - self.encoded_bits


def evaluate_codec(codec: GraphCodec, graph: LabeledGraph) -> CodecReport:
    """Encode, decode, compare; raise :class:`CodecError` on mismatch."""
    with profile_section(f"codec.{codec.name}.encode"):
        bits = codec.encode(graph)
    with profile_section(f"codec.{codec.name}.decode"):
        rebuilt = codec.decode(bits, graph.n)
    ok = rebuilt == graph
    if not ok:
        raise CodecError(
            f"codec {codec.name} failed to round-trip a graph on n={graph.n}"
        )
    return CodecReport(
        codec=codec.name,
        n=graph.n,
        baseline_bits=edge_code_length(graph.n),
        encoded_bits=len(bits),
        round_trip_ok=ok,
    )
