"""Claim 1 as a codec: skewed covering steps are compressible.

Claim 1 (inside Theorem 1) says that on a random graph the ``t``-th least
neighbour ``v_t`` of ``u`` covers close to half of the still-uncovered
non-neighbours: if ``|A_t|`` deviated from ``m_{t-1}/2`` by more than
``m_{t-1}/6``, the characteristic sequence of ``A_t`` inside the remainder
could be enumeratively coded below ``m_{t-1}`` bits (Chernoff/Eq. 2),
compressing ``E(G)``.

The codec encodes exactly that description:

``u, t | rows of u, v₁..v_{t-1} | enumerative code of A_t | rest of E(G)``

and reconstructs the graph.  Its measured saving is
``m_{t-1} - (code width of A_t) - overhead`` — positive precisely when the
coverage step is skewed, which on certified random graphs it never is.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bitio import (
    BitArray,
    BitReader,
    BitWriter,
    rank_subset,
    subset_code_width,
    unrank_subset,
)
from repro.errors import CodecError
from repro.graphs import LabeledGraph
from repro.models import minimal_label_bits
from repro.incompressibility.framework import GraphCodec

__all__ = ["Claim1Codec", "coverage_deviation"]


def _coverage_sets(
    graph: LabeledGraph, u: int, t: int
) -> Tuple[List[int], List[int], int]:
    """The remainder ``S = A₀ − ∪_{s<t} A_s``, the new block ``A_t ⊆ S``,
    and ``v_t`` (the t-th least neighbour of ``u``)."""
    neighbors = graph.neighbors(u)
    if t < 1 or t > len(neighbors):
        raise CodecError(f"node {u} has no covering step t={t}")
    remainder = set(graph.non_neighbors(u))
    for v in neighbors[: t - 1]:
        remainder -= graph.neighbor_set(v)
    v_t = neighbors[t - 1]
    block = sorted(remainder & graph.neighbor_set(v_t))
    return sorted(remainder), block, v_t


def coverage_deviation(graph: LabeledGraph, u: int, t: int) -> float:
    """``||A_t| - m_{t-1}/2| / m_{t-1}`` — Claim 1 bounds this by ~1/6."""
    remainder, block, _ = _coverage_sets(graph, u, t)
    if not remainder:
        return 0.0
    return abs(len(block) - len(remainder) / 2.0) / len(remainder)


class Claim1Codec(GraphCodec):
    """Encode a graph through one covering step's enumerative code."""

    name = "claim1-coverage"

    def __init__(self, node: int, step: int) -> None:
        self._node = node
        self._step = step

    def encode(self, graph: LabeledGraph) -> BitArray:
        n = graph.n
        u = self._node
        t = self._step
        remainder, block, v_t = _coverage_sets(graph, u, t)
        width = minimal_label_bits(n)
        writer = BitWriter()
        writer.write_uint(u - 1, width)
        writer.write_gamma(t)
        # Rows of u and v₁..v_{t-1}: every yet-unwritten incident bit, in
        # canonical order relative to the already-described node set.
        described = [u] + list(graph.neighbors(u)[: t - 1])
        for i, a in enumerate(described):
            for b in graph.nodes:
                if b == a or b in described[:i]:
                    continue
                writer.write_bit(1 if graph.has_edge(a, b) else 0)
        # A_t inside the remainder, enumeratively.
        positions = [remainder.index(w) for w in block]
        writer.write_gamma(len(block))
        writer.write_uint(
            rank_subset(positions, len(remainder)),
            subset_code_width(len(remainder), len(block)),
        )
        # The rest of E(G): bits not incident to the described nodes and
        # not of the form {v_t, w} for w in the remainder.
        described_set = set(described)
        deleted = {frozenset((v_t, w)) for w in remainder}
        for a in graph.nodes:
            if a in described_set:
                continue
            for b in range(a + 1, n + 1):
                if b in described_set or frozenset((a, b)) in deleted:
                    continue
                writer.write_bit(1 if graph.has_edge(a, b) else 0)
        return writer.getvalue()

    def decode(self, bits: BitArray, n: int) -> LabeledGraph:
        reader = BitReader(bits)
        width = minimal_label_bits(n)
        u = reader.read_uint(width) + 1
        t = reader.read_gamma()
        edges = []
        described: List[int] = [u]
        # u's row first; the least neighbours v₁.. are then derivable.
        u_neighbors: List[int] = []
        for b in range(1, n + 1):
            if b != u and reader.read_bit():
                edges.append((u, b))
                u_neighbors.append(b)
        for v in sorted(u_neighbors)[: t - 1]:
            for b in range(1, n + 1):
                if b == v or b in described:
                    continue
                if reader.read_bit():
                    edges.append((v, b))
            described.append(v)
        rebuilt = LabeledGraph(n, edges)  # partial: described rows only
        remainder = set(w for w in range(1, n + 1)
                        if w != u and w not in set(u_neighbors))
        for v in sorted(u_neighbors)[: t - 1]:
            remainder -= rebuilt.neighbor_set(v)
        remainder_sorted = sorted(remainder)
        v_t = sorted(u_neighbors)[t - 1]
        k = reader.read_gamma()
        rank = reader.read_uint(subset_code_width(len(remainder_sorted), k))
        block = {
            remainder_sorted[i]
            for i in unrank_subset(rank, len(remainder_sorted), k)
        }
        for w in block:
            edges.append((v_t, w))
        described_set = set(described)
        deleted = {frozenset((v_t, w)) for w in remainder_sorted}
        for a in range(1, n + 1):
            if a in described_set:
                continue
            for b in range(a + 1, n + 1):
                if b in described_set or frozenset((a, b)) in deleted:
                    continue
                if reader.read_bit():
                    edges.append((a, b))
        return LabeledGraph(n, edges)

    def expected_code_width(self, graph: LabeledGraph) -> int:
        """Enumerative width of the A_t block (vs ``m_{t-1}`` literal bits)."""
        remainder, block, _ = _coverage_sets(graph, self._node, self._step)
        return subset_code_width(len(remainder), len(block))
