"""Lemma 2 as a codec: a distant pair makes a graph compressible.

If nodes ``u < v`` are at distance greater than 2, then for every
neighbour ``w`` of ``u`` the edge ``{w, v}`` is *guaranteed absent* — so
all those bits of ``E(G)`` can be deleted and reconstructed as zeros.
The saving is ``d(u) ≈ n/2`` bits against a ``2 log n`` header, which a
``o(n)``-random graph cannot afford: hence random graphs have diameter 2.

The codec refuses (raises :class:`~repro.errors.CodecError`) on diameter-2
graphs — that refusal, observed across certified random instances, is the
lemma.  On a deliberately stretched graph (e.g. a path) it compresses.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import CodecError
from repro.graphs import LabeledGraph, get_context
from repro.models import minimal_label_bits
from repro.incompressibility.framework import GraphCodec

__all__ = ["Lemma2Codec", "find_distant_pair"]


def find_distant_pair(graph: LabeledGraph) -> Optional[Tuple[int, int]]:
    """The least pair ``u < v`` at distance > 2 (or unreachable), if any."""
    dist = get_context(graph).distances(max_distance=2)
    n = graph.n
    for u in range(1, n + 1):
        for v in range(u + 1, n + 1):
            if dist[u - 1, v - 1] < 0:
                return (u, v)
    return None


class Lemma2Codec(GraphCodec):
    """Encode a graph by deleting the provably-absent edges at a distant pair."""

    name = "lemma2-diameter"

    def __init__(self, pair: Optional[Tuple[int, int]] = None) -> None:
        self._pair = pair

    def encode(self, graph: LabeledGraph) -> BitArray:
        n = graph.n
        pair = self._pair or find_distant_pair(graph)
        if pair is None:
            raise CodecError(
                "Lemma 2 codec inapplicable: every pair is within distance 2 "
                "(the graph behaves Kolmogorov random)"
            )
        u, v = pair
        if u > v:
            u, v = v, u
        if graph.has_edge(u, v) or (
            graph.neighbor_set(u) & graph.neighbor_set(v)
        ):
            raise CodecError(
                f"pair ({u}, {v}) is within distance 2 — Lemma 2 needs a "
                f"distant pair"
            )
        width = minimal_label_bits(n)
        writer = BitWriter()
        writer.write_uint(u - 1, width)
        writer.write_uint(v - 1, width)
        # Stream E(G) in canonical order, dropping every bit {w, v} with
        # w ∈ N(u).  Because u < v, the bit for {w, u} always precedes the
        # bit for {w, v}, so the decoder knows N(u) membership in time.
        neighbors_of_u = graph.neighbor_set(u)
        for a in graph.nodes:
            for b in range(a + 1, n + 1):
                skip = (b == v and a in neighbors_of_u) or (
                    a == v and b in neighbors_of_u
                )
                if skip:
                    if graph.has_edge(a, b):
                        raise CodecError(
                            f"pair ({u}, {v}) is not distant: {a}-{b} exists"
                        )
                    continue
                writer.write_bit(1 if graph.has_edge(a, b) else 0)
        return writer.getvalue()

    def decode(self, bits: BitArray, n: int) -> LabeledGraph:
        reader = BitReader(bits)
        width = minimal_label_bits(n)
        u = reader.read_uint(width) + 1
        v = reader.read_uint(width) + 1
        neighbors_of_u: set[int] = set()
        edges = []
        for a in range(1, n + 1):
            for b in range(a + 1, n + 1):
                skip = (b == v and a in neighbors_of_u) or (
                    a == v and b in neighbors_of_u
                )
                if skip:
                    continue  # a provably-absent edge: bit is 0
                if reader.read_bit():
                    edges.append((a, b))
                    if a == u:
                        neighbors_of_u.add(b)
                    elif b == u:
                        neighbors_of_u.add(a)
        return LabeledGraph(n, edges)

    def overhead_bits(self, n: int) -> int:
        """Header cost: the two node identities."""
        return 2 * minimal_label_bits(n)
