"""Lemma 3 as a codec: an uncovered node makes a graph compressible.

Fix ``u`` and let ``A`` be its least ``(c+3) log n`` neighbours.  If some
node ``w`` is adjacent to neither ``u`` nor any member of ``A``, then the
``|A| + 1`` bits recording edges from ``w`` into ``A ∪ {u}`` are provably
zero and can be deleted after writing ``u``'s full interconnection row and
``w``'s identity.  The net saving is ``|A| - 2 log n ≈ (c+1) log n`` bits,
which a ``c log n``-random graph cannot afford — hence on such graphs every
node is covered through the least ``(c+3) log n`` neighbours.

The codec refuses on covered (random-like) graphs and compresses
constructed counterexamples.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import CodecError
from repro.graphs import LabeledGraph
from repro.models import minimal_label_bits
from repro.incompressibility.framework import GraphCodec

__all__ = ["Lemma3Codec", "cover_prefix_size", "find_uncovered_witness"]


def cover_prefix_size(n: int, c: float = 3.0) -> int:
    """``⌊(c+3) log n⌋`` — the size of the prefix ``A`` of least neighbours."""
    return int((c + 3.0) * math.log2(max(n, 2)))


def find_uncovered_witness(
    graph: LabeledGraph, c: float = 3.0
) -> Optional[Tuple[int, int]]:
    """A pair ``(u, w)`` violating the Lemma 3 cover, if one exists.

    ``w`` is adjacent to neither ``u`` nor any of the least
    ``(c+3) log n`` neighbours of ``u``.
    """
    prefix_size = cover_prefix_size(graph.n, c)
    for u in graph.nodes:
        neighbors = graph.neighbor_set(u)
        prefix = graph.neighbors(u)[:prefix_size]
        covered = set(prefix)
        for v in prefix:
            covered |= graph.neighbor_set(v)
        for w in graph.nodes:
            if w != u and w not in neighbors and w not in covered:
                return (u, w)
    return None


class Lemma3Codec(GraphCodec):
    """Encode a graph through an uncovered witness pair."""

    name = "lemma3-cover"

    def __init__(
        self, witness: Optional[Tuple[int, int]] = None, c: float = 3.0
    ) -> None:
        self._witness = witness
        self._c = c

    def encode(self, graph: LabeledGraph) -> BitArray:
        n = graph.n
        witness = self._witness or find_uncovered_witness(graph, self._c)
        if witness is None:
            raise CodecError(
                "Lemma 3 codec inapplicable: every node is covered through "
                "its least (c+3) log n neighbours"
            )
        u, w = witness
        if u == w:
            raise CodecError("witness nodes must differ")
        width = minimal_label_bits(n)
        prefix = graph.neighbors(u)[: cover_prefix_size(n, self._c)]
        known_absent = set(prefix) | {u}
        if graph.has_edge(u, w) or any(graph.has_edge(v, w) for v in prefix):
            raise CodecError(f"({u}, {w}) is not an uncovered witness")
        writer = BitWriter()
        writer.write_uint(u - 1, width)
        writer.write_uint(w - 1, width)
        # u's full interconnection row (literal, n-1 bits).
        for x in graph.nodes:
            if x != u:
                writer.write_bit(1 if graph.has_edge(u, x) else 0)
        # w's row, omitting the provably-absent entries into A ∪ {u}.
        for x in graph.nodes:
            if x != w and x not in known_absent:
                writer.write_bit(1 if graph.has_edge(w, x) else 0)
        # The rest of E(G), all positions not incident to u or w.
        for a in graph.nodes:
            if a in (u, w):
                continue
            for b in range(a + 1, n + 1):
                if b in (u, w):
                    continue
                writer.write_bit(1 if graph.has_edge(a, b) else 0)
        return writer.getvalue()

    def decode(self, bits: BitArray, n: int) -> LabeledGraph:
        reader = BitReader(bits)
        width = minimal_label_bits(n)
        u = reader.read_uint(width) + 1
        w = reader.read_uint(width) + 1
        edges = []
        u_neighbors = []
        for x in range(1, n + 1):
            if x != u and reader.read_bit():
                edges.append((u, x))
                u_neighbors.append(x)
        prefix = sorted(u_neighbors)[: cover_prefix_size(n, self._c)]
        known_absent = set(prefix) | {u}
        for x in range(1, n + 1):
            if x != w and x not in known_absent:
                if reader.read_bit():
                    edges.append((w, x))
        for a in range(1, n + 1):
            if a in (u, w):
                continue
            for b in range(a + 1, n + 1):
                if b in (u, w):
                    continue
                if reader.read_bit():
                    edges.append((a, b))
        return LabeledGraph(n, edges)

    def overhead_bits(self, n: int) -> int:
        """Header cost: the two node identities."""
        return 2 * minimal_label_bits(n)

    def expected_savings(self, n: int, degree: int | None = None) -> int:
        """``min(|A|, d(u)) - 2 log n`` — the compression a witness yields.

        (The provably-absent ``{u, w}`` bit saves nothing extra: it is
        already carried once inside ``u``'s literal row.)
        """
        prefix = cover_prefix_size(n, self._c)
        if degree is not None:
            prefix = min(prefix, degree)
        return prefix - self.overhead_bits(n)
