"""Lemma 1 as a codec: degree deviations are compressible.

The proof describes ``G`` by naming a node ``u``, its degree ``d``, the
*index* of its interconnection pattern among all patterns of that weight,
and the rest of ``E(G)`` verbatim.  A pattern of weight ``d`` costs
``log C(n-1, d)`` bits — strictly less than the ``n - 1`` literal bits
whenever ``d`` deviates from ``(n-1)/2``, by the Chernoff bound Eq. (2).
Hence a ``δ``-random graph can afford at most
``|d - (n-1)/2| = O(√((δ(n) + log n) n))``.

Running this codec on a graph with a skewed degree *actually compresses
it*; on a certified random graph the savings stay below ``δ(n)``.
"""

from __future__ import annotations

from typing import Optional

from repro.bitio import (
    BitArray,
    BitReader,
    BitWriter,
    rank_subset,
    subset_code_width,
    unrank_subset,
)
from repro.errors import CodecError
from repro.graphs import LabeledGraph
from repro.models import minimal_label_bits
from repro.incompressibility.framework import GraphCodec

__all__ = ["Lemma1Codec"]


class Lemma1Codec(GraphCodec):
    """Encode a graph through one node's enumeratively-coded pattern."""

    name = "lemma1-degree"

    def __init__(self, node: Optional[int] = None) -> None:
        self._node = node

    def _pick_node(self, graph: LabeledGraph) -> int:
        if self._node is not None:
            return self._node
        center = (graph.n - 1) / 2.0
        return max(graph.nodes, key=lambda u: (abs(graph.degree(u) - center), -u))

    def encode(self, graph: LabeledGraph) -> BitArray:
        n = graph.n
        if n < 2:
            raise CodecError("Lemma 1 codec needs at least two nodes")
        u = self._pick_node(graph)
        width = minimal_label_bits(n)
        others = [v for v in graph.nodes if v != u]
        positions = [
            i for i, v in enumerate(others) if graph.has_edge(u, v)
        ]
        d = len(positions)
        writer = BitWriter()
        writer.write_uint(u - 1, width)
        writer.write_uint(d, width)
        writer.write_uint(
            rank_subset(positions, n - 1), subset_code_width(n - 1, d)
        )
        for a in graph.nodes:
            if a == u:
                continue
            for b in range(a + 1, n + 1):
                if b == u:
                    continue
                writer.write_bit(1 if graph.has_edge(a, b) else 0)
        return writer.getvalue()

    def decode(self, bits: BitArray, n: int) -> LabeledGraph:
        reader = BitReader(bits)
        width = minimal_label_bits(n)
        u = reader.read_uint(width) + 1
        d = reader.read_uint(width)
        rank = reader.read_uint(subset_code_width(n - 1, d))
        others = [v for v in range(1, n + 1) if v != u]
        edges = [(u, others[i]) for i in unrank_subset(rank, n - 1, d)]
        for a in range(1, n + 1):
            if a == u:
                continue
            for b in range(a + 1, n + 1):
                if b == u:
                    continue
                if reader.read_bit():
                    edges.append((a, b))
        return LabeledGraph(n, edges)

    def overhead_bits(self, n: int) -> int:
        """Header cost: node identity plus degree, ``2 ⌈log(n+1)⌉`` bits."""
        return 2 * minimal_label_bits(n)
