"""Experiment runner: seeded sweeps of scheme sizes over random graphs.

All Monte-Carlo averages in the benches (the paper's Definition 5 uniform
averages) run through :func:`run_size_sweep`, which fixes the seed
derivation so every reported number is exactly reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core import build_scheme, verify_scheme
from repro.errors import SchemeBuildError
from repro.graphs import get_context, gnp_random_graph
from repro.models import RoutingModel

__all__ = ["SweepPoint", "SweepSummary", "run_size_sweep", "mean_total_bits",
           "summarize_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One (n, seed) measurement."""

    scheme: str
    n: int
    seed: int
    total_bits: int
    routing_bits: int
    label_bits: int
    aux_bits: int
    max_node_bits: int
    verified_max_stretch: float


def run_size_sweep(
    scheme_name: str,
    model: RoutingModel,
    ns: Sequence[int],
    seeds: Sequence[int] = (0, 1, 2),
    verify_pairs: int | None = 200,
    **scheme_params,
) -> List[SweepPoint]:
    """Measure a scheme's total size on seeded ``G(n, 1/2)`` samples.

    When ``verify_pairs`` is not None, each built scheme also routes that
    many sampled pairs so a size number can never come from a broken
    scheme.
    """
    points = []
    for n in ns:
        for seed in seeds:
            graph, scheme = _build_on_random_graph(
                scheme_name, model, n, seed, scheme_params
            )
            report = scheme.space_report()
            max_stretch = 0.0
            if verify_pairs is not None:
                result = verify_scheme(scheme, sample_pairs=verify_pairs, seed=seed)
                if not result.ok():
                    raise AssertionError(
                        f"{scheme_name} failed verification on n={n} seed={seed}: "
                        f"{result.failures[:3]} {result.violations[:3]}"
                    )
                max_stretch = result.max_stretch
            points.append(
                SweepPoint(
                    scheme=scheme_name,
                    n=n,
                    seed=seed,
                    total_bits=report.total_bits,
                    routing_bits=report.routing_bits,
                    label_bits=report.label_bits,
                    aux_bits=report.aux_bits,
                    max_node_bits=report.max_node_bits,
                    verified_max_stretch=max_stretch,
                )
            )
    return points


def _build_on_random_graph(scheme_name, model, n, seed, scheme_params, retries=25):
    """Sample graphs until the construction succeeds (deterministically).

    The paper's constructions hold on *almost all* graphs; a small-``n``
    sample occasionally falls outside the class (e.g. diameter 3), so the
    sweep conditions on the class by redrawing — with seeds derived from the
    original, keeping the whole run reproducible.
    """
    last_error = None
    for attempt in range(retries):
        # zlib.crc32 is stable across processes (unlike salted str hashing),
        # keeping every sweep byte-for-byte reproducible.
        graph_seed = zlib.crc32(
            f"{scheme_name}|{n}|{seed}|{attempt}".encode()
        ) & 0x7FFFFFFF
        graph = gnp_random_graph(n, seed=graph_seed)
        try:
            # One explicit context per sample: the build and the verify
            # pass that follows share its distance matrix, and redraws of
            # out-of-class samples never pollute a kept graph's cache.
            scheme = build_scheme(
                scheme_name, graph, model, ctx=get_context(graph),
                **scheme_params,
            )
            return graph, scheme
        except SchemeBuildError as exc:
            last_error = exc
    raise SchemeBuildError(
        f"no usable G({n}, 1/2) sample in {retries} draws for "
        f"{scheme_name}: {last_error}"
    )


def mean_total_bits(points: Sequence[SweepPoint]) -> Dict[int, float]:
    """Average total bits per ``n`` across seeds (the Corollary 1 estimate)."""
    by_n: Dict[int, List[int]] = {}
    for point in points:
        by_n.setdefault(point.n, []).append(point.total_bits)
    return {n: float(np.mean(totals)) for n, totals in sorted(by_n.items())}


@dataclass(frozen=True)
class SweepSummary:
    """Mean ± standard error of one n's samples (Monte-Carlo uncertainty)."""

    n: int
    samples: int
    mean: float
    stderr: float

    def __str__(self) -> str:
        return f"n={self.n}: {self.mean:.0f} ± {self.stderr:.0f} bits"


def summarize_sweep(points: Sequence[SweepPoint]) -> List[SweepSummary]:
    """Mean and standard error per ``n`` — the honest way to quote a
    Definition 5 Monte-Carlo estimate."""
    by_n: Dict[int, List[int]] = {}
    for point in points:
        by_n.setdefault(point.n, []).append(point.total_bits)
    summaries = []
    for n, totals in sorted(by_n.items()):
        count = len(totals)
        stderr = (
            float(np.std(totals, ddof=1)) / np.sqrt(count) if count > 1 else 0.0
        )
        summaries.append(
            SweepSummary(
                n=n, samples=count, mean=float(np.mean(totals)), stderr=stderr
            )
        )
    return summaries
