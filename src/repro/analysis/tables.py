"""Rendering the paper's Table 1 with measured entries.

Table 1 is a 3×3 grid (knowledge × labelling) in three sections: worst-case
lower bounds, average-case upper bounds, average-case lower bounds.  The
benches fill a :class:`Table1Entry` per cell they reproduce;
:func:`format_table1` lays the grid out exactly like the paper so the two
can be compared side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.models import Knowledge, Labeling

__all__ = ["Table1Entry", "format_table1", "PAPER_TABLE1"]

_Key = Tuple[str, Knowledge, Labeling]


@dataclass(frozen=True)
class Table1Entry:
    """One measured cell of Table 1."""

    section: str
    """One of 'worst-lower', 'avg-upper', 'avg-lower'."""
    knowledge: Knowledge
    labeling: Labeling
    paper_bound: str
    measured: str

    @property
    def key(self) -> _Key:
        """The cell coordinate."""
        return (self.section, self.knowledge, self.labeling)


PAPER_TABLE1: Dict[_Key, str] = {
    # worst case — lower bounds
    ("worst-lower", Knowledge.IB, Labeling.BETA): "Ω(n² log n) [3]",
    ("worst-lower", Knowledge.II, Labeling.ALPHA): "Ω(n² log n)",
    ("worst-lower", Knowledge.II, Labeling.BETA): "Ω(n²) [2]",
    ("worst-lower", Knowledge.II, Labeling.GAMMA): "Ω(n^(7/6)) [9]",
    # average case — upper bounds
    ("avg-upper", Knowledge.IA, Labeling.ALPHA): "O(n² log n)",
    ("avg-upper", Knowledge.IB, Labeling.ALPHA): "O(n²)",
    ("avg-upper", Knowledge.II, Labeling.ALPHA): "O(n²)",
    ("avg-upper", Knowledge.II, Labeling.GAMMA): "O(n log² n)",
    # average case — lower bounds
    ("avg-lower", Knowledge.IA, Labeling.ALPHA): "Ω(n² log n)",
    ("avg-lower", Knowledge.IB, Labeling.GAMMA): "Ω(n²)",
    ("avg-lower", Knowledge.II, Labeling.ALPHA): "Ω(n²)",
}
"""The filled cells of the paper's Table 1 (arrows/open cells omitted)."""

_SECTION_TITLES = {
    "worst-lower": "worst case — lower bounds",
    "avg-upper": "average case — upper bounds",
    "avg-lower": "average case — lower bounds",
}

_ROW_LABELS = {
    Knowledge.IA: "port assignment fixed (IA)",
    Knowledge.IB: "port assignment free (IB)",
    Knowledge.II: "neighbours known (II)",
}

_COLUMN_LABELS = {
    Labeling.ALPHA: "no relabelling (α)",
    Labeling.BETA: "permutation (β)",
    Labeling.GAMMA: "free relabelling (γ)",
}


def format_table1(
    entries: Iterable[Table1Entry], include_paper: bool = True
) -> str:
    """Render measured entries in the paper's Table 1 layout."""
    by_key: Dict[_Key, Table1Entry] = {entry.key: entry for entry in entries}
    column_order = [Labeling.ALPHA, Labeling.BETA, Labeling.GAMMA]
    row_order = [Knowledge.IA, Knowledge.IB, Knowledge.II]
    width = 50
    lines = ["Size of shortest path routing schemes: reproduction of Table 1", ""]
    header = " " * 30 + "".join(
        _COLUMN_LABELS[labeling].ljust(width) for labeling in column_order
    )
    for section in ("worst-lower", "avg-upper", "avg-lower"):
        lines.append(_SECTION_TITLES[section])
        lines.append(header)
        for knowledge in row_order:
            cells = []
            for labeling in column_order:
                key = (section, knowledge, labeling)
                entry: Optional[Table1Entry] = by_key.get(key)
                if entry is not None:
                    text = entry.measured
                    if include_paper:
                        text = f"{entry.paper_bound} | {text}"
                elif key in PAPER_TABLE1:
                    text = f"{PAPER_TABLE1[key]} | (not measured)"
                else:
                    text = "—"
                cells.append(text.ljust(width - 2)[: width - 2] + "  ")
            lines.append(_ROW_LABELS[knowledge].ljust(30) + "".join(cells))
        lines.append("")
    return "\n".join(lines)
