"""Analysis toolkit: growth-law fitting, sweeps, and the Table 1 renderer."""

from repro.analysis.average_case import Corollary1Estimate, corollary1_average
from repro.analysis.comparison import (
    DEFAULT_MENU,
    ComparisonRow,
    compare_schemes,
    format_comparison,
)
from repro.analysis.exact_average import (
    ExactAverage,
    all_graphs,
    exact_average_bits,
)
from repro.analysis.experiments import (
    SweepPoint,
    SweepSummary,
    mean_total_bits,
    run_size_sweep,
    summarize_sweep,
)
from repro.analysis.scaling import (
    GROWTH_LAWS,
    LawFit,
    PowerLawFit,
    best_law,
    fit_power_law,
)
from repro.analysis.tables import PAPER_TABLE1, Table1Entry, format_table1

__all__ = [
    "ComparisonRow",
    "Corollary1Estimate",
    "DEFAULT_MENU",
    "ExactAverage",
    "GROWTH_LAWS",
    "LawFit",
    "PAPER_TABLE1",
    "PowerLawFit",
    "SweepPoint",
    "SweepSummary",
    "Table1Entry",
    "all_graphs",
    "best_law",
    "compare_schemes",
    "corollary1_average",
    "format_comparison",
    "exact_average_bits",
    "fit_power_law",
    "format_table1",
    "mean_total_bits",
    "run_size_sweep",
    "summarize_sweep",
]
