"""Section 6 / Corollary 1: the average over *all* graphs, faithfully.

The paper's average-case bounds sum two contributions:

* on the ``1 − 1/n^c`` fraction of ``c log n``-random graphs, the compact
  construction's size;
* on the remaining sliver, the *trivial* upper bound (the full table,
  ``O(n² log n)``), whose weighted contribution vanishes.

:func:`corollary1_average` reproduces exactly that computation by
Monte-Carlo: sample uniform graphs, build the compact scheme where its
prerequisites hold, charge the full-table fallback where they do not, and
report both the blended mean and the fallback fraction — making the
"simple computation of the average" at the end of Section 6 executable.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.core import build_scheme
from repro.errors import AnalysisError, SchemeBuildError
from repro.graphs import get_context, gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel

__all__ = ["Corollary1Estimate", "corollary1_average"]

_FALLBACK_MODEL = RoutingModel(Knowledge.IA, Labeling.ALPHA)


@dataclass(frozen=True)
class Corollary1Estimate:
    """Monte-Carlo estimate of the Definition 5 average for one scheme."""

    scheme: str
    n: int
    samples: int
    fallback_count: int
    """Samples where the construction refused and the full table was charged."""
    # Sample means, deliberately real-valued (the accounted totals they
    # average stay int).
    mean_total_bits: float  # repro-lint: disable=R001
    mean_compact_bits: float  # repro-lint: disable=R001
    """Average over the samples the compact construction covered."""
    fallback_contribution: float
    """Share of the blended mean contributed by fallback samples."""

    @property
    def fallback_fraction(self) -> float:
        """Empirical counterpart of the paper's ``1/n^c`` sliver."""
        if self.samples == 0:
            return 0.0
        return self.fallback_count / self.samples


def corollary1_average(
    scheme_name: str,
    model: RoutingModel,
    n: int,
    samples: int = 30,
    seed: int = 0,
    **scheme_params,
) -> Corollary1Estimate:
    """Estimate the uniform average of T(G) with the paper's fallback rule."""
    if samples < 1:
        raise AnalysisError(f"need at least one sample, got {samples}")
    totals = []
    compact_totals = []
    fallback_total = 0.0
    fallback_count = 0
    for i in range(samples):
        graph_seed = zlib.crc32(
            f"corollary1|{scheme_name}|{n}|{seed}|{i}".encode()
        ) & 0x7FFFFFFF
        graph = gnp_random_graph(n, seed=graph_seed)
        # One context per sample: when the compact construction refuses,
        # the full-table fallback reuses whatever the failed attempt
        # already derived (degree statistics, partial distance work).
        ctx = get_context(graph)
        try:
            scheme = build_scheme(
                scheme_name, graph, model, ctx=ctx, **scheme_params
            )
            bits = scheme.space_report().total_bits
            compact_totals.append(bits)
        except SchemeBuildError:
            # The paper: "The trivial upper bound ... O(n² log n) for
            # shortest path routing on all graphs" covers the sliver.
            fallback = build_scheme("full-table", graph, _FALLBACK_MODEL, ctx=ctx)
            bits = fallback.space_report().total_bits
            fallback_total += bits
            fallback_count += 1
        totals.append(bits)
    mean_total = sum(totals) / samples
    return Corollary1Estimate(
        scheme=scheme_name,
        n=n,
        samples=samples,
        fallback_count=fallback_count,
        mean_total_bits=mean_total,
        mean_compact_bits=(
            sum(compact_totals) / len(compact_totals) if compact_totals else 0.0
        ),
        fallback_contribution=(
            fallback_total / samples / mean_total if mean_total else 0.0
        ),
    )
