"""The flow-sensitive rules: R010 seed provenance, R011 invalidation
discipline, R012 bit conservation, R013 exception-boundary policy.

Each rule is a thin adapter from the summaries computed by
:class:`~repro.analysis.flow.summaries.FlowAnalysis` to findings in the
shared lint registry.  The analysis itself is rule-agnostic; the rules
own only the judgement calls — what counts as a violation and how to
phrase it.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.flow.dataflow import AMBIENT, CONST, PARAM
from repro.analysis.flow.summaries import FlowAnalysis
from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import FlowRule, register_rule
from repro.analysis.lint.rules import _is_bit_identifier

__all__ = [
    "SeedProvenanceRule",
    "InvalidationDisciplineRule",
    "BitConservationRule",
    "ExceptionBoundaryRule",
]


@register_rule
class SeedProvenanceRule(FlowRule):
    """R010: every RNG must be constructed from an explicit seed."""

    rule_id = "R010"
    name = "seed-provenance"
    severity = Severity.ERROR
    description = (
        "random.Random / numpy Generator constructions must receive a seed "
        "traceable to an explicit parameter, manifest field or constant — "
        "transitively, through helper functions"
    )
    rationale = (
        "The RunManifest ledger replays experiments from recorded seeds; a "
        "single RNG whose seed is ambient (wall clock, OS entropy) or "
        "untraceable makes every derived number unreproducible. The per-file "
        "R004 catches bare module-level draws; R010 follows seeds through "
        "the call graph so a helper cannot launder one."
    )

    def check_project(self, analysis: FlowAnalysis) -> Iterator[Finding]:
        seen: Set[Tuple[str, int, int, str]] = set()

        def emit(path: str, line: int, col: int, message: str) -> Iterator[Finding]:
            key = (path, line, col, message)
            if key not in seen:
                seen.add(key)
                yield self.project_finding(path, line, col, message)

        for site in sorted(
            analysis.rng_sites.values(),
            key=lambda s: (s.path, s.lineno, s.col),
        ):
            if site.seed_prov is None:
                yield from emit(
                    site.path,
                    site.lineno,
                    site.col,
                    f"{site.constructor} constructed without a seed argument; "
                    "pass an explicit seed (parameter or RunManifest field)",
                )
                continue
            ambient = sorted(d for t, d in site.seed_prov if t == AMBIENT)
            if ambient:
                yield from emit(
                    site.path,
                    site.lineno,
                    site.col,
                    f"seed of {site.constructor} derives from ambient source "
                    f"{ambient[0]}; seeds must come from explicit parameters",
                )
                continue
            tags = {t for t, _ in site.seed_prov}
            if PARAM not in tags and CONST not in tags:
                yield from emit(
                    site.path,
                    site.lineno,
                    site.col,
                    f"seed of {site.constructor} cannot be traced to an "
                    "explicit seed parameter or constant",
                )
        for esc in sorted(
            analysis.seed_escalations,
            key=lambda e: (e.path, e.lineno, e.col),
        ):
            short = esc.callee.rsplit(".", maxsplit=1)[-1]
            yield from emit(
                esc.path,
                esc.lineno,
                esc.col,
                f"argument '{esc.param}' of {short}() feeds an RNG seed but "
                f"{esc.reason}",
            )


@register_rule
class InvalidationDisciplineRule(FlowRule):
    """R011: mutations of cached state must be invalidated before reads."""

    rule_id = "R011"
    name = "invalidation-discipline"
    severity = Severity.ERROR
    description = (
        "code that mutates Graph adjacency or packed table bits must call "
        "GraphContext.invalidate(...) covering the touched kinds before the "
        "context is read again"
    )
    rationale = (
        "GraphContext memoises every shared derivation; a mutation that "
        "skips invalidate() leaves stale distances or pristine bits to be "
        "served to the next consumer. The analysis tracks dirty derivation "
        "kinds across branches and calls, so a helper's read is charged to "
        "the caller that left the cache dirty."
    )

    def check_project(self, analysis: FlowAnalysis) -> Iterator[Finding]:
        seen: Set[Tuple[str, int, int, str]] = set()
        for violation in sorted(
            analysis.effect_violations,
            key=lambda v: (v.path, v.lineno, v.col, v.kind),
        ):
            where = (
                ""
                if violation.detail == "read"
                else f" ({violation.detail})"
            )
            message = (
                f"context kind '{violation.kind}' is read{where} after a "
                f"mutation at line {violation.mutated_line} with no "
                f"GraphContext.invalidate(...) covering it in between"
            )
            key = (violation.path, violation.lineno, violation.col, message)
            if key in seen:
                continue
            seen.add(key)
            yield self.project_finding(
                violation.path, violation.lineno, violation.col, message
            )


@register_rule
class BitConservationRule(FlowRule):
    """R012: ``*_bits`` values must be additive integer charges."""

    rule_id = "R012"
    name = "bit-conservation"
    severity = Severity.ERROR
    description = (
        "functions returning or assigning *_bits quantities may only "
        "combine additive integer charges (bitio primitives, lengths, "
        "integerised expressions) — float-valued calls are flagged through "
        "the call graph"
    )
    rationale = (
        "The paper's space bounds are exact bit counts; one float-valued "
        "helper silently turns a certified table size into an estimate. "
        "R001 polices operators per file; R012 follows calls across "
        "modules, so a *_bits value cannot absorb a math.log2 two hops away."
    )

    def check_project(self, analysis: FlowAnalysis) -> Iterator[Finding]:
        for module_name in sorted(analysis.project.modules):
            info = analysis.project.modules[module_name]
            units: List[Tuple[object, str]] = []
            for fn in info.functions.values():
                units.append((fn, fn.name))
            for cls in info.classes.values():
                for method in cls.methods.values():
                    units.append((method, method.name))
            for fn, name in units:
                yield from self._check_function(analysis, info, fn)  # type: ignore[arg-type]

    def _check_function(
        self, analysis: FlowAnalysis, info: object, fn: object
    ) -> Iterator[Finding]:
        from repro.analysis.flow.symbols import FunctionInfo, ModuleInfo

        assert isinstance(info, ModuleInfo) and isinstance(fn, FunctionInfo)
        returns_float = _annotated_float(fn.returns)
        is_bit_function = _is_bit_identifier(fn.name) and not returns_float
        for node in _function_statements(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if not is_bit_function:
                    continue
                for offender, reason in analysis.judge_bits_expr(
                    info, fn.cls, node.value, strict_division=True
                ):
                    yield self.project_finding(
                        info.path,
                        offender.lineno,
                        offender.col_offset,
                        f"{fn.name}() returns a *_bits quantity but combines "
                        f"{reason}; bit charges must stay additive integers",
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                    value = node.value
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                    value = node.value
                    if _annotated_float(node.annotation):
                        continue
                else:
                    targets = [node.target]
                    value = node.value
                if value is None or not _targets_bits(targets):
                    continue
                for offender, reason in analysis.judge_bits_expr(
                    info, fn.cls, value, strict_division=False
                ):
                    yield self.project_finding(
                        info.path,
                        offender.lineno,
                        offender.col_offset,
                        f"assignment to a *_bits name draws on {reason}; "
                        "bit charges must trace to integer bitio primitives",
                    )


def _annotated_float(annotation: object) -> bool:
    return isinstance(annotation, ast.Name) and annotation.id == "float"


def _targets_bits(targets: List[ast.expr]) -> bool:
    for target in targets:
        for leaf in ast.walk(target):
            if isinstance(leaf, ast.Name) and _is_bit_identifier(leaf.id):
                return True
            if isinstance(leaf, ast.Attribute) and _is_bit_identifier(leaf.attr):
                return True
    return False


def _function_statements(node: ast.AST) -> Iterator[ast.stmt]:
    """Statements of a function body, not descending into nested defs."""
    stack: List[ast.stmt] = list(node.body)  # type: ignore[attr-defined]
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)


# Module -> (entry points, exception classes allowed to escape them).
_BOUNDARIES: Tuple[Tuple[str, Tuple[str, ...], Tuple[str, ...]], ...] = (
    ("repro.core.persistence", ("unpack_blob",), ("CodecError",)),
    (
        "repro.integrity.framing",
        ("frame_bits", "unframe_bits", "verify_frame"),
        ("IntegrityError",),
    ),
)


@register_rule
class ExceptionBoundaryRule(FlowRule):
    """R013: boundary functions leak only their contracted exceptions."""

    rule_id = "R013"
    name = "exception-boundary"
    severity = Severity.ERROR
    description = (
        "only CodecError escapes codec entry points and only IntegrityError "
        "escapes framing — checked against the interprocedural escape sets, "
        "not a per-file pattern"
    )
    rationale = (
        "Persistence hardening (PR 4) promises callers a single exception "
        "type per boundary; a deep helper that grows a new raise silently "
        "breaks that contract. The escape analysis propagates raised "
        "classes through the call graph, filtered by try/except blocks "
        "aware of the ReproError hierarchy."
    )

    def check_project(self, analysis: FlowAnalysis) -> Iterator[Finding]:
        for module_name, entry_points, allowed in _BOUNDARIES:
            info = analysis.project.modules.get(module_name)
            if info is None:
                continue
            for entry in entry_points:
                fn = info.functions.get(entry)
                if fn is None:
                    continue
                escapes = analysis.escapes.get(fn.qualname, frozenset())
                offending = sorted(
                    name
                    for name in escapes
                    if analysis.is_repro_exception(name)
                    and not any(
                        allow in analysis.exception_ancestry(name)
                        for allow in allowed
                    )
                )
                if not offending:
                    continue
                allowed_text = " or ".join(allowed)
                yield self.project_finding(
                    info.path,
                    fn.node.lineno,  # type: ignore[attr-defined]
                    fn.node.col_offset,  # type: ignore[attr-defined]
                    f"boundary function {entry}() can leak "
                    f"{', '.join(offending)}; only {allowed_text} may escape "
                    "this entry point (wrap or translate internal failures)",
                )
