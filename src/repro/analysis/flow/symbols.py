"""Project symbol table: modules, classes, functions, import resolution.

The flow engine's ground truth.  Every linted file is parsed once into a
:class:`ModuleInfo`; the :class:`ProjectIndex` then answers the questions
the later layers ask — "what does the name ``chaos.random_faults`` mean
inside ``repro.cli``?", "which class defines ``pristine_bits``?", "is
``CodecError`` a subclass of ``ReproError``?" — using nothing but the
parsed source (no imports of the analysed code are ever executed).

Resolution follows re-export chains (``from repro.graphs.context import
get_context`` inside ``repro/graphs/__init__.py`` makes
``repro.graphs.get_context`` an alias of the real definition), so the
call graph built on top sees through the package facades the repo uses
everywhere.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_module_info",
]

_MAX_REEXPORT_DEPTH = 16


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    """``module.func`` or ``module.Class.func``."""
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None
    """Owning class name (unqualified) for methods."""
    params: Tuple[str, ...] = ()
    """Bindable parameter names in call order, ``self``/``cls`` excluded."""
    has_self: bool = False
    vararg: Optional[str] = None
    kwarg: Optional[str] = None
    kwonly: Tuple[str, ...] = ()
    defaults: Dict[str, ast.expr] = field(default_factory=dict)
    returns: Optional[ast.expr] = None

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    def bind_args(
        self, call: ast.Call, *, skip_first: bool = False
    ) -> Dict[str, ast.expr]:
        """Map a call's argument expressions onto parameter names.

        ``skip_first`` drops the first positional argument (an explicit
        ``self`` in ``Class.method(obj, ...)`` style calls).  Starred and
        double-starred arguments are ignored — static binding cannot see
        through them.
        """
        bound: Dict[str, ast.expr] = {}
        positional = [a for a in call.args if not isinstance(a, ast.Starred)]
        if skip_first and positional:
            positional = positional[1:]
        slots = list(self.params)
        for name, value in zip(slots, positional):
            bound[name] = value
        for keyword in call.keywords:
            if keyword.arg is not None and (
                keyword.arg in self.params or keyword.arg in self.kwonly
            ):
                bound[keyword.arg] = keyword.value
        return bound


@dataclass
class ClassInfo:
    """One class definition with its (unresolved) base names."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()
    """Raw dotted base names as written in the source."""
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed source file, symbolised."""

    name: str
    path: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    """Local alias -> fully qualified dotted target."""
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    constants: Set[str] = field(default_factory=set)
    """Module-level names bound to literal constants."""
    globals: Set[str] = field(default_factory=set)
    """All module-level assigned names (constants included)."""


def _function_info(
    node: ast.FunctionDef, module: str, cls: Optional[str]
) -> FunctionInfo:
    args = node.args
    positional = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    has_self = False
    if cls is not None and positional and not _is_staticmethod(node):
        has_self = True
        positional = positional[1:]
    defaults: Dict[str, ast.expr] = {}
    pos_with_defaults = list(args.posonlyargs) + list(args.args)
    for arg, default in zip(
        pos_with_defaults[len(pos_with_defaults) - len(args.defaults):],
        args.defaults,
    ):
        defaults[arg.arg] = default
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if kw_default is not None:
            defaults[arg.arg] = kw_default
    prefix = f"{module}.{cls}." if cls else f"{module}."
    return FunctionInfo(
        qualname=prefix + node.name,
        module=module,
        name=node.name,
        node=node,
        cls=cls,
        params=tuple(positional),
        has_self=has_self,
        vararg=args.vararg.arg if args.vararg else None,
        kwarg=args.kwarg.arg if args.kwarg else None,
        kwonly=tuple(a.arg for a in args.kwonlyargs),
        defaults=defaults,
        returns=node.returns,
    )


def _is_staticmethod(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = decorator
        while isinstance(name, ast.Attribute):
            name = name.value
        if isinstance(decorator, ast.Name) and decorator.id == "staticmethod":
            return True
        if (
            isinstance(decorator, ast.Attribute)
            and decorator.attr == "staticmethod"
        ):
            return True
    return False


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """Absolute dotted target of a ``from . import x`` style import."""
    parts = module.split(".")
    # Level 1 is "the current package": for a module that means its
    # parent, which is also what dropping one component yields.
    base = parts[: len(parts) - level] if level <= len(parts) else []
    if target:
        base = base + target.split(".")
    return ".".join(base)


def build_module_info(name: str, path: str, tree: ast.Module) -> ModuleInfo:
    """Symbolise one parsed module (no project context needed yet)."""
    info = ModuleInfo(name=name, path=path, tree=tree)
    for node in tree.body:
        _collect_statement(info, node)
    return info


def _collect_statement(info: ModuleInfo, node: ast.stmt) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            info.imports[local] = target
    elif isinstance(node, ast.ImportFrom):
        base = (
            _resolve_relative(info.name, node.level, node.module)
            if node.level
            else (node.module or "")
        )
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            info.imports[local] = f"{base}.{alias.name}" if base else alias.name
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        info.functions[node.name] = _function_info(node, info.name, None)  # type: ignore[arg-type]
        info.globals.add(node.name)
    elif isinstance(node, ast.ClassDef):
        cls = ClassInfo(
            qualname=f"{info.name}.{node.name}",
            module=info.name,
            name=node.name,
            node=node,
            bases=tuple(
                dotted
                for dotted in (_dotted(b) for b in node.bases)
                if dotted is not None
            ),
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[item.name] = _function_info(
                    item, info.name, node.name  # type: ignore[arg-type]
                )
        info.classes[node.name] = cls
        info.globals.add(node.name)
    elif isinstance(node, ast.Assign):
        for target in node.targets:
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    info.globals.add(leaf.id)
                    if isinstance(node.value, ast.Constant):
                        info.constants.add(leaf.id)
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        info.globals.add(node.target.id)
        if isinstance(node.value, ast.Constant):
            info.constants.add(node.target.id)
    elif isinstance(node, (ast.If, ast.Try)):
        # TYPE_CHECKING blocks and guarded imports still bind names.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                _collect_statement(info, child)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ProjectIndex:
    """The whole linted program: every module symbolised and cross-linked."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.method_index: Dict[str, List[FunctionInfo]] = {}
        for mod in self.modules.values():
            for fn in mod.functions.values():
                self.functions[fn.qualname] = fn
            for cls in mod.classes.values():
                self.classes[cls.qualname] = cls
                for method in cls.methods.values():
                    self.functions[method.qualname] = method
                    self.method_index.setdefault(method.name, []).append(method)

    # -- name resolution -----------------------------------------------------

    def resolve_export(self, module: str, symbol: str) -> Optional[str]:
        """Qualname of ``symbol`` as exported by ``module`` (re-exports
        followed); None when the module is outside the project or the
        symbol cannot be found."""
        seen = 0
        current_module, current_symbol = module, symbol
        while seen < _MAX_REEXPORT_DEPTH:
            seen += 1
            submodule = f"{current_module}.{current_symbol}"
            if submodule in self.modules:
                return submodule
            info = self.modules.get(current_module)
            if info is None:
                return None
            if current_symbol in info.functions:
                return info.functions[current_symbol].qualname
            if current_symbol in info.classes:
                return info.classes[current_symbol].qualname
            target = info.imports.get(current_symbol)
            if target is None:
                return None
            if target in self.modules:
                # `import x.y` style binding of a submodule name.
                return target
            head, _, tail = target.rpartition(".")
            if not head:
                return None
            current_module, current_symbol = head, tail
        return None

    def resolve(self, module: str, dotted: str) -> Optional[str]:
        """Project qualname for a dotted use-site name, or None.

        Handles ``helper`` (local def), ``get_context`` (from-import,
        re-exports followed), ``chaos.random_faults`` (module alias),
        ``RoutingScheme.build`` (class attribute) and deeper chains.
        """
        info = self.modules.get(module)
        if info is None:
            return None
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]

        resolved: Optional[str] = None
        if head in info.functions:
            resolved = info.functions[head].qualname
        elif head in info.classes:
            resolved = info.classes[head].qualname
        elif head in info.imports:
            target = info.imports[head]
            if target in self.modules:
                resolved = target
            else:
                t_head, _, t_tail = target.rpartition(".")
                resolved = (
                    self.resolve_export(t_head, t_tail) if t_head else None
                )
                if resolved is None and target in self.modules:
                    resolved = target
        if resolved is None:
            return None

        for part in rest:
            if resolved in self.modules:
                step = self.resolve_export(resolved, part)
                if step is None:
                    return None
                resolved = step
            elif resolved in self.classes:
                method = self.resolve_method(resolved, part)
                if method is None:
                    return None
                resolved = method.qualname
            else:
                return None
        return resolved

    def resolve_method(
        self, class_qualname: str, method: str
    ) -> Optional[FunctionInfo]:
        """Look ``method`` up on a class and its project-visible bases."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            for base in cls.bases:
                base_qual = self.resolve(cls.module, base)
                if base_qual is not None:
                    stack.append(base_qual)
        return None

    def class_ancestry(self, class_qualname: str) -> List[str]:
        """Unqualified names of the class and all project-visible bases."""
        names: List[str] = []
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                # External base: keep its last name component.
                names.append(qual.rsplit(".", maxsplit=1)[-1])
                continue
            names.append(cls.name)
            for base in cls.bases:
                base_qual = self.resolve(cls.module, base)
                stack.append(
                    base_qual if base_qual is not None else base
                )
        return names

    def iter_functions(self) -> Sequence[FunctionInfo]:
        """Every function and method, deterministically ordered."""
        return sorted(self.functions.values(), key=lambda f: f.qualname)
