"""Interprocedural summaries: seeds, effects, escapes and bit purity.

:class:`FlowAnalysis` runs four fixpoints over the project call graph,
each producing the per-function summary one of the flow rules consumes:

* **return provenance** — what each function's return value derives
  from, expressed in :mod:`repro.analysis.flow.dataflow` atoms with
  parameter atoms left symbolic so call sites can substitute their
  actual arguments;
* **RNG sites and seed sinks** — every ``random.Random`` /
  ``numpy.random.default_rng``-family construction, the provenance of
  its seed argument, and the transitive set of parameters that feed a
  seed (R010);
* **cache effects** — which :class:`~repro.graphs.context.GraphContext`
  derivation kinds a function leaves dirty, cleans via ``invalidate``,
  or reads while unprotected (R011);
* **exception escapes** — which named exception classes can propagate
  out of each function, with ``try``/``except`` filtering that follows
  the project's class hierarchy (R013);

plus a memoised **bit-purity** judgement (is a function's return value
an additive integer charge?) for R012.

Everything here is whole-program but still purely syntactic: no linted
code is imported, and every verdict can be traced to source lines.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import (
    CallGraph,
    CallSite,
    build_callgraph,
    resolve_call,
)
from repro.analysis.flow.dataflow import (
    AMBIENT,
    CALL,
    CONST,
    OPAQUE,
    PARAM,
    Env,
    ProvSet,
    ambient_source,
    evaluate,
    walk_function,
)
from repro.analysis.flow.symbols import FunctionInfo, ModuleInfo, ProjectIndex

__all__ = [
    "FlowAnalysis",
    "RngSite",
    "SeedEscalation",
    "EffectSummary",
    "EffectViolation",
    "ALL_KINDS",
    "PER_NODE_KINDS",
    "READER_KINDS",
]

_MAX_PASSES = 6

# ---------------------------------------------------------------------------
# R010 vocabulary
# ---------------------------------------------------------------------------

# Normalised constructor targets -> index/keyword of the seed argument.
# ``random.SystemRandom`` is deliberately absent: it is OS entropy by
# design and R004 already blesses it for non-reproducible uses.
_RNG_CONSTRUCTORS: Dict[str, Tuple[int, str]] = {
    "random.Random": (0, "x"),
    "numpy.random.default_rng": (0, "seed"),
    "numpy.random.RandomState": (0, "seed"),
    "numpy.random.Generator": (0, "bit_generator"),
    "numpy.random.PCG64": (0, "seed"),
    "numpy.random.SeedSequence": (0, "entropy"),
    "np.random.default_rng": (0, "seed"),
    "np.random.RandomState": (0, "seed"),
    "np.random.Generator": (0, "bit_generator"),
    "np.random.PCG64": (0, "seed"),
    "np.random.SeedSequence": (0, "entropy"),
}

# Builtin calls whose result derives entirely from their arguments.
_PASSTHROUGH_BUILTINS = frozenset(
    {
        "int", "float", "str", "bytes", "bool", "abs", "round", "len",
        "min", "max", "sum", "sorted", "tuple", "list", "set", "dict",
        "frozenset", "hash", "divmod", "pow", "zip", "enumerate",
        "reversed", "next", "iter", "range",
    }
)

# ---------------------------------------------------------------------------
# R011 vocabulary
# ---------------------------------------------------------------------------

ALL_KINDS = frozenset(
    {
        "distances",
        "bfs_tree",
        "eccentricity",
        "degree_stats",
        "sorted_adjacency",
        "port_table",
        "pristine_bits",
    }
)
PER_NODE_KINDS = frozenset(
    {"bfs_tree", "eccentricity", "sorted_adjacency", "pristine_bits"}
)
"""Kinds a ``invalidate(nodes=...)`` call without ``kinds`` drops
(mirrors ``GraphContext._invalidation_selects``)."""

READER_KINDS: Dict[str, str] = {
    "distances": "distances",
    "bfs_tree": "bfs_tree",
    "ball": "bfs_tree",
    "eccentricity": "eccentricity",
    "degree_stats": "degree_stats",
    "sorted_adjacency": "sorted_adjacency",
    "port_table": "port_table",
    "pristine_bits": "pristine_bits",
}
"""GraphContext accessor name -> derivation kind it serves."""

# Attribute-name prefixes whose stores/mutations dirty context kinds.
# ``_adj`` covers the adjacency family (``_adj_sets``, ``_adj_sorted``).
_MUTATION_PREFIXES: Tuple[Tuple[str, FrozenSet[str]], ...] = (
    ("_adj", ALL_KINDS),
    ("_function_cache", frozenset({"pristine_bits"})),
)

# Idiomatic cache *fills* — ``cache[k] = compute(k)`` — write the value a
# cold lookup would have computed anyway, so a plain subscript store to
# these attributes is not treated as a mutation.  Overwrites through
# ``del`` / ``clear`` / ``update`` / rebinding still are.
_FILL_IDIOM_ATTRS = frozenset({"_function_cache"})

_MUTATOR_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "pop", "popleft", "remove", "setdefault", "update",
        "__setitem__",
    }
)

# ---------------------------------------------------------------------------
# R012 vocabulary
# ---------------------------------------------------------------------------

_INTEGERIZERS = frozenset(
    {"int", "len", "round", "math.ceil", "math.floor", "ceil", "floor"}
)
_COMBINATORS = frozenset({"sum", "max", "min", "abs"})
_FLOAT_CALLS = frozenset(
    {
        "math.log", "math.log2", "math.log10", "math.log1p", "math.sqrt",
        "math.exp", "math.pow", "math.lgamma", "math.comb_float",
        "statistics.mean", "statistics.fmean", "statistics.median",
        "statistics.stdev", "statistics.pstdev", "statistics.variance",
        "np.mean", "numpy.mean", "np.log2", "numpy.log2", "np.log",
        "numpy.log", "np.sqrt", "numpy.sqrt", "np.average",
        "numpy.average", "float",
    }
)

# ---------------------------------------------------------------------------
# R013 vocabulary
# ---------------------------------------------------------------------------

_BUILTIN_PARENTS: Dict[str, str] = {
    "UnicodeDecodeError": "ValueError",
    "UnicodeEncodeError": "ValueError",
    "KeyError": "LookupError",
    "IndexError": "LookupError",
    "OverflowError": "ArithmeticError",
    "ZeroDivisionError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "FileNotFoundError": "OSError",
    "PermissionError": "OSError",
    "IsADirectoryError": "OSError",
    "TimeoutError": "OSError",
    "ValueError": "Exception",
    "LookupError": "Exception",
    "ArithmeticError": "Exception",
    "OSError": "Exception",
    "TypeError": "Exception",
    "AttributeError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "StopIteration": "Exception",
    "EOFError": "Exception",
    "MemoryError": "Exception",
    "AssertionError": "Exception",
}
_CATCH_ALL = frozenset({"Exception", "BaseException"})


@dataclass
class RngSite:
    """One RNG construction, with the provenance of its seed."""

    function: str
    """Qualname of the enclosing (pseudo-)function."""
    module: str
    path: str
    lineno: int
    col: int
    constructor: str
    """The normalised constructor target (``random.Random``, ...)."""
    seed_prov: Optional[ProvSet]
    """Provenance of the seed argument; None when no seed was passed."""


@dataclass
class SeedEscalation:
    """A call site that feeds an irreproducible value into a seed chain."""

    function: str
    path: str
    lineno: int
    col: int
    callee: str
    param: str
    reason: str


@dataclass
class EffectSummary:
    """What one function does to GraphContext memo kinds, from outside."""

    outstanding: FrozenSet[str] = frozenset()
    """Kinds left dirty (mutated, not invalidated) at exit."""
    cleans: FrozenSet[str] = frozenset()
    """Kinds guaranteed invalidated on every path through the function."""
    exposed_reads: FrozenSet[str] = frozenset()
    """Kinds read before this function mutates or cleans them itself —
    i.e. reads that observe whatever dirt the caller left outstanding."""

    def key(self) -> Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]:
        return (self.outstanding, self.cleans, self.exposed_reads)


@dataclass
class EffectViolation:
    """A context read that can observe a mutation not yet invalidated."""

    function: str
    path: str
    lineno: int
    col: int
    kind: str
    mutated_line: int
    detail: str


@dataclass
class _EffectState:
    outstanding: Set[str] = field(default_factory=set)
    cleaned: Set[str] = field(default_factory=set)
    exposed: Set[str] = field(default_factory=set)
    touched: Set[str] = field(default_factory=set)
    """Kinds this function has mutated or cleaned at this point (its own
    reads of these observe local state, not the caller's)."""
    mutation_lines: Dict[str, int] = field(default_factory=dict)

    def copy(self) -> "_EffectState":
        return _EffectState(
            outstanding=set(self.outstanding),
            cleaned=set(self.cleaned),
            exposed=set(self.exposed),
            touched=set(self.touched),
            mutation_lines=dict(self.mutation_lines),
        )

    def merge(self, other: "_EffectState") -> None:
        self.outstanding |= other.outstanding
        self.cleaned &= other.cleaned
        self.exposed |= other.exposed
        self.touched &= other.touched
        for kind, line in other.mutation_lines.items():
            self.mutation_lines.setdefault(kind, line)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", maxsplit=1)[-1].strip("'\" []")
    return None


class FlowAnalysis:
    """All interprocedural facts the flow rules need, computed once."""

    def __init__(
        self, project: ProjectIndex, graph: Optional[CallGraph] = None
    ) -> None:
        self.project = project
        self.graph = graph if graph is not None else build_callgraph(project)
        self.return_prov: Dict[str, ProvSet] = {}
        self.rng_sites: Dict[int, RngSite] = {}
        self.site_args: Dict[int, Dict[str, ProvSet]] = {}
        self.seed_sinks: Dict[str, Set[str]] = {}
        self.seed_escalations: List[SeedEscalation] = []
        self.effects: Dict[str, EffectSummary] = {}
        self.effect_violations: List[EffectViolation] = []
        self.escapes: Dict[str, FrozenSet[str]] = {}
        self._purity: Dict[str, Optional[bool]] = {}
        self._purity_stack: Set[str] = set()
        self._analyzed = False

    def run(self) -> "FlowAnalysis":
        """Compute every summary (idempotent)."""
        if self._analyzed:
            return self
        self._analyzed = True
        self._provenance_fixpoint()
        self._seed_sink_fixpoint()
        self._effects_fixpoint()
        self._escape_fixpoint()
        return self

    # -- shared helpers -------------------------------------------------------

    def normalise(self, module: str, dotted: str) -> str:
        """Map a dotted use-site name through the module's import aliases."""
        info = self.project.modules.get(module)
        if info is None:
            return dotted
        head, _, tail = dotted.partition(".")
        target = info.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{tail}" if tail else target

    def _walk_units(self) -> List[Tuple[ModuleInfo, Optional[FunctionInfo], str]]:
        """Every analysable unit: (module, function-or-None, qualname).

        ``None`` marks the module-level pseudo-function.
        """
        units: List[Tuple[ModuleInfo, Optional[FunctionInfo], str]] = []
        for name in sorted(self.project.modules):
            info = self.project.modules[name]
            units.append((info, None, f"{name}.<module>"))
            for fn in info.functions.values():
                units.append((info, fn, fn.qualname))
            for cls in info.classes.values():
                for method in cls.methods.values():
                    units.append((info, method, method.qualname))
        return units

    @staticmethod
    def _unit_body(info: ModuleInfo, fn: Optional[FunctionInfo]) -> List[ast.stmt]:
        if fn is None:
            return [
                stmt
                for stmt in info.tree.body
                if not isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                )
            ]
        return list(fn.node.body)  # type: ignore[attr-defined]

    @staticmethod
    def _unit_params(fn: Optional[FunctionInfo]) -> FrozenSet[str]:
        if fn is None:
            return frozenset()
        names: Set[str] = set(fn.params) | set(fn.kwonly)
        if fn.vararg:
            names.add(fn.vararg)
        if fn.kwarg:
            names.add(fn.kwarg)
        if fn.has_self:
            args = fn.node.args  # type: ignore[attr-defined]
            positional = list(args.posonlyargs) + list(args.args)
            if positional:
                names.add(positional[0].arg)
        return frozenset(names)

    # -- return provenance ----------------------------------------------------

    def _provenance_fixpoint(self) -> None:
        units = self._walk_units()
        for _ in range(_MAX_PASSES):
            changed = False
            for info, fn, qualname in units:
                result = self._walk_provenance(info, fn, qualname)
                if self.return_prov.get(qualname) != result:
                    self.return_prov[qualname] = result
                    changed = True
            if not changed:
                break

    def _walk_provenance(
        self, info: ModuleInfo, fn: Optional[FunctionInfo], qualname: str
    ) -> ProvSet:
        params = self._unit_params(fn)
        consts = frozenset(info.constants)
        returned: Set[Tuple[str, str]] = set()
        cls = fn.cls if fn is not None else None

        def hook(call: ast.Call, env: Env) -> ProvSet:
            return self._call_provenance(
                info, cls, qualname, params, consts, call, env, hook
            )

        def on_statement(stmt: ast.stmt, env: Env) -> None:
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                returned.update(
                    evaluate(stmt.value, env, params, consts, hook)
                )

        walk_function(
            self._unit_body(info, fn),
            Env(),
            params,
            consts,
            hook,
            on_statement=on_statement,
        )
        if not returned:
            return frozenset({(CONST, "")})
        return frozenset(returned)

    def _call_provenance(
        self,
        info: ModuleInfo,
        cls: Optional[str],
        caller: str,
        params: FrozenSet[str],
        consts: FrozenSet[str],
        call: ast.Call,
        env: Env,
        hook: "object",
    ) -> ProvSet:
        def arg_prov(expr: ast.expr) -> ProvSet:
            return evaluate(expr, env, params, consts, hook)  # type: ignore[arg-type]

        dotted = _dotted(call.func)
        full = self.normalise(info.name, dotted) if dotted else None

        if full is not None:
            source = ambient_source(
                dotted or "", lambda d: self.normalise(info.name, d)
            )
            if source is not None:
                return frozenset({(AMBIENT, source)})
            rng = _RNG_CONSTRUCTORS.get(full)
            if rng is not None:
                seed = self._seed_argument(call, rng)
                seed_prov = arg_prov(seed) if seed is not None else None
                self.rng_sites[id(call)] = RngSite(
                    function=caller,
                    module=info.name,
                    path=info.path,
                    lineno=call.lineno,
                    col=call.col_offset,
                    constructor=full,
                    seed_prov=seed_prov,
                )
                return seed_prov if seed_prov is not None else frozenset(
                    {(OPAQUE, full)}
                )

        callee, _display, via_self = resolve_call(
            self.project, info.name, cls, call
        )
        if callee is not None and callee in self.project.functions:
            target = self.project.functions[callee]
            skip_first = self._explicit_self_call(info, target, call, via_self)
            bound = target.bind_args(call, skip_first=skip_first)
            bound_prov = {name: arg_prov(e) for name, e in bound.items()}
            self.site_args[id(call)] = bound_prov
            ret = self.return_prov.get(callee)
            if ret is None:
                return frozenset({(CALL, callee)})
            out: Set[Tuple[str, str]] = set()
            for tag, detail in ret:
                if tag == PARAM:
                    if detail in bound_prov:
                        out |= bound_prov[detail]
                    elif detail in target.defaults:
                        default = target.defaults[detail]
                        out |= (
                            frozenset({(CONST, "")})
                            if isinstance(default, ast.Constant)
                            else frozenset({(OPAQUE, f"{callee}:{detail}")})
                        )
                    elif target.has_self and detail == self._self_name(target):
                        out.add((OPAQUE, f"{callee}:self"))
                    else:
                        out.add((OPAQUE, f"{callee}:{detail}"))
                else:
                    out.add((tag, detail))
            return frozenset(out) if out else frozenset({(CONST, "")})

        # External or unresolved: the result derives from the arguments.
        combined: Set[Tuple[str, str]] = set()
        for arg in call.args:
            combined |= arg_prov(
                arg.value if isinstance(arg, ast.Starred) else arg
            )
        for keyword in call.keywords:
            combined |= arg_prov(keyword.value)
        if combined:
            return frozenset(combined)
        if dotted is not None and dotted.split(".")[0] in _PASSTHROUGH_BUILTINS:
            return frozenset({(CONST, "")})
        return frozenset({(OPAQUE, dotted or "<dynamic>")})

    @staticmethod
    def _self_name(fn: FunctionInfo) -> Optional[str]:
        if not fn.has_self:
            return None
        args = fn.node.args  # type: ignore[attr-defined]
        positional = list(args.posonlyargs) + list(args.args)
        return positional[0].arg if positional else None

    def _explicit_self_call(
        self,
        info: ModuleInfo,
        target: FunctionInfo,
        call: ast.Call,
        via_self: bool,
    ) -> bool:
        """``Class.method(obj, ...)`` passes the instance positionally."""
        if not target.has_self or via_self:
            return False
        dotted = _dotted(call.func)
        if dotted is None or "." not in dotted:
            return False
        head = dotted.split(".")[0]
        resolved = self.project.resolve(info.name, head)
        return resolved is not None and resolved in self.project.classes

    @staticmethod
    def _seed_argument(
        call: ast.Call, slot: Tuple[int, str]
    ) -> Optional[ast.expr]:
        index, keyword = slot
        positional = [a for a in call.args if not isinstance(a, ast.Starred)]
        if len(positional) > index:
            return positional[index]
        for kw in call.keywords:
            if kw.arg == keyword:
                return kw.value
        return None

    # -- seed sinks (R010 interprocedural step) -------------------------------

    def _seed_sink_fixpoint(self) -> None:
        """Propagate "this parameter feeds an RNG seed" to callers.

        A function whose RNG seed provenance contains ``("param", p)``
        obliges every caller to pass something reproducible for ``p``;
        callers forwarding their own parameter extend the chain, callers
        passing ambient or untraceable values are recorded as
        :class:`SeedEscalation` rows for R010 to report.
        """
        worklist: List[Tuple[str, str]] = []
        for site in self.rng_sites.values():
            if site.seed_prov is None:
                continue
            fn = self.project.functions.get(site.function)
            bindable = set(fn.params) | set(fn.kwonly) if fn else set()
            for tag, detail in site.seed_prov:
                if tag == PARAM and detail in bindable:
                    sinks = self.seed_sinks.setdefault(site.function, set())
                    if detail not in sinks:
                        sinks.add(detail)
                        worklist.append((site.function, detail))
        seen_sites: Set[Tuple[int, str]] = set()
        while worklist:
            callee, param = worklist.pop()
            for site in self.graph.callers_of(callee):
                key = (id(site.node), param)
                if key in seen_sites:
                    continue
                seen_sites.add(key)
                self._check_seed_forwarding(site, callee, param, worklist)

    def _check_seed_forwarding(
        self,
        site: CallSite,
        callee: str,
        param: str,
        worklist: List[Tuple[str, str]],
    ) -> None:
        target = self.project.functions.get(callee)
        if target is None:
            return
        bound = self.site_args.get(id(site.node))
        if bound is None or param not in bound:
            # Defaulted or star-forwarded: judge the default if any.
            default = target.defaults.get(param)
            if default is not None and not isinstance(default, ast.Constant):
                self.seed_escalations.append(
                    SeedEscalation(
                        function=site.caller,
                        path=self._path_of(site.caller),
                        lineno=site.lineno,
                        col=site.col,
                        callee=callee,
                        param=param,
                        reason="non-constant default",
                    )
                )
            return
        prov = bound[param]
        ambient = sorted(d for t, d in prov if t == AMBIENT)
        if ambient:
            self.seed_escalations.append(
                SeedEscalation(
                    function=site.caller,
                    path=self._path_of(site.caller),
                    lineno=site.lineno,
                    col=site.col,
                    callee=callee,
                    param=param,
                    reason=f"derives from ambient source {ambient[0]}",
                )
            )
            return
        tags = {t for t, _ in prov}
        caller_fn = self.project.functions.get(site.caller)
        bindable = (
            set(caller_fn.params) | set(caller_fn.kwonly) if caller_fn else set()
        )
        forwarded = {
            d for t, d in prov if t == PARAM and d in bindable
        }
        if forwarded:
            for name in forwarded:
                sinks = self.seed_sinks.setdefault(site.caller, set())
                if name not in sinks:
                    sinks.add(name)
                    worklist.append((site.caller, name))
            return
        if CONST in tags or PARAM in tags:
            # A literal seed, or instance state (`self`): explicit enough.
            return
        self.seed_escalations.append(
            SeedEscalation(
                function=site.caller,
                path=self._path_of(site.caller),
                lineno=site.lineno,
                col=site.col,
                callee=callee,
                param=param,
                reason="value cannot be traced to a seed parameter or constant",
            )
        )

    def _path_of(self, qualname: str) -> str:
        module = qualname
        while module and module not in self.project.modules:
            module = module.rpartition(".")[0]
        info = self.project.modules.get(module)
        return info.path if info is not None else "<unknown>"

    # -- cache effects (R011) -------------------------------------------------

    def _effects_fixpoint(self) -> None:
        units = self._walk_units()
        for _ in range(_MAX_PASSES):
            changed = False
            for info, fn, qualname in units:
                summary, _ = self._walk_effects(info, fn, qualname, report=False)
                if self.effects.get(qualname, EffectSummary()).key() != summary.key():
                    self.effects[qualname] = summary
                    changed = True
            if not changed:
                break
        for info, fn, qualname in units:
            if info.name.startswith("repro.graphs"):
                # The context layer itself manages its own memo table.
                continue
            _, violations = self._walk_effects(info, fn, qualname, report=True)
            self.effect_violations.extend(violations)

    def _walk_effects(
        self,
        info: ModuleInfo,
        fn: Optional[FunctionInfo],
        qualname: str,
        report: bool,
    ) -> Tuple[EffectSummary, List[EffectViolation]]:
        violations: List[EffectViolation] = []
        cls = fn.cls if fn is not None else None
        init_self = (
            self._self_name(fn)
            if fn is not None and fn.name == "__init__"
            else None
        )

        def run(stmts: List[ast.stmt], state: _EffectState) -> _EffectState:
            for stmt in stmts:
                state = step(stmt, state)
            return state

        def apply_events(node: ast.AST, state: _EffectState) -> None:
            for event in sorted(
                _effect_events(self, info, cls, node, init_self),
                key=lambda e: (e[0].lineno, e[0].col_offset),
            ):
                site, action, payload = event
                if action == "read":
                    kind = payload  # type: ignore[assignment]
                    assert isinstance(kind, str)
                    if kind in state.outstanding:
                        violations.append(
                            EffectViolation(
                                function=qualname,
                                path=info.path,
                                lineno=site.lineno,
                                col=site.col_offset,
                                kind=kind,
                                mutated_line=state.mutation_lines.get(
                                    kind, site.lineno
                                ),
                                detail="read",
                            )
                        )
                    if kind not in state.touched:
                        state.exposed.add(kind)
                elif action == "mutate":
                    kinds = payload  # type: ignore[assignment]
                    assert isinstance(kinds, frozenset)
                    state.outstanding |= kinds
                    state.cleaned -= kinds
                    state.touched |= kinds
                    for kind in kinds:
                        state.mutation_lines.setdefault(kind, site.lineno)
                elif action == "invalidate":
                    kinds = payload  # type: ignore[assignment]
                    assert isinstance(kinds, frozenset)
                    state.outstanding -= kinds
                    state.cleaned |= kinds
                    state.touched |= kinds
                    for kind in kinds:
                        state.mutation_lines.pop(kind, None)
                elif action == "call":
                    callee = payload
                    assert isinstance(callee, str)
                    summary = self.effects.get(callee, EffectSummary())
                    observed = state.outstanding & summary.exposed_reads
                    for kind in sorted(observed):
                        violations.append(
                            EffectViolation(
                                function=qualname,
                                path=info.path,
                                lineno=site.lineno,
                                col=site.col_offset,
                                kind=kind,
                                mutated_line=state.mutation_lines.get(
                                    kind, site.lineno
                                ),
                                detail=f"via call to {callee}",
                            )
                        )
                    exposed_through = summary.exposed_reads - state.touched
                    state.exposed |= exposed_through
                    state.outstanding = (
                        state.outstanding - summary.cleans
                    ) | summary.outstanding
                    state.cleaned = (
                        state.cleaned | summary.cleans
                    ) - summary.outstanding
                    state.touched |= summary.cleans | summary.outstanding
                    for kind in summary.outstanding:
                        state.mutation_lines.setdefault(kind, site.lineno)
                    for kind in summary.cleans:
                        state.mutation_lines.pop(kind, None)

        def step(stmt: ast.stmt, state: _EffectState) -> _EffectState:
            if isinstance(stmt, ast.If):
                apply_events(stmt.test, state)
                then_state = run(stmt.body, state.copy())
                else_state = run(stmt.orelse, state.copy())
                then_state.merge(else_state)
                return then_state
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                header = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
                apply_events(header, state)
                first = run(stmt.body, state.copy())
                state.merge(first)
                second = run(stmt.body, state.copy())
                state.merge(second)
                return run(stmt.orelse, state)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    apply_events(item.context_expr, state)
                return run(stmt.body, state)
            if isinstance(stmt, ast.Try):
                entry = state.copy()
                after_body = run(stmt.body, state)
                merged = entry
                merged.merge(after_body)
                for handler in stmt.handlers:
                    merged.merge(run(handler.body, merged.copy()))
                merged = run(stmt.orelse, merged)
                return run(stmt.finalbody, merged)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return state
            apply_events(stmt, state)
            return state

        final = run(self._unit_body(info, fn), _EffectState())
        summary = EffectSummary(
            outstanding=frozenset(final.outstanding),
            cleans=frozenset(final.cleaned),
            exposed_reads=frozenset(final.exposed),
        )
        return summary, (violations if report else [])

    # -- exception escapes (R013) ---------------------------------------------

    def _escape_fixpoint(self) -> None:
        units = self._walk_units()
        for _ in range(_MAX_PASSES):
            changed = False
            for info, fn, qualname in units:
                escapes = self._walk_escapes(info, fn)
                if self.escapes.get(qualname) != escapes:
                    self.escapes[qualname] = escapes
                    changed = True
            if not changed:
                break

    def exception_ancestry(self, name: str) -> List[str]:
        """``name`` plus every ancestor class name we can see."""
        out: List[str] = []
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            for qual, cls in self.project.classes.items():
                if cls.name == current:
                    for base in cls.bases:
                        frontier.append(base.rsplit(".", maxsplit=1)[-1])
            parent = _BUILTIN_PARENTS.get(current)
            if parent is not None:
                frontier.append(parent)
        return out

    def catches(self, handler: str, escape: str) -> bool:
        """Whether ``except handler:`` stops an in-flight ``escape``."""
        if handler in _CATCH_ALL:
            return True
        return handler in self.exception_ancestry(escape)

    def is_repro_exception(self, name: str) -> bool:
        """Whether ``name`` sits inside the project's ReproError family."""
        return "ReproError" in self.exception_ancestry(name)

    def _walk_escapes(
        self, info: ModuleInfo, fn: Optional[FunctionInfo]
    ) -> FrozenSet[str]:
        cls = fn.cls if fn is not None else None

        def exc_name(node: Optional[ast.expr]) -> Optional[str]:
            if node is None:
                return None
            target = node.func if isinstance(node, ast.Call) else node
            dotted = _dotted(target)
            if dotted is None:
                return None
            return dotted.rsplit(".", maxsplit=1)[-1]

        def call_escapes(node: ast.AST) -> Set[str]:
            out: Set[str] = set()
            for child in ast.walk(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                if isinstance(child, ast.Call):
                    callee, _d, _v = resolve_call(
                        self.project, info.name, cls, child
                    )
                    if callee is not None:
                        out |= self.escapes.get(callee, frozenset())
            return out

        def block(stmts: List[ast.stmt], reraise: FrozenSet[str]) -> Set[str]:
            out: Set[str] = set()
            for stmt in stmts:
                out |= stmt_escapes(stmt, reraise)
            return out

        def stmt_escapes(stmt: ast.stmt, reraise: FrozenSet[str]) -> Set[str]:
            if isinstance(stmt, ast.Raise):
                out = call_escapes(stmt)
                if stmt.exc is None:
                    return out | set(reraise)
                name = exc_name(stmt.exc)
                if name is not None:
                    out.add(name)
                return out
            if isinstance(stmt, ast.Try):
                body = block(stmt.body, reraise)
                escaped: Set[str] = set()
                caught_any = False
                for handler in stmt.handlers:
                    names = handler_names(handler)
                    if names is None:  # bare except
                        caught = set(body)
                        caught_any = True
                    else:
                        caught = {
                            e
                            for e in body
                            if any(self.catches(h, e) for h in names)
                        }
                    body -= caught
                    escaped |= block(
                        handler.body, reraise=frozenset(caught) | reraise
                    )
                escaped |= body
                if not caught_any and not stmt.handlers:
                    escaped |= set()
                escaped |= block(stmt.orelse, reraise)
                escaped |= block(stmt.finalbody, reraise)
                return escaped
            if isinstance(stmt, ast.If):
                out = call_escapes(stmt.test)
                out |= block(stmt.body, reraise)
                out |= block(stmt.orelse, reraise)
                return out
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                out = call_escapes(stmt.iter)
                out |= block(stmt.body, reraise)
                out |= block(stmt.orelse, reraise)
                return out
            if isinstance(stmt, ast.While):
                out = call_escapes(stmt.test)
                out |= block(stmt.body, reraise)
                out |= block(stmt.orelse, reraise)
                return out
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                out: Set[str] = set()
                for item in stmt.items:
                    out |= call_escapes(item.context_expr)
                out |= block(stmt.body, reraise)
                return out
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return set()
            if isinstance(stmt, ast.Assert):
                return call_escapes(stmt) | {"AssertionError"}
            return call_escapes(stmt)

        def handler_names(
            handler: ast.ExceptHandler,
        ) -> Optional[List[str]]:
            if handler.type is None:
                return None
            if isinstance(handler.type, ast.Tuple):
                names = []
                for elt in handler.type.elts:
                    name = exc_name(elt)
                    if name is not None:
                        names.append(name)
                return names
            name = exc_name(handler.type)
            return [name] if name is not None else []

        return frozenset(block(self._unit_body(info, fn), frozenset()))

    # -- bit purity (R012) ----------------------------------------------------

    def bit_purity(self, qualname: str) -> Optional[bool]:
        """True if the function returns an additive integer charge,
        False if it is float-valued, None when undecidable."""
        if qualname in self._purity:
            return self._purity[qualname]
        fn = self.project.functions.get(qualname)
        if fn is None:
            return None
        annotation = _annotation_name(fn.returns)
        if annotation == "int":
            self._purity[qualname] = True
            return True
        if annotation == "float":
            self._purity[qualname] = False
            return False
        if qualname in self._purity_stack:
            return None
        self._purity_stack.add(qualname)
        try:
            info = self.project.modules.get(fn.module)
            if info is None:
                self._purity[qualname] = None
                return None
            verdict: Optional[bool] = True
            for node in ast.walk(fn.node):  # type: ignore[arg-type]
                if isinstance(node, ast.Return) and node.value is not None:
                    problems = self.judge_bits_expr(
                        info, fn.cls, node.value, strict_division=True
                    )
                    if problems:
                        verdict = False
                        break
            self._purity[qualname] = verdict
            return verdict
        finally:
            self._purity_stack.discard(qualname)

    def judge_bits_expr(
        self,
        info: ModuleInfo,
        cls: Optional[str],
        expr: ast.expr,
        *,
        strict_division: bool,
    ) -> List[Tuple[ast.expr, str]]:
        """Problems that keep ``expr`` from being an additive integer charge.

        ``strict_division`` adds true division and float literals to the
        offence list (return-position checking); without it only
        float-valued *calls* are flagged (assignment-position checking,
        where the per-file R001 already polices operators).
        """
        problems: List[Tuple[ast.expr, str]] = []

        def judge(node: ast.expr) -> None:
            if isinstance(node, ast.Constant):
                if strict_division and isinstance(node.value, float):
                    problems.append((node, "float literal"))
                return
            if isinstance(node, ast.BinOp):
                if strict_division and isinstance(node.op, ast.Div):
                    problems.append((node, "true division (/)"))
                    return
                judge(node.left)
                judge(node.right)
                return
            if isinstance(node, ast.UnaryOp):
                judge(node.operand)
                return
            if isinstance(node, ast.IfExp):
                judge(node.body)
                judge(node.orelse)
                return
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                full = self.normalise(info.name, dotted) if dotted else None
                if dotted in _INTEGERIZERS or full in _INTEGERIZERS:
                    return  # an integerizer launders anything inside it
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "bit_length"
                ):
                    return
                if dotted in _COMBINATORS:
                    for arg in node.args:
                        judge(arg)
                    return
                if full in _FLOAT_CALLS or dotted in _FLOAT_CALLS:
                    problems.append(
                        (node, f"float-valued call {dotted or full}")
                    )
                    return
                callee, _d, _v = resolve_call(
                    self.project, info.name, cls, node
                )
                if callee is not None and callee in self.project.functions:
                    purity = self.bit_purity(callee)
                    if purity is False:
                        problems.append(
                            (node, f"float-valued project call {callee}")
                        )
                return
            if isinstance(node, (ast.Tuple, ast.List)):
                for elt in node.elts:
                    judge(elt)
                return
            if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                judge(node.elt)
                return
            # Names, attributes, subscripts: permissive — R001 already
            # polices local operator misuse per file.
            return

        judge(expr)
        return problems


def _effect_events(
    analysis: FlowAnalysis,
    info: ModuleInfo,
    cls: Optional[str],
    node: ast.AST,
    init_self: Optional[str] = None,
) -> List[Tuple[ast.AST, str, object]]:
    """Mutations, invalidations, context reads and project calls in ``node``.

    ``init_self`` names the ``self`` argument when the enclosing function
    is an ``__init__``: stores through it are object construction, which
    cannot stale any existing context memo.  Events come back unsorted;
    the caller orders them by source position to approximate
    statement-internal sequencing.
    """
    events: List[Tuple[ast.AST, str, object]] = []
    for child in ast.walk(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                child.targets
                if isinstance(child, ast.Assign)
                else [child.target]
            )
            for target in targets:
                kinds = _mutation_kinds(target, store=True, init_self=init_self)
                if kinds:
                    events.append((child, "mutate", kinds))
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                kinds = _mutation_kinds(target, store=False, init_self=init_self)
                if kinds:
                    events.append((child, "mutate", kinds))
        elif isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Attribute):
                if func.attr in _MUTATOR_METHODS:
                    kinds = _mutation_kinds(
                        func.value, store=False, init_self=init_self
                    )
                    if kinds:
                        events.append((child, "mutate", kinds))
                        continue
                if func.attr == "invalidate" and _is_ctx_receiver(func.value):
                    events.append(
                        (child, "invalidate", _invalidate_coverage(child))
                    )
                    continue
                reader = READER_KINDS.get(func.attr)
                if reader is not None and _is_ctx_receiver(func.value):
                    events.append((child, "read", reader))
                    continue
            callee, _d, _v = resolve_call(analysis.project, info.name, cls, child)
            if callee is not None:
                events.append((child, "call", callee))
        elif isinstance(child, ast.Attribute):
            reader = READER_KINDS.get(child.attr)
            if reader is not None and _is_ctx_receiver(child.value):
                # Bare attribute access (e.g. a property-style read).
                events.append((child, "read", reader))
    return events


def _chain_root(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _mutation_kinds(
    target: ast.AST,
    *,
    store: bool,
    init_self: Optional[str] = None,
) -> FrozenSet[str]:
    """Context kinds dirtied by a store/mutation through ``target``.

    ``store`` is True for plain assignment targets, where the
    fill-idiom exemption applies to subscript stores; ``del``,
    mutator-method receivers and rebinding never get it.
    """
    if init_self is not None and _chain_root(target) == init_self:
        return frozenset()
    kinds: Set[str] = set()
    for child in ast.walk(target):
        name: Optional[str] = None
        if isinstance(child, ast.Attribute):
            name = child.attr
        elif isinstance(child, ast.Name):
            name = child.id
        if name is None:
            continue
        for prefix, dirty in _MUTATION_PREFIXES:
            if not name.startswith(prefix):
                continue
            if (
                store
                and isinstance(target, ast.Subscript)
                and name in _FILL_IDIOM_ATTRS
            ):
                continue
            kinds |= dirty
    return frozenset(kinds)


def _is_ctx_receiver(node: ast.AST) -> bool:
    """Whether an attribute receiver looks like a GraphContext."""
    dotted = _dotted(node)
    if dotted is not None:
        last = dotted.rsplit(".", maxsplit=1)[-1].lower()
        return "ctx" in last or "context" in last
    if isinstance(node, ast.Call):
        target = _dotted(node.func)
        if target is not None:
            last = target.rsplit(".", maxsplit=1)[-1]
            return last in ("get_context", "context")
    return False


def _invalidate_coverage(call: ast.Call) -> FrozenSet[str]:
    """Kinds an ``invalidate(...)`` call is guaranteed to drop."""
    has_nodes = False
    kinds_value: Optional[ast.expr] = None
    positional = [a for a in call.args if not isinstance(a, ast.Starred)]
    if len(positional) >= 1:
        has_nodes = not (
            isinstance(positional[0], ast.Constant)
            and positional[0].value is None
        )
    if len(positional) >= 2:
        kinds_value = positional[1]
    for keyword in call.keywords:
        if keyword.arg == "nodes":
            has_nodes = not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
            )
        elif keyword.arg == "kinds":
            kinds_value = keyword.value
    if kinds_value is None:
        if not has_nodes:
            return ALL_KINDS  # bare invalidate(): full flush
        return PER_NODE_KINDS
    named: Set[str] = set()
    literal = True
    for child in ast.walk(kinds_value):
        if isinstance(child, ast.Constant) and isinstance(child.value, str):
            named.add(child.value)
        elif isinstance(child, (ast.Name, ast.Call, ast.Attribute)):
            literal = False
    if not literal and not named:
        # Dynamic kind set: assume the author covered what they touched.
        return ALL_KINDS
    return frozenset(named & ALL_KINDS) if named else ALL_KINDS
