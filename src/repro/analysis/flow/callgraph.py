"""Import-resolved call graph over the project symbol table.

Every ``ast.Call`` in every function body (module-level code counts as a
pseudo-function named ``module.<module>``) is resolved to a project
qualname where the symbol table allows it:

* bare names through local defs and (re-exported) imports;
* ``self.method(...)`` through the enclosing class and its bases;
* ``Module.func(...)`` / ``Class.method(...)`` through dotted resolution;
* attribute calls on unknown receivers through a *unique-method*
  fallback: if exactly one project class defines the method name (and the
  name is not a common container/stdlib method), the call is attributed
  to it.

Unresolved calls are kept as ``CallSite`` rows with ``callee=None`` so
the JSON dump is an honest picture of coverage, not just the happy path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.flow.symbols import FunctionInfo, ProjectIndex

__all__ = ["CallSite", "CallGraph", "build_callgraph"]

CALLGRAPH_VERSION = 1

# Attribute names too generic to attribute by uniqueness: container and
# stdlib-protocol methods that would otherwise mis-resolve onto whatever
# project class happens to define the same name.
_COMMON_METHODS = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "discard",
        "extend", "format", "get", "index", "insert", "items", "join",
        "keys", "pop", "popleft", "read", "remove", "reverse", "set",
        "setdefault", "sort", "split", "strip", "update", "values",
        "write", "encode", "decode", "open", "run", "next", "send",
    }
)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class CallSite:
    """One call expression, attributed to its (pseudo-)function."""

    caller: str
    callee: Optional[str]
    """Resolved project qualname, or None for external/unresolved."""
    display: str
    """The callee as written in the source (best effort)."""
    lineno: int
    col: int
    node: ast.Call
    via_self: bool = False
    """Whether the call was dispatched through ``self``/``cls``."""


class CallGraph:
    """Call sites grouped by caller, with reverse edges."""

    def __init__(self) -> None:
        self.sites_by_caller: Dict[str, List[CallSite]] = {}
        self._callers_of: Dict[str, List[CallSite]] = {}

    def add(self, site: CallSite) -> None:
        self.sites_by_caller.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self._callers_of.setdefault(site.callee, []).append(site)

    def sites(self, caller: str) -> List[CallSite]:
        return self.sites_by_caller.get(caller, [])

    def callers_of(self, qualname: str) -> List[CallSite]:
        return self._callers_of.get(qualname, [])

    def iter_sites(self) -> Iterator[CallSite]:
        for caller in sorted(self.sites_by_caller):
            yield from self.sites_by_caller[caller]

    def callees(self, caller: str) -> List[str]:
        """Resolved callee qualnames of one caller (deduplicated, sorted)."""
        return sorted(
            {s.callee for s in self.sites(caller) if s.callee is not None}
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-dumpable picture: nodes, resolved edges, coverage stats."""
        resolved = 0
        unresolved = 0
        edges: List[Dict[str, object]] = []
        for site in self.iter_sites():
            if site.callee is None:
                unresolved += 1
                continue
            resolved += 1
            edges.append(
                {
                    "caller": site.caller,
                    "callee": site.callee,
                    "line": site.lineno,
                }
            )
        return {
            "version": CALLGRAPH_VERSION,
            "functions": sorted(self.sites_by_caller),
            "edges": edges,
            "resolved_calls": resolved,
            "unresolved_calls": unresolved,
        }


def build_callgraph(project: ProjectIndex) -> CallGraph:
    """Resolve every call expression in every module of the project."""
    graph = CallGraph()
    for module in sorted(project.modules):
        info = project.modules[module]
        # Module-level statements form a pseudo-function so seeds or
        # mutations at import time are still analysed.
        toplevel: List[ast.stmt] = [
            stmt
            for stmt in info.tree.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        pseudo = f"{module}.<module>"
        for stmt in toplevel:
            _collect_calls(graph, project, module, None, pseudo, stmt)
        for fn in info.functions.values():
            for stmt in fn.node.body:  # type: ignore[attr-defined]
                _collect_calls(graph, project, module, None, fn.qualname, stmt)
        for cls in info.classes.values():
            for method in cls.methods.values():
                for stmt in method.node.body:  # type: ignore[attr-defined]
                    _collect_calls(
                        graph, project, module, cls.name, method.qualname, stmt
                    )
    return graph


def _collect_calls(
    graph: CallGraph,
    project: ProjectIndex,
    module: str,
    cls: Optional[str],
    caller: str,
    node: ast.AST,
) -> None:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            callee, display, via_self = resolve_call(
                project, module, cls, child
            )
            graph.add(
                CallSite(
                    caller=caller,
                    callee=callee,
                    display=display,
                    lineno=child.lineno,
                    col=child.col_offset,
                    node=child,
                    via_self=via_self,
                )
            )


def resolve_call(
    project: ProjectIndex,
    module: str,
    cls: Optional[str],
    call: ast.Call,
) -> Tuple[Optional[str], str, bool]:
    """Resolve one call expression to ``(qualname, display, via_self)``."""
    func = call.func
    dotted = _dotted(func)
    if dotted is None:
        return None, "<dynamic>", False
    parts = dotted.split(".")
    # self.method(...) / cls.method(...) inside a class body.
    if cls is not None and parts[0] in ("self", "cls") and len(parts) == 2:
        info = project.modules.get(module)
        if info is not None and cls in info.classes:
            method = project.resolve_method(
                info.classes[cls].qualname, parts[1]
            )
            if method is not None:
                return method.qualname, dotted, True
        return None, dotted, True
    resolved = project.resolve(module, dotted)
    if resolved is not None and resolved in project.functions:
        return resolved, dotted, False
    if resolved is not None and resolved in project.classes:
        # Constructor call: attribute it to __init__ when present.
        init = project.resolve_method(resolved, "__init__")
        if init is not None:
            return init.qualname, dotted, False
        return resolved, dotted, False
    # Unique-method fallback for attribute calls on unknown receivers.
    if isinstance(func, ast.Attribute):
        name = func.attr
        candidates = project.method_index.get(name, [])
        if (
            len(candidates) == 1
            and name not in _COMMON_METHODS
            and not name.startswith("__")
        ):
            return candidates[0].qualname, dotted, False
    return None, dotted, False
