"""`repro.analysis.flow` — the cross-module dataflow analysis engine.

Four layers, each consuming only the one below:

1. :mod:`~repro.analysis.flow.symbols` — per-module symbol tables and the
   import-resolving :class:`ProjectIndex` (re-export chains followed);
2. :mod:`~repro.analysis.flow.callgraph` — every call expression resolved
   to a project qualname where the symbol table allows it;
3. :mod:`~repro.analysis.flow.dataflow` — intraprocedural reaching
   definitions and value provenance (parameter / constant / ambient /
   opaque atoms);
4. :mod:`~repro.analysis.flow.summaries` — interprocedural fixpoints:
   seed sinks, GraphContext cache effects, exception escapes and bit
   purity per function.

On top sit the flow-sensitive lint rules (R010–R013) in
:mod:`~repro.analysis.flow.rules`, registered in the same registry as
the per-file rules and driven by ``repro lint`` (on by default; disable
with ``--no-flow``, inspect the graph with ``--dump-callgraph``).

Everything is stdlib-``ast`` only: the analysed code is never imported.
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from repro.analysis.flow.callgraph import CallGraph, CallSite, build_callgraph
from repro.analysis.flow.dataflow import Env, ProvSet, evaluate, walk_function
from repro.analysis.flow.summaries import (
    EffectSummary,
    EffectViolation,
    FlowAnalysis,
    RngSite,
)
from repro.analysis.flow.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    build_module_info,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "build_callgraph",
    "Env",
    "ProvSet",
    "evaluate",
    "walk_function",
    "EffectSummary",
    "EffectViolation",
    "FlowAnalysis",
    "RngSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_module_info",
    "build_project",
    "analyse_project",
]


def build_project(
    files: Iterable[Tuple[str, str, ast.Module]]
) -> ProjectIndex:
    """Index ``(module_name, path, tree)`` triples into a ProjectIndex."""
    return ProjectIndex(
        build_module_info(name, path, tree) for name, path, tree in files
    )


def analyse_project(project: ProjectIndex) -> FlowAnalysis:
    """Build the call graph and run every interprocedural fixpoint."""
    return FlowAnalysis(project).run()
