"""Intraprocedural dataflow: reaching definitions and value provenance.

The walker executes a function body abstractly, statement by statement,
maintaining an environment mapping local names to *provenance sets* —
which parameters, constants or opaque sources each value derives from.
Branches are analysed independently and merged by union; loop bodies run
twice so loop-carried definitions reach their uses (a fixpoint for the
union lattice, whose chains over a finite atom set have length <= 2 per
variable per pass).

Provenance atoms are ``(tag, detail)`` pairs:

``("param", name)``
    Derives from the enclosing function's parameter ``name`` (attribute
    and subscript projections included: ``args.seed`` is ``args``).
``("const", "")``
    A literal or module-level constant.
``("ambient", desc)``
    An entropy/clock source: ``time.time()``, ``os.urandom()``,
    module-level ``random.*`` draws, ``uuid``/``secrets``.  Anything
    tainted by one of these is irreproducible by construction.
``("call", qualname)``
    A resolved project call whose return could not be reduced further.
``("opaque", desc)``
    An unresolved global, external call or attribute chain.

Interprocedural knowledge arrives through a caller-supplied ``call_hook``
that maps a call node (plus the evaluated provenance of its arguments)
to the provenance of its return value — the summary layer plugs the
fixpointed function summaries in there.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

__all__ = [
    "ProvSet",
    "PARAM",
    "CONST",
    "AMBIENT",
    "CALL",
    "OPAQUE",
    "const_set",
    "Env",
    "evaluate",
    "walk_function",
    "AMBIENT_CALLS",
    "ambient_source",
]

Atom = Tuple[str, str]
ProvSet = FrozenSet[Atom]

PARAM = "param"
CONST = "const"
AMBIENT = "ambient"
CALL = "call"
OPAQUE = "opaque"

_EMPTY: ProvSet = frozenset()
_CONST: ProvSet = frozenset({(CONST, "")})


def const_set() -> ProvSet:
    """The provenance of a literal."""
    return _CONST


# Dotted call targets whose results are entropy or wall-clock state; a
# seed derived from one of these is irreproducible by construction.  The
# leading module segment is matched after import-alias normalisation.
AMBIENT_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
        "secrets.randbelow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

# Bare ``random.X()`` module-level draws (ambient global RNG state); the
# seeded-RNG constructors are deliberately not in this set.
_AMBIENT_RANDOM_ATTRS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "random_sample", "getrandbits",
        "randbytes", "betavariate", "expovariate", "normalvariate",
    }
)

# Builtin calls whose result derives entirely from their arguments.
_PASSTHROUGH_BUILTINS = frozenset(
    {
        "int", "float", "str", "bytes", "bool", "abs", "round", "len",
        "min", "max", "sum", "sorted", "tuple", "list", "set", "dict",
        "frozenset", "hash", "divmod", "pow", "repr", "ord", "chr",
        "zip", "map", "filter", "enumerate", "reversed", "next", "iter",
        "range",
    }
)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def ambient_source(
    dotted: str, normalise: Callable[[str], str]
) -> Optional[str]:
    """The ambient source a dotted call target names, if any.

    ``normalise`` maps the leading alias through the module's imports
    (``_random.random`` -> ``random.random``).
    """
    full = normalise(dotted)
    if full in AMBIENT_CALLS:
        return full
    parts = full.split(".")
    if (
        len(parts) == 2
        and parts[0] == "random"
        and parts[1] in _AMBIENT_RANDOM_ATTRS
    ):
        return full
    if len(parts) >= 2 and parts[0] in ("secrets", "uuid"):
        return full
    # np.random.<draw> on the module-level generator.
    if (
        len(parts) == 3
        and parts[0] in ("np", "numpy")
        and parts[1] == "random"
        and parts[2] in _AMBIENT_RANDOM_ATTRS
    ):
        return full
    return None


class Env:
    """Mutable mapping of local names to provenance sets."""

    __slots__ = ("bindings",)

    def __init__(self, bindings: Optional[Dict[str, ProvSet]] = None) -> None:
        self.bindings: Dict[str, ProvSet] = dict(bindings or {})

    def copy(self) -> "Env":
        return Env(self.bindings)

    def merge(self, other: "Env") -> None:
        """Union-merge another branch's bindings into this one."""
        for name, prov in other.bindings.items():
            if name in self.bindings:
                self.bindings[name] = self.bindings[name] | prov
            else:
                self.bindings[name] = prov

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Env) and self.bindings == other.bindings

    def __hash__(self) -> int:  # pragma: no cover - unhashable by design
        raise TypeError("Env is mutable")


CallHook = Callable[[ast.Call, "Env"], ProvSet]
StatementHook = Callable[[ast.stmt, "Env"], None]


def evaluate(
    expr: ast.expr,
    env: Env,
    params: FrozenSet[str],
    module_constants: FrozenSet[str],
    call_hook: CallHook,
) -> ProvSet:
    """Provenance of one expression under the current environment."""

    def rec(node: ast.expr) -> ProvSet:
        if isinstance(node, ast.Constant):
            return _CONST
        if isinstance(node, ast.Name):
            if node.id in env.bindings:
                return env.bindings[node.id]
            if node.id in params:
                return frozenset({(PARAM, node.id)})
            if node.id in module_constants:
                return _CONST
            return frozenset({(OPAQUE, node.id)})
        if isinstance(node, ast.Attribute):
            # Projection: args.seed derives from args; chains collapse
            # onto the base value's provenance.
            return rec(node.value)
        if isinstance(node, ast.Subscript):
            return rec(node.value) | rec(node.slice)
        if isinstance(node, ast.Call):
            return call_hook(node, env)
        if isinstance(node, ast.NamedExpr):
            value = rec(node.value)
            if isinstance(node.target, ast.Name):
                env.bindings[node.target.id] = value
            return value
        if isinstance(node, ast.IfExp):
            return rec(node.body) | rec(node.orelse)
        if isinstance(node, ast.BoolOp):
            out: ProvSet = _EMPTY
            for value in node.values:
                out |= rec(value)
            return out
        if isinstance(node, ast.BinOp):
            return rec(node.left) | rec(node.right)
        if isinstance(node, ast.UnaryOp):
            return rec(node.operand)
        if isinstance(node, ast.Compare):
            out = rec(node.left)
            for comparator in node.comparators:
                out |= rec(comparator)
            return out
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = _EMPTY
            for elt in node.elts:
                out |= rec(elt)
            return out or _CONST
        if isinstance(node, ast.Dict):
            out = _EMPTY
            for key in node.keys:
                if key is not None:
                    out |= rec(key)
            for value in node.values:
                out |= rec(value)
            return out or _CONST
        if isinstance(node, ast.Starred):
            return rec(node.value)
        if isinstance(node, ast.JoinedStr):
            out = _EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= rec(value.value)
            return out or _CONST
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_env = env.copy()
            out = _EMPTY
            for gen in node.generators:
                iterable = evaluate(
                    gen.iter, comp_env, params, module_constants, call_hook
                )
                for leaf in ast.walk(gen.target):
                    if isinstance(leaf, ast.Name):
                        comp_env.bindings[leaf.id] = iterable
                out |= iterable
            out |= evaluate(
                node.elt, comp_env, params, module_constants, call_hook
            )
            return out
        if isinstance(node, ast.DictComp):
            comp_env = env.copy()
            out = _EMPTY
            for gen in node.generators:
                iterable = evaluate(
                    gen.iter, comp_env, params, module_constants, call_hook
                )
                for leaf in ast.walk(gen.target):
                    if isinstance(leaf, ast.Name):
                        comp_env.bindings[leaf.id] = iterable
                out |= iterable
            out |= evaluate(
                node.key, comp_env, params, module_constants, call_hook
            )
            out |= evaluate(
                node.value, comp_env, params, module_constants, call_hook
            )
            return out
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return rec(node.value)  # type: ignore[arg-type]
        if isinstance(node, ast.Yield):
            return rec(node.value) if node.value is not None else _EMPTY
        if isinstance(node, ast.Lambda):
            return _CONST
        return frozenset({(OPAQUE, type(node).__name__)})

    return rec(expr)


def walk_function(
    body: List[ast.stmt],
    env: Env,
    params: FrozenSet[str],
    module_constants: FrozenSet[str],
    call_hook: CallHook,
    on_statement: Optional[StatementHook] = None,
) -> Env:
    """Abstractly execute a statement list, returning the exit environment.

    ``on_statement`` observes each statement *before* its effects apply,
    with the environment valid at that program point — the rule passes
    hang their checks there.
    """

    def run(statements: List[ast.stmt], env: Env) -> Env:
        for stmt in statements:
            if on_statement is not None:
                on_statement(stmt, env)
            env = step(stmt, env)
        return env

    def assign(target: ast.expr, prov: ProvSet, env: Env) -> None:
        if isinstance(target, ast.Name):
            env.bindings[target.id] = prov
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                assign(elt, prov, env)
        elif isinstance(target, ast.Starred):
            assign(target.value, prov, env)
        # Attribute/subscript stores do not rebind local names.

    def step(stmt: ast.stmt, env: Env) -> Env:
        if isinstance(stmt, ast.Assign):
            prov = evaluate(
                stmt.value, env, params, module_constants, call_hook
            )
            for target in stmt.targets:
                assign(target, prov, env)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                prov = evaluate(
                    stmt.value, env, params, module_constants, call_hook
                )
                assign(stmt.target, prov, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            prov = evaluate(
                stmt.value, env, params, module_constants, call_hook
            )
            if isinstance(stmt.target, ast.Name):
                previous = env.bindings.get(stmt.target.id, _EMPTY)
                env.bindings[stmt.target.id] = previous | prov
            return env
        if isinstance(stmt, ast.Expr):
            evaluate(stmt.value, env, params, module_constants, call_hook)
            return env
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                evaluate(stmt.value, env, params, module_constants, call_hook)
            return env
        if isinstance(stmt, ast.If):
            evaluate(stmt.test, env, params, module_constants, call_hook)
            then_env = run(stmt.body, env.copy())
            else_env = run(stmt.orelse, env.copy())
            then_env.merge(else_env)
            return then_env
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = evaluate(
                stmt.iter, env, params, module_constants, call_hook
            )
            assign(stmt.target, iterable, env)
            first = run(stmt.body, env.copy())
            env.merge(first)
            second = run(stmt.body, env.copy())
            env.merge(second)
            env = run(stmt.orelse, env)
            return env
        if isinstance(stmt, ast.While):
            evaluate(stmt.test, env, params, module_constants, call_hook)
            first = run(stmt.body, env.copy())
            env.merge(first)
            second = run(stmt.body, env.copy())
            env.merge(second)
            env = run(stmt.orelse, env)
            return env
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                prov = evaluate(
                    item.context_expr, env, params, module_constants, call_hook
                )
                if item.optional_vars is not None:
                    assign(item.optional_vars, prov, env)
            return run(stmt.body, env)
        if isinstance(stmt, ast.Try):
            entry = env.copy()
            after_body = run(stmt.body, env)
            merged = entry
            merged.merge(after_body)
            for handler in stmt.handlers:
                handler_env = merged.copy()
                if handler.name is not None:
                    handler_env.bindings[handler.name] = frozenset(
                        {(OPAQUE, "exception")}
                    )
                merged.merge(run(handler.body, handler_env))
            merged = run(stmt.orelse, merged)
            merged = run(stmt.finalbody, merged)
            return merged
        if isinstance(stmt, ast.Match):
            evaluate(stmt.subject, env, params, module_constants, call_hook)
            subject = evaluate(
                stmt.subject, env, params, module_constants, call_hook
            )
            merged: Optional[Env] = None
            for case in stmt.cases:
                case_env = env.copy()
                for leaf in ast.walk(case.pattern):
                    if isinstance(leaf, ast.MatchAs) and leaf.name:
                        case_env.bindings[leaf.name] = subject
                case_env = run(case.body, case_env)
                if merged is None:
                    merged = case_env
                else:
                    merged.merge(case_env)
            if merged is not None:
                env.merge(merged)
            return env
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs: analysed as part of the enclosing function so
            # locally-invoked closures contribute their effects; their
            # parameters shadow nothing we track.
            run(stmt.body, env.copy())
            return env
        if isinstance(stmt, ast.ClassDef):
            run(stmt.body, env.copy())
            return env
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    evaluate(child, env, params, module_constants, call_hook)
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.bindings.pop(target.id, None)
            return env
        return env

    return run(body, env)
