"""Rule registry and the context object rules inspect.

Rules are classes registered by decorator; the registry keeps them sorted
by rule id so ``--list-rules`` output and reporter summaries are stable.
Each rule sees one :class:`ModuleContext` at a time — the parsed AST plus
enough metadata (path, package-relative module name, raw lines) to scope
itself to the subtrees it cares about.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Tuple, Type

from repro.analysis.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - type-only (flow imports the registry)
    from repro.analysis.flow.summaries import FlowAnalysis

__all__ = [
    "ModuleContext",
    "LintRule",
    "FlowRule",
    "register_rule",
    "all_rules",
    "rule_by_id",
]


@dataclass
class ModuleContext:
    """One parsed source file, as presented to every rule."""

    path: str
    """Path as given to the runner (used verbatim in findings)."""
    source: str
    tree: ast.Module
    module: str = ""
    """Dotted module name relative to the lint root (e.g.
    ``repro.simulator.network``); empty when it cannot be derived."""
    lines: List[str] = field(default_factory=list)

    def in_package(self, *packages: str) -> bool:
        """Whether this module lives under any of the dotted prefixes."""
        for package in packages:
            if self.module == package or self.module.startswith(package + "."):
                return True
        return False


class LintRule:
    """Base class for one registered rule."""

    rule_id: str = "R000"
    name: str = "abstract"
    severity: Severity = Severity.ERROR
    description: str = ""
    rationale: str = ""
    """Paper-level justification, shown by ``--list-rules``."""

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finding(
        self, context: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node."""
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


class FlowRule(LintRule):
    """Base class for whole-program (flow-sensitive) rules.

    Flow rules do not inspect modules one at a time; the runner builds a
    :class:`~repro.analysis.flow.summaries.FlowAnalysis` over every
    parsed file and hands it to :meth:`check_project` once.  The
    per-module :meth:`check` is a deliberate no-op so flow rules can live
    in the same registry (ids, ``--select``, ``--list-rules``,
    suppressions) as the syntactic ones.
    """

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, analysis: "FlowAnalysis") -> Iterator[Finding]:
        """Yield findings for the whole program."""
        raise NotImplementedError

    def project_finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        """Build a finding anchored at an absolute source position."""
        return Finding(
            path=path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: add a rule to the registry (ids must be unique)."""
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> Tuple[LintRule, ...]:
    """Fresh instances of every registered rule, sorted by id."""
    return tuple(_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY))


def rule_by_id(rule_id: str) -> LintRule:
    """Instantiate one rule (KeyError for unknown ids)."""
    return _REGISTRY[rule_id.upper()]()
