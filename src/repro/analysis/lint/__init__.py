"""`repro.analysis.lint` — repo-specific static analysis.

An AST-based linter (stdlib :mod:`ast` only) enforcing the invariants the
paper's bookkeeping depends on.  Per-file rules: integral bit accounting
(R001), an exhaustive drop taxonomy (R002), the nullable-tracer idiom in
hot paths (R003), seeded explicit RNGs (R004), the full
:class:`RoutingScheme` contract (R005), no swallowed failures (R006), a
typed public API (R007), no mutable defaults (R008), and context-routed
graph derivations (R009).

On top of those, the cross-module flow pass (:mod:`repro.analysis.flow`,
on by default, off with ``--no-flow``) runs the whole-program rules:
seed provenance (R010), GraphContext invalidation discipline (R011), bit
conservation through project helpers (R012), and typed exception
boundaries at the codec/framing entry points (R013).  Finally the runner
audits the suppression comments themselves (R014: stale suppressions).

Run it as ``repro lint src`` (or ``python -m repro.cli lint src``); see
``docs/STATIC_ANALYSIS.md`` for the rule catalogue, the flow-engine
architecture and suppression syntax (``# repro-lint: disable=R001``).
"""

from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import (
    FlowRule,
    LintRule,
    ModuleContext,
    all_rules,
    register_rule,
    rule_by_id,
)
from repro.analysis.lint.reporters import (
    describe_rules,
    render_json,
    render_text,
    report_dict,
)
from repro.analysis.lint.runner import (
    LintResult,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.lint.suppressions import SuppressionComment, SuppressionIndex

__all__ = [
    "Finding",
    "Severity",
    "FlowRule",
    "LintRule",
    "ModuleContext",
    "all_rules",
    "register_rule",
    "rule_by_id",
    "describe_rules",
    "render_json",
    "render_text",
    "report_dict",
    "LintResult",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "SuppressionComment",
    "SuppressionIndex",
]
