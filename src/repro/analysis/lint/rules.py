"""The repo-specific per-file rules (R001–R009) and the suppression
audit (R014); the cross-module flow rules R010–R013 live in
:mod:`repro.analysis.flow.rules`.

Each rule encodes an invariant the paper's bookkeeping or the simulator's
design depends on; ``rationale`` strings say which.  Rules are pure AST
passes — no imports of the linted code are required except the lazy
:class:`DropReason` lookup in R002, which falls back to a frozen member
list when the package cannot be imported.
"""

from __future__ import annotations

import ast
from typing import (
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import LintRule, ModuleContext, register_rule

__all__ = [
    "BitIntegerArithmeticRule",
    "DropReasonExhaustiveRule",
    "TracerGuardRule",
    "SeededRngRule",
    "SchemeContractRule",
    "NoSilentExceptRule",
    "PublicAnnotationsRule",
    "NoMutableDefaultRule",
    "ContextRoutedDerivationsRule",
]


# -- shared AST helpers -------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_identifier(node: ast.AST) -> Optional[str]:
    """The identifier a value expression is named by, if any.

    ``total_bits`` for both the bare name and ``report.total_bits``; the
    *attribute* is what carries the accounting meaning.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


_BIT_SUFFIX = "_bits"
_BIT_PREFIX = "bits_"


def _is_bit_identifier(name: Optional[str]) -> bool:
    """Identifier naming a bit count under the paper's accounting."""
    if not name:
        return False
    return name == "bits" or name.endswith(_BIT_SUFFIX) or name.startswith(_BIT_PREFIX)


def _is_terminal(statements: Sequence[ast.stmt]) -> bool:
    """Whether a block unconditionally leaves the enclosing flow."""
    if not statements:
        return False
    return isinstance(statements[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


# -- R001 ---------------------------------------------------------------------


@register_rule
class BitIntegerArithmeticRule(LintRule):
    """Bit accounting must stay integral."""

    rule_id = "R001"
    name = "bit-integer-arithmetic"
    severity = Severity.ERROR
    description = (
        "no true division or float values on bit-accounting identifiers "
        "(`bits`, `*_bits`, `bits_*`); use `//`, `bit_length()`, or "
        "`minimal_label_bits`-style integer helpers"
    )
    rationale = (
        "Table 1 of the paper is an exact bits-count grid; one float in a "
        "`*_bits` quantity silently falsifies the headline constants. "
        "Intentional ratio diagnostics carry a line suppression."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                for side in (node.left, node.right):
                    name = _root_identifier(side)
                    if _is_bit_identifier(name):
                        yield self.finding(
                            context,
                            node,
                            f"true division on bit quantity {name!r}; bit "
                            f"counts are integers — use `//` or an integer "
                            f"helper (suppress if this is a deliberate "
                            f"ratio diagnostic)",
                        )
                        break
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
                name = _root_identifier(node.target)
                if _is_bit_identifier(name):
                    yield self.finding(
                        context,
                        node,
                        f"`/=` on bit quantity {name!r}; use `//=`",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    name = _root_identifier(target)
                    if not _is_bit_identifier(name):
                        continue
                    if isinstance(node.value, ast.Constant) and isinstance(
                        node.value.value, float
                    ):
                        yield self.finding(
                            context,
                            node,
                            f"float literal assigned to bit quantity "
                            f"{name!r}; bit counts are integers",
                        )
                    elif self._has_unflagged_division(node.value):
                        yield self.finding(
                            context,
                            node,
                            f"true-division result assigned to bit "
                            f"quantity {name!r}; bit counts are integers "
                            f"— use `//`",
                        )
            elif isinstance(node, ast.AnnAssign):
                name = _root_identifier(node.target)
                if _is_bit_identifier(name) and (
                    isinstance(node.annotation, ast.Name)
                    and node.annotation.id == "float"
                ):
                    yield self.finding(
                        context,
                        node,
                        f"bit quantity {name!r} annotated `float`; bit "
                        f"counts are integers",
                    )

    @staticmethod
    def _has_unflagged_division(value: ast.expr) -> bool:
        """A `/` in the assigned value none of whose operands is bit-named.

        Divisions with a bit-named operand are already reported by the
        BinOp pass; this catches `total_bits = a / b` without double
        reporting `total_bits = other_bits / 2`.
        """
        for node in ast.walk(value):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                if not any(
                    _is_bit_identifier(_root_identifier(side))
                    for side in (node.left, node.right)
                ):
                    return True
        return False


# -- R002 ---------------------------------------------------------------------

# The closed vocabularies the simulator dispatches over, with the frozen
# member sets used when the package cannot be imported (lint outside the
# repo tree).  The live import keeps the rule current as PRs grow a
# taxonomy; the fallback is refreshed whenever a member is added.
_TAXONOMY_SOURCES: dict = {
    "DropReason": "repro.simulator.message",
    "FaultKind": "repro.simulator.chaos",
    "MutationKind": "repro.simulator.chaos",
    "TopologyMutationKind": "repro.simulator.churn",
    "BetterDirection": "repro.observability.bench",
    "StoreFaultKind": "repro.store.faults",
    "RecordKind": "repro.store.journal",
}
_TAXONOMY_FALLBACKS: dict = {
    "DropReason": frozenset(
        {
            "ENDPOINT_DOWN",
            "LINK_DOWN",
            "NODE_DOWN",
            "HOP_LIMIT",
            "NO_ROUTE",
            "INVALID_FORWARD",
            "QUEUE_OVERFLOW",
            "TABLE_CORRUPT",
            "ROUTING_LOOP",
        }
    ),
    "FaultKind": frozenset(
        {
            "LINK_DOWN",
            "LINK_UP",
            "NODE_DOWN",
            "NODE_UP",
            "TABLE_CORRUPT",
            "TABLE_REPAIR",
        }
    ),
    "MutationKind": frozenset({"BIT_FLIP", "BURST", "TRUNCATE"}),
    "TopologyMutationKind": frozenset(
        {"EDGE_ADD", "EDGE_REMOVE", "NODE_LEAVE", "NODE_JOIN"}
    ),
    "BetterDirection": frozenset({"HIGHER", "LOWER", "NEUTRAL"}),
    "StoreFaultKind": frozenset(
        {"TORN_WRITE", "SHORT_WRITE", "LOST_FSYNC", "RENAME_FAIL", "BIT_ROT"}
    ),
    "RecordKind": frozenset({"PUT", "SWAP"}),
}

# Back-compat alias (pre-generalisation name, still used by older configs).
_DROP_REASON_FALLBACK: FrozenSet[str] = _TAXONOMY_FALLBACKS["DropReason"]


def _taxonomy_members(enum_name: str) -> FrozenSet[str]:
    """Live member set of one taxonomy (kept current as PRs grow it)."""
    import importlib

    try:
        module = importlib.import_module(_TAXONOMY_SOURCES[enum_name])
        enum_cls = getattr(module, enum_name)
    except Exception:  # pragma: no cover - lint outside the repo tree
        return _TAXONOMY_FALLBACKS[enum_name]
    return frozenset(member.name for member in enum_cls)


def _taxonomy_member(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``<Taxonomy>.X`` -> ``("<Taxonomy>", "X")`` for known taxonomies."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in _TAXONOMY_SOURCES
    ):
        return node.value.id, node.attr
    return None


def _branch_members(
    test: ast.expr,
) -> Optional[Tuple[Optional[str], str, FrozenSet[str]]]:
    """Decode one branch test into (subject, taxonomy, members), if it is one.

    Handles ``x == Enum.M``, ``Enum.M == x``, ``x is Enum.M`` and
    ``x in (Enum.A, Enum.B)`` for every registered taxonomy.
    """
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return None
    left, op, right = test.left, test.ops[0], test.comparators[0]
    if isinstance(op, (ast.Eq, ast.Is)):
        decoded = _taxonomy_member(right)
        if decoded is not None:
            return _dotted_name(left), decoded[0], frozenset({decoded[1]})
        decoded = _taxonomy_member(left)
        if decoded is not None:
            return _dotted_name(right), decoded[0], frozenset({decoded[1]})
        return None
    if isinstance(op, ast.In) and isinstance(right, (ast.Tuple, ast.Set, ast.List)):
        decoded_members = [_taxonomy_member(elt) for elt in right.elts]
        if decoded_members and all(d is not None for d in decoded_members):
            enums = {d[0] for d in decoded_members}  # type: ignore[index]
            if len(enums) != 1:
                return None  # mixed taxonomies: not a dispatch branch
            return (
                _dotted_name(left),
                next(iter(enums)),
                frozenset(d[1] for d in decoded_members),  # type: ignore[misc]
            )
    return None


@register_rule
class DropReasonExhaustiveRule(LintRule):
    """Dispatches over the simulator's closed taxonomies must cover every
    member (DropReason, FaultKind, MutationKind, TopologyMutationKind)."""

    rule_id = "R002"
    name = "dropreason-exhaustive"
    severity = Severity.ERROR
    description = (
        "`if`/`elif` chains, `match` statements and dict literals "
        "dispatching on a closed taxonomy (`DropReason`, `FaultKind`, "
        "`MutationKind`, `TopologyMutationKind`) must handle every member "
        "or end in an explicit default branch"
    )
    rationale = (
        "The taxonomies grow PR over PR (QUEUE_OVERFLOW arrived after the "
        "first five drop reasons, ROUTING_LOOP with churn); a dispatch "
        "that silently ignores a new member mis-buckets events and skews "
        "every resilience experiment."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        elif_children: Set[int] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, ast.If):
                if len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If):
                    elif_children.add(id(node.orelse[0]))
        for node in ast.walk(context.tree):
            if isinstance(node, ast.If) and id(node) not in elif_children:
                yield from self._check_chain(context, node)
            elif isinstance(node, ast.Match):
                yield from self._check_match(context, node)
            elif isinstance(node, ast.Dict):
                yield from self._check_dict(context, node)

    def _check_chain(
        self, context: ModuleContext, head: ast.If
    ) -> Iterator[Finding]:
        covered: Set[str] = set()
        subjects: Set[Optional[str]] = set()
        enums: Set[str] = set()
        branches = 0
        node: ast.stmt = head
        while isinstance(node, ast.If):
            decoded = _branch_members(node.test)
            if decoded is None:
                return  # mixed chain: not a pure taxonomy dispatch
            subject, enum_name, branch_members = decoded
            subjects.add(subject)
            enums.add(enum_name)
            covered.update(branch_members)
            branches += 1
            if not node.orelse:
                break
            if len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If):
                node = node.orelse[0]
                continue
            return  # explicit else branch: defaulted, exhaustive enough
        if branches < 2 or len(subjects) != 1 or len(enums) != 1:
            return  # single test or inconsistent subject: not a dispatch
        enum_name = next(iter(enums))
        missing = _taxonomy_members(enum_name) - covered
        if missing:
            yield self.finding(
                context,
                head,
                f"{enum_name} dispatch does not handle "
                f"{', '.join(sorted(missing))} and has no `else` default",
            )

    def _check_dict(
        self, context: ModuleContext, node: ast.Dict
    ) -> Iterator[Finding]:
        """A dict literal keyed entirely by one taxonomy is a dispatch
        table: a missing key silently falls through `.get` defaults the
        same way a missing `elif` does.  Comprehensions and dicts with
        `**` spreads or non-taxonomy keys are left alone (their coverage
        cannot be read off the literal)."""
        if len(node.keys) < 2 or any(key is None for key in node.keys):
            return  # too small to be a table, or has a ** spread
        decoded = [_taxonomy_member(key) for key in node.keys]
        if any(d is None for d in decoded):
            return  # not purely taxonomy-keyed
        enums = {d[0] for d in decoded}  # type: ignore[index]
        if len(enums) != 1:
            return  # mixed taxonomies: not a dispatch table
        enum_name = next(iter(enums))
        covered = {d[1] for d in decoded}  # type: ignore[index]
        missing = _taxonomy_members(enum_name) - covered
        if missing:
            yield self.finding(
                context,
                node,
                f"{enum_name}-keyed dict literal omits "
                f"{', '.join(sorted(missing))}; cover every member or "
                f"build the table from the enum",
            )

    def _check_match(
        self, context: ModuleContext, node: ast.Match
    ) -> Iterator[Finding]:
        covered: Set[str] = set()
        enums: Set[str] = set()
        for case in node.cases:
            patterns = (
                case.pattern.patterns
                if isinstance(case.pattern, ast.MatchOr)
                else [case.pattern]
            )
            for pattern in patterns:
                if isinstance(pattern, ast.MatchValue):
                    decoded = _taxonomy_member(pattern.value)
                    if decoded is not None:
                        enums.add(decoded[0])
                        covered.add(decoded[1])
                elif isinstance(pattern, ast.MatchAs) and pattern.pattern is None:
                    return  # wildcard / capture-all default
        if len(enums) != 1:
            return  # no taxonomy values, or mixed taxonomies
        enum_name = next(iter(enums))
        missing = _taxonomy_members(enum_name) - covered
        if missing:
            yield self.finding(
                context,
                node,
                f"`match` over {enum_name} does not handle "
                f"{', '.join(sorted(missing))} and has no `case _:` "
                f"default",
            )


# -- R003 ---------------------------------------------------------------------

_SPAN_METHODS = frozenset(
    {
        "emit",
        "inject",
        "hop",
        "retry",
        "fault",
        "drop",
        "deliver",
        "corrupt",
        "quarantine",
        "heal",
        "ctx",
        "mutate",
        "repair",
        "converged",
        "persist",
        "reject",
        "recover",
        "swap",
        "sample",
        "slo",
    }
)


def _positive_guards(test: ast.expr) -> FrozenSet[str]:
    """Names proven non-None when ``test`` is true."""
    names: Set[str] = set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            names.update(_positive_guards(value))
    elif isinstance(test, ast.Compare) and len(test.ops) == 1:
        if isinstance(test.ops[0], ast.IsNot) and _is_none(test.comparators[0]):
            name = _dotted_name(test.left)
            if name:
                names.add(name)
    elif isinstance(test, (ast.Name, ast.Attribute)):
        name = _dotted_name(test)
        if name:
            names.add(name)
    return frozenset(names)


def _negative_guards(test: ast.expr) -> FrozenSet[str]:
    """Names proven None when ``test`` is true (early-return guards)."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        if isinstance(test.ops[0], ast.Is) and _is_none(test.comparators[0]):
            name = _dotted_name(test.left)
            if name:
                return frozenset({name})
    return frozenset()


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _is_tracer_receiver(name: str) -> bool:
    last = name.rsplit(".", maxsplit=1)[-1].lower()
    return "tracer" in last


@register_rule
class TracerGuardRule(LintRule):
    """Span emission in hot paths must use the nullable-tracer idiom."""

    rule_id = "R003"
    name = "tracer-guarded"
    severity = Severity.ERROR
    description = (
        "in `repro.simulator`, `repro.core` and `repro.store`, tracer span "
        "calls (`inject`/`hop`/`drop`/`deliver`/`persist`/`recover`/… "
        "/`emit`) must sit under `if tracer is not None` (or after an "
        "`is None` early return)"
    )
    rationale = (
        "The observability PR's zero-overhead guarantee is a single "
        "`is None` test per event site; an unconditional span call in the "
        "forwarding loop reintroduces tracer cost for every untraced run."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.in_package(
            "repro.simulator", "repro.core", "repro.store"
        ):
            return
        yield from self._scan_block(context, context.tree.body, frozenset())

    def _scan_block(
        self,
        context: ModuleContext,
        statements: Sequence[ast.stmt],
        guards: FrozenSet[str],
    ) -> Iterator[Finding]:
        for statement in statements:
            if isinstance(statement, ast.If):
                yield from self._scan_expression(context, statement.test, guards)
                positive = _positive_guards(statement.test)
                yield from self._scan_block(
                    context, statement.body, guards | positive
                )
                yield from self._scan_block(context, statement.orelse, guards)
                if _is_terminal(statement.body):
                    guards = guards | _negative_guards(statement.test)
            elif isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # Fresh scope: guards do not cross function boundaries.
                yield from self._scan_block(context, statement.body, frozenset())
            elif isinstance(statement, (ast.For, ast.AsyncFor)):
                yield from self._scan_expression(context, statement.iter, guards)
                yield from self._scan_block(context, statement.body, guards)
                yield from self._scan_block(context, statement.orelse, guards)
            elif isinstance(statement, ast.While):
                yield from self._scan_expression(context, statement.test, guards)
                positive = _positive_guards(statement.test)
                yield from self._scan_block(
                    context, statement.body, guards | positive
                )
                yield from self._scan_block(context, statement.orelse, guards)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                for item in statement.items:
                    yield from self._scan_expression(
                        context, item.context_expr, guards
                    )
                yield from self._scan_block(context, statement.body, guards)
            elif isinstance(statement, ast.Try):
                yield from self._scan_block(context, statement.body, guards)
                for handler in statement.handlers:
                    yield from self._scan_block(context, handler.body, guards)
                yield from self._scan_block(context, statement.orelse, guards)
                yield from self._scan_block(context, statement.finalbody, guards)
            elif isinstance(statement, ast.Match):
                yield from self._scan_expression(context, statement.subject, guards)
                for case in statement.cases:
                    yield from self._scan_block(context, case.body, guards)
            else:
                for child in ast.iter_child_nodes(statement):
                    if isinstance(child, ast.expr):
                        yield from self._scan_expression(context, child, guards)

    def _scan_expression(
        self,
        context: ModuleContext,
        expression: ast.expr,
        guards: FrozenSet[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(expression):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in _SPAN_METHODS:
                continue
            receiver = _dotted_name(node.func.value)
            if receiver is None or not _is_tracer_receiver(receiver):
                continue
            if receiver not in guards:
                yield self.finding(
                    context,
                    node,
                    f"unguarded tracer span call "
                    f"`{receiver}.{node.func.attr}(...)`; wrap it in "
                    f"`if {receiver} is not None:` (nullable-tracer idiom)",
                )


# -- R004 ---------------------------------------------------------------------

_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})
_NP_RANDOM_ALLOWED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "RandomState", "BitGenerator", "PCG64"}
)


@register_rule
class SeededRngRule(LintRule):
    """No ambient module-level RNG state."""

    rule_id = "R004"
    name = "seeded-rng"
    severity = Severity.ERROR
    description = (
        "no module-level `random.*` / `np.random.*` draws in `src/repro`; "
        "construct a seeded `random.Random(seed)` or "
        "`np.random.default_rng(seed)` and thread it explicitly"
    )
    rationale = (
        "Every experiment in the repo is a claim about G(n, 1/2) samples; "
        "ambient RNG state makes runs irreproducible and lets two "
        "subsystems silently correlate their draws."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "random"
                    and node.attr not in _RANDOM_ALLOWED
                ):
                    yield self.finding(
                        context,
                        node,
                        f"module-level `random.{node.attr}` uses ambient "
                        f"global RNG state; thread a seeded "
                        f"`random.Random(seed)` instead",
                    )
                else:
                    inner = node.value
                    if (
                        isinstance(inner, ast.Attribute)
                        and inner.attr == "random"
                        and isinstance(inner.value, ast.Name)
                        and inner.value.id in ("np", "numpy")
                        and node.attr not in _NP_RANDOM_ALLOWED
                    ):
                        yield self.finding(
                            context,
                            node,
                            f"global `{inner.value.id}.random.{node.attr}` "
                            f"draw; use a seeded "
                            f"`np.random.default_rng(seed)` generator",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in _RANDOM_ALLOWED:
                        yield self.finding(
                            context,
                            node,
                            f"`from random import {alias.name}` imports an "
                            f"ambient-state RNG function; import the module "
                            f"and construct `random.Random(seed)`",
                        )


# -- R005 ---------------------------------------------------------------------

# method name -> number of positional parameters (including self).
_SCHEME_REQUIRED = {
    "_build_function": 2,
    "encode_function": 2,
    "decode_function": 3,
    "stretch_bound": 1,
}
# Concrete base-class methods a subclass may override, with the positional
# arity the callers (space_report, verification, simulator) rely on.
_SCHEME_OVERRIDABLE = {
    "space_report": 1,
    "label_bits": 2,
    "aux_bits": 2,
    "integrity_bits": 2,
    "address_of": 2,
    "node_of_address": 2,
    "hop_limit": 1,
}


def _is_abstract_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = _dotted_name(base)
        if name and name.rsplit(".", maxsplit=1)[-1] in ("ABC", "ABCMeta"):
            return True
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in item.decorator_list:
                name = _dotted_name(decorator)
                if name and name.rsplit(".", maxsplit=1)[-1] == "abstractmethod":
                    return True
    return False


def _positional_arity(node: ast.FunctionDef) -> int:
    return len(node.args.posonlyargs) + len(node.args.args)


@register_rule
class SchemeContractRule(LintRule):
    """Direct RoutingScheme subclasses must implement the full contract."""

    rule_id = "R005"
    name = "scheme-contract"
    severity = Severity.ERROR
    description = (
        "direct `RoutingScheme` subclasses must define `_build_function`, "
        "`encode_function(u)`, `decode_function(u, bits)` and "
        "`stretch_bound()` with the contract arities; overridden "
        "accounting hooks must keep their signatures"
    )
    rationale = (
        "`space_report` and the verification walker call the contract "
        "blindly over every registered scheme; a missing or re-shaped "
        "method turns a Table 1 column into a runtime error (or worse, a "
        "default 0-bit charge)."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = {
                _dotted_name(base).rsplit(".", maxsplit=1)[-1]
                for base in node.bases
                if _dotted_name(base)
            }
            if "RoutingScheme" not in base_names:
                continue
            if _is_abstract_class(node):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            for required, arity in _SCHEME_REQUIRED.items():
                method = methods.get(required)
                if method is None:
                    yield self.finding(
                        context,
                        node,
                        f"scheme class {node.name} does not implement "
                        f"`{required}` (RoutingScheme contract)",
                    )
                elif _positional_arity(method) != arity:
                    yield self.finding(
                        context,
                        method,
                        f"{node.name}.{required} takes "
                        f"{_positional_arity(method)} positional args, "
                        f"contract expects {arity}",
                    )
            for overridable, arity in _SCHEME_OVERRIDABLE.items():
                method = methods.get(overridable)
                if method is not None and _positional_arity(method) != arity:
                    yield self.finding(
                        context,
                        method,
                        f"{node.name}.{overridable} takes "
                        f"{_positional_arity(method)} positional args, "
                        f"base contract expects {arity}",
                    )


# -- R006 ---------------------------------------------------------------------


def _is_silent_body(body: Sequence[ast.stmt]) -> bool:
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or `...`
        return False
    return True


def _catches_broad(handler_type: Optional[ast.expr]) -> bool:
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Tuple):
        return any(_catches_broad(elt) for elt in handler_type.elts)
    name = _dotted_name(handler_type)
    return name is not None and name.rsplit(".", maxsplit=1)[-1] in (
        "Exception",
        "BaseException",
    )


@register_rule
class NoSilentExceptRule(LintRule):
    """No swallowed failures in routing, simulation, or recovery paths."""

    rule_id = "R006"
    name = "no-silent-except"
    severity = Severity.ERROR
    description = (
        "no bare `except:`, and no `except Exception:`/`BaseException:` "
        "whose body only passes — failures must be recorded as structured "
        "drops or re-raised"
    )
    rationale = (
        "The chaos engine's drop taxonomy exists so every failure is "
        "attributable; a swallowed exception is a drop with no "
        "DropReason, invisible to the resilience metrics."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    context,
                    node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt "
                    "too; name the exception types",
                )
            elif _catches_broad(node.type) and _is_silent_body(node.body):
                yield self.finding(
                    context,
                    node,
                    "broad exception handler silently swallows the "
                    "failure; record a structured drop or re-raise",
                )


# -- R007 ---------------------------------------------------------------------


@register_rule
class PublicAnnotationsRule(LintRule):
    """Public API is fully typed."""

    rule_id = "R007"
    name = "public-annotations"
    severity = Severity.ERROR
    description = (
        "public module- and class-level functions in `src/repro` must "
        "annotate every parameter (self/cls and *args/**kwargs excepted) "
        "and the return type"
    )
    rationale = (
        "The mypy strict gate (`disallow_untyped_defs`) holds on the "
        "accounting-critical packages; annotations are how refactors keep "
        "bits `int` end to end."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        yield from self._scan(context, context.tree.body, in_class=False)

    def _scan(
        self,
        context: ModuleContext,
        body: Sequence[ast.stmt],
        in_class: bool,
    ) -> Iterator[Finding]:
        for statement in body:
            if isinstance(statement, ast.ClassDef):
                yield from self._scan(context, statement.body, in_class=True)
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if statement.name.startswith("_"):
                    continue
                yield from self._check_function(context, statement, in_class)

    def _check_function(
        self,
        context: ModuleContext,
        node: ast.FunctionDef,
        in_class: bool,
    ) -> Iterator[Finding]:
        arguments = node.args
        positional = list(arguments.posonlyargs) + list(arguments.args)
        if in_class and positional and not self._is_static(node):
            positional = positional[1:]  # self / cls by position
        missing = [
            argument.arg
            for argument in positional + list(arguments.kwonlyargs)
            if argument.annotation is None
        ]
        if missing:
            yield self.finding(
                context,
                node,
                f"public function {node.name} has unannotated "
                f"parameter(s): {', '.join(missing)}",
            )
        if node.returns is None:
            yield self.finding(
                context,
                node,
                f"public function {node.name} has no return annotation",
            )

    @staticmethod
    def _is_static(node: ast.FunctionDef) -> bool:
        for decorator in node.decorator_list:
            name = _dotted_name(decorator)
            if name and name.rsplit(".", maxsplit=1)[-1] == "staticmethod":
                return True
        return False


# -- R008 ---------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        if name and name.rsplit(".", maxsplit=1)[-1] in _MUTABLE_CALLS:
            return True
    return False


@register_rule
class NoMutableDefaultRule(LintRule):
    """No shared mutable default arguments."""

    rule_id = "R008"
    name = "no-mutable-default"
    severity = Severity.ERROR
    description = (
        "no mutable default argument values (`[]`, `{}`, `set()`, ...); "
        "default to `None` and construct inside the function"
    )
    rationale = (
        "A mutable default is process-global state: one simulator run's "
        "leftovers leak into the next, which is exactly the class of "
        "irreproducibility R004 exists to kill."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        context,
                        default,
                        f"mutable default argument in {node.name}; use "
                        f"`None` and construct per call",
                    )


# -- R009 ---------------------------------------------------------------------

_RAW_DERIVATIONS = frozenset({"distance_matrix", "_bfs_tree"})


@register_rule
class ContextRoutedDerivationsRule(LintRule):
    """Derived graph computations go through the shared GraphContext."""

    rule_id = "R009"
    name = "context-routed-derivations"
    severity = Severity.ERROR
    description = (
        "outside `repro.graphs`, no direct `distance_matrix(...)` or "
        "`_bfs_tree(...)` calls; derive through a `GraphContext` "
        "(`ctx.distances()`, `ctx.bfs_tree(root)`) so the result is "
        "memoized once per graph"
    )
    rationale = (
        "The GraphContext refactor made the distance matrix a "
        "compute-once-per-graph quantity; a raw call reintroduces an "
        "O(n·m) BFS sweep per call site and splits the corruption "
        "self-healer from its single pristine source. Deliberate "
        "cache-bypass measurements carry a line suppression."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if context.in_package("repro.graphs"):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name):
                callee = node.func.id
            elif isinstance(node.func, ast.Attribute):
                callee = node.func.attr
            else:
                continue
            if callee in _RAW_DERIVATIONS:
                yield self.finding(
                    context,
                    node,
                    f"direct `{callee}(...)` call outside `repro.graphs`; "
                    f"go through the shared context "
                    f"(`get_context(graph)` / `scheme.ctx`) so the "
                    f"derivation is computed once per graph",
                )


@register_rule
class UnusedSuppressionRule(LintRule):
    """R014: a suppression comment that silences nothing is stale."""

    rule_id = "R014"
    name = "unused-suppression"
    severity = Severity.WARNING
    description = (
        "a `# repro-lint: disable=RXXX` comment that suppresses zero "
        "findings is reported so documented exceptions cannot outlive the "
        "code they excused"
    )
    rationale = (
        "Suppressions are the audit trail of deliberate rule exceptions; "
        "once the excused code is rewritten, a leftover comment silently "
        "grants future violations a free pass. The runner counts every "
        "suppression's uses across the whole run (flow rules included) and "
        "flags the ones that earned none."
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        # Driven by the runner after all other rules have recorded their
        # suppression uses; per-module checking cannot see flow findings.
        return iter(())
