"""Inline suppression comments.

Two scopes:

``# repro-lint: disable=R001`` (or ``disable=R001,R003``)
    Suppresses the named rules on that physical line only.  Put it on the
    line the finding points at.

``# repro-lint: disable-file=R001``
    Anywhere in the file: suppresses the named rules for the whole file.

``disable=all`` / ``disable-file=all`` suppress every rule.  Suppressions
are counted, so reporters can show how many findings were muted — a
suppression is a documented exception, not a deletion.

Each suppression comment is additionally tracked as a
:class:`SuppressionComment` with a use counter: one that silences zero
findings across a full run is stale, and the runner reports it as R014
so documented exceptions cannot outlive the code they excused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

__all__ = ["SuppressionIndex", "SuppressionComment"]

_LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\s]+)")

_ALL = "all"


def _parse_ids(blob: str) -> FrozenSet[str]:
    return frozenset(
        part.strip().upper() if part.strip().lower() != _ALL else _ALL
        for part in blob.split(",")
        if part.strip()
    )


def _comment_lines(source: str) -> Iterator[Tuple[int, str]]:
    """``(lineno, text)`` of every comment token in ``source``.

    Falls back to yielding raw lines when the source cannot be tokenised
    (e.g. a syntax error past the comment being looked for).
    """
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            yield lineno, line
        return
    for token in tokens:
        if token.type == tokenize.COMMENT:
            yield token.start[0], token.string


@dataclass
class SuppressionComment:
    """One ``# repro-lint: disable[-file]=...`` comment, with usage."""

    line: int
    """1-based line the comment sits on."""
    ids: FrozenSet[str]
    """Rule ids it names (the literal ``all`` keyword included verbatim)."""
    whole_file: bool
    used: int = 0
    """Findings this comment silenced during the run."""

    def display_ids(self) -> str:
        return ",".join(sorted(self.ids))


@dataclass
class SuppressionIndex:
    """Per-file map of suppressed rules, built from raw source text."""

    per_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    """1-based line number -> rule ids disabled on that line."""
    whole_file: FrozenSet[str] = frozenset()
    """Rule ids disabled for the entire file."""
    comments: List[SuppressionComment] = field(default_factory=list)
    """Every suppression comment in declaration order, with use counts."""

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan source text for suppression comments.

        Scanning is token-based: only genuine ``#`` comment tokens count,
        so a docstring *describing* the suppression syntax is not itself a
        suppression (and cannot be reported as a stale one).  Sources that
        fail to tokenise fall back to a plain line scan.
        """
        per_line: Dict[int, FrozenSet[str]] = {}
        file_ids: Set[str] = set()
        comments: List[SuppressionComment] = []
        for lineno, text in _comment_lines(source):
            if "repro-lint" not in text:
                continue
            file_match = _FILE_RE.search(text)
            if file_match:
                ids = _parse_ids(file_match.group(1))
                file_ids.update(ids)
                comments.append(
                    SuppressionComment(line=lineno, ids=ids, whole_file=True)
                )
                continue
            line_match = _LINE_RE.search(text)
            if line_match:
                ids = _parse_ids(line_match.group(1))
                per_line[lineno] = ids
                comments.append(
                    SuppressionComment(line=lineno, ids=ids, whole_file=False)
                )
        return cls(
            per_line=per_line,
            whole_file=frozenset(file_ids),
            comments=comments,
        )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is muted at ``line`` (uses are recorded)."""
        hit = False
        for comment in self.comments:
            if comment.whole_file:
                if _ALL in comment.ids or rule_id in comment.ids:
                    comment.used += 1
                    hit = True
            elif comment.line == line and (
                _ALL in comment.ids or rule_id in comment.ids
            ):
                comment.used += 1
                hit = True
        return hit

    def unused(self, active_ids: FrozenSet[str], full_registry: bool) -> List[SuppressionComment]:
        """Comments that silenced nothing and whose rules all ran.

        A comment naming a rule outside ``active_ids`` is skipped — a
        ``--select R001`` run cannot judge a ``disable=R005`` comment.
        The ``all`` keyword is only judged when the full registry ran.
        """
        stale: List[SuppressionComment] = []
        for comment in self.comments:
            if comment.used:
                continue
            if _ALL in comment.ids:
                if not full_registry:
                    continue
            elif not comment.ids <= active_ids:
                continue
            stale.append(comment)
        return stale
