"""Inline suppression comments.

Two scopes:

``# repro-lint: disable=R001`` (or ``disable=R001,R003``)
    Suppresses the named rules on that physical line only.  Put it on the
    line the finding points at.

``# repro-lint: disable-file=R001``
    Anywhere in the file: suppresses the named rules for the whole file.

``disable=all`` / ``disable-file=all`` suppress every rule.  Suppressions
are counted, so reporters can show how many findings were muted — a
suppression is a documented exception, not a deletion.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

__all__ = ["SuppressionIndex"]

_LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\s]+)")

_ALL = "all"


def _parse_ids(blob: str) -> FrozenSet[str]:
    return frozenset(
        part.strip().upper() if part.strip().lower() != _ALL else _ALL
        for part in blob.split(",")
        if part.strip()
    )


@dataclass
class SuppressionIndex:
    """Per-file map of suppressed rules, built from raw source text."""

    per_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    """1-based line number -> rule ids disabled on that line."""
    whole_file: FrozenSet[str] = frozenset()
    """Rule ids disabled for the entire file."""

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan source text for suppression comments."""
        per_line: Dict[int, FrozenSet[str]] = {}
        file_ids: Set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "repro-lint" not in line:
                continue
            file_match = _FILE_RE.search(line)
            if file_match:
                file_ids.update(_parse_ids(file_match.group(1)))
                continue
            line_match = _LINE_RE.search(line)
            if line_match:
                per_line[lineno] = _parse_ids(line_match.group(1))
        return cls(per_line=per_line, whole_file=frozenset(file_ids))

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is muted at ``line``."""
        if _ALL in self.whole_file or rule_id in self.whole_file:
            return True
        ids = self.per_line.get(line)
        if ids is None:
            return False
        return _ALL in ids or rule_id in ids
