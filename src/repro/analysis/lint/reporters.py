"""Finding reporters: canonical text and machine-readable JSON.

Both renderings are deterministic (findings pre-sorted by the runner,
dict keys sorted) so the JSON output can be golden-tested and diffed
across CI runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.lint.registry import all_rules
from repro.analysis.lint.runner import LintResult

__all__ = ["render_text", "render_json", "report_dict", "describe_rules"]

REPORT_VERSION = 1
"""Schema version of the JSON report (bump on breaking shape changes)."""


def render_text(result: LintResult) -> str:
    """`file:line:col: RULE [severity] message` lines plus a summary."""
    lines = [finding.format() for finding in result.findings]
    if result.findings:
        by_rule = ", ".join(
            f"{rule_id}×{count}" for rule_id, count in result.counts_by_rule.items()
        )
        lines.append(
            f"{len(result.findings)} finding(s) in {result.files_checked} "
            f"file(s) [{by_rule}]"
            + (f"; {result.suppressed} suppressed" if result.suppressed else "")
        )
    else:
        lines.append(
            f"clean: 0 findings in {result.files_checked} file(s)"
            + (f"; {result.suppressed} suppressed" if result.suppressed else "")
        )
    return "\n".join(lines)


def report_dict(result: LintResult) -> Dict[str, Any]:
    """The JSON report as a plain dict (for embedding)."""
    return {
        "version": REPORT_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "counts_by_rule": result.counts_by_rule,
        "counts_by_severity": result.counts_by_severity,
        "findings": [finding.to_dict() for finding in result.findings],
    }


def render_json(result: LintResult) -> str:
    """Stable JSON rendering of the full report."""
    return json.dumps(report_dict(result), indent=2, sort_keys=True)


def describe_rules() -> str:
    """Human-readable rule catalogue (the ``--list-rules`` output)."""
    blocks = []
    for rule in all_rules():
        blocks.append(
            f"{rule.rule_id} {rule.name} [{rule.severity.value}]\n"
            f"    {rule.description}\n"
            f"    rationale: {rule.rationale}"
        )
    return "\n".join(blocks)
