"""Lint driver: discover files, parse, run rules, apply suppressions.

The runner is deliberately import-free with respect to the linted code —
everything is a source-text pass, so a module with a runtime-only import
problem still gets linted (and a syntax error becomes an ``R000`` finding
rather than a crash).

Two passes:

1. **Module pass** — every per-file rule runs against each parsed file.
2. **Flow pass** — every parsed file joins one
   :class:`~repro.analysis.flow.symbols.ProjectIndex`; the
   interprocedural :class:`~repro.analysis.flow.summaries.FlowAnalysis`
   fixpoints run once, and each registered
   :class:`~repro.analysis.lint.registry.FlowRule` reports against the
   whole program.  Flow findings are routed back to their file's
   suppression index, so ``# repro-lint: disable=R011`` works the same
   for both passes.

Afterwards the runner reports stale suppressions (R014): comments whose
use counter stayed at zero across both passes.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import (
    FlowRule,
    LintRule,
    ModuleContext,
    all_rules,
)
from repro.analysis.lint.suppressions import SuppressionIndex

# Importing the rules modules populates the registry (per-file and flow).
from repro.analysis.lint import rules as _rules  # noqa: F401
from repro.analysis.flow import rules as _flow_rules  # noqa: F401

__all__ = ["LintResult", "lint_paths", "lint_source", "iter_python_files"]

_PARSE_ERROR_RULE = "R000"
_UNUSED_SUPPRESSION_RULE = "R014"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    """Findings muted by ``# repro-lint: disable`` comments."""
    callgraph: Optional[Dict[str, object]] = None
    """JSON-dumpable call graph when the flow pass ran (else None)."""

    @property
    def counts_by_rule(self) -> Dict[str, int]:
        """Finding counts per rule id (sorted keys)."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def counts_by_severity(self) -> Dict[str, int]:
        """Finding counts per severity."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            key = finding.severity.value
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def worst_severity(self) -> Optional[Severity]:
        """The most severe finding present, or None for a clean run."""
        if any(f.severity is Severity.ERROR for f in self.findings):
            return Severity.ERROR
        if self.findings:
            return Severity.WARNING
        return None

    def extend(self, other: "LintResult") -> None:
        """Merge another result into this one."""
        self.findings.extend(other.findings)
        self.files_checked += other.files_checked
        self.suppressed += other.suppressed


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen = set()
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        collected.append(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            collected.append(path)
    for path in sorted(collected):
        if path not in seen:
            seen.add(path)
            yield path


def _module_name(path: str) -> str:
    """Dotted module name derived from the path (rooted at ``repro``)."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    without_ext = normalized[:-3] if normalized.endswith(".py") else normalized
    parts = without_ext.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts)


@dataclass
class _FileState:
    """One source file's parse outcome and suppression ledger."""

    path: str
    source: str
    module: str
    context: Optional[ModuleContext]
    """None when the file failed to parse (an R000 finding exists)."""
    suppressions: SuppressionIndex
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0


def _split_rules(
    active_rules: Optional[Iterable[LintRule]],
) -> Tuple[List[LintRule], List[FlowRule], FrozenSet[str], bool]:
    """Partition the active rules into module rules and flow rules."""
    rules_list = list(active_rules) if active_rules is not None else list(
        all_rules()
    )
    full_registry = active_rules is None or len(rules_list) == len(all_rules())
    module_rules = [r for r in rules_list if not isinstance(r, FlowRule)]
    flow_rules = [r for r in rules_list if isinstance(r, FlowRule)]
    active_ids = frozenset(r.rule_id for r in rules_list)
    return module_rules, flow_rules, active_ids, full_registry


def _make_state(path: str, source: str, module: Optional[str]) -> _FileState:
    resolved_module = module if module is not None else _module_name(path)
    suppressions = SuppressionIndex.from_source(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        state = _FileState(
            path=path,
            source=source,
            module=resolved_module,
            context=None,
            suppressions=suppressions,
        )
        state.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=_PARSE_ERROR_RULE,
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
            )
        )
        return state
    context = ModuleContext(
        path=path,
        source=source,
        tree=tree,
        module=resolved_module,
        lines=source.splitlines(),
    )
    return _FileState(
        path=path,
        source=source,
        module=resolved_module,
        context=context,
        suppressions=suppressions,
    )


def _add_finding(state: _FileState, finding: Finding) -> None:
    if state.suppressions.is_suppressed(finding.rule_id, finding.line):
        state.suppressed += 1
    else:
        state.findings.append(finding)


def _run_states(
    states: List[_FileState],
    active_rules: Optional[Iterable[LintRule]],
    flow: bool,
) -> LintResult:
    module_rules, flow_rules, active_ids, full_registry = _split_rules(
        active_rules
    )

    for state in states:
        if state.context is None:
            continue
        for rule in module_rules:
            for finding in rule.check(state.context):
                _add_finding(state, finding)

    result = LintResult(files_checked=len(states))
    if flow and flow_rules:
        from repro.analysis.flow import FlowAnalysis, build_project

        parsed = [s for s in states if s.context is not None]
        project = build_project(
            (s.module, s.path, s.context.tree)  # type: ignore[union-attr]
            for s in parsed
        )
        analysis = FlowAnalysis(project).run()
        result.callgraph = analysis.graph.to_dict()
        by_path: Dict[str, _FileState] = {s.path: s for s in states}
        for rule in flow_rules:
            for finding in rule.check_project(analysis):
                state = by_path.get(finding.path)
                if state is not None:
                    _add_finding(state, finding)
                else:  # pragma: no cover - defensive (unknown path)
                    result.findings.append(finding)

    if _UNUSED_SUPPRESSION_RULE in active_ids:
        # Flow coverage differs from what a suppression's author could
        # rely on when the flow pass is off, so only judge flow-rule
        # suppressions (and `all`) when the flow pass actually ran.
        judged_ids = active_ids if flow else frozenset(
            rule.rule_id for rule in module_rules
        )
        for state in states:
            for comment in state.suppressions.unused(
                judged_ids, full_registry and flow
            ):
                scope = "disable-file" if comment.whole_file else "disable"
                _add_finding(
                    state,
                    Finding(
                        path=state.path,
                        line=comment.line,
                        col=0,
                        rule_id=_UNUSED_SUPPRESSION_RULE,
                        severity=Severity.WARNING,
                        message=(
                            f"suppression `# repro-lint: "
                            f"{scope}={comment.display_ids()}` matched no "
                            "findings in this run; remove the stale comment"
                        ),
                    ),
                )

    for state in states:
        result.findings.extend(state.findings)
        result.suppressed += state.suppressed
    result.findings.sort(key=lambda finding: finding.sort_key)
    return result


def lint_source(
    source: str,
    path: str = "<string>",
    active_rules: Optional[Iterable[LintRule]] = None,
    module: Optional[str] = None,
    flow: bool = False,
) -> LintResult:
    """Lint one in-memory source blob (the testing entry point).

    With ``flow=True`` the blob forms a one-module project and the flow
    rules run against it too (off by default: a lone module is rarely a
    meaningful whole program).
    """
    state = _make_state(path, source, module)
    return _run_states([state], active_rules, flow=flow)


def lint_paths(
    paths: Sequence[str],
    active_rules: Optional[Iterable[LintRule]] = None,
    flow: bool = True,
    restrict_to: Optional[Set[str]] = None,
) -> LintResult:
    """Lint every Python file under ``paths``.

    ``restrict_to`` (absolute paths) keeps findings only for the named
    files — the ``--diff`` mode.  Every discovered file still parses and
    joins the whole-program analysis (a helper you did not touch can
    still convict the line you did); parse failures (R000) are always
    reported since they mean the program picture is incomplete.
    """
    states: List[_FileState] = []
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            state = _FileState(
                path=path,
                source="",
                module=_module_name(path),
                context=None,
                suppressions=SuppressionIndex.from_source(""),
            )
            state.findings.append(
                Finding(
                    path=path,
                    line=1,
                    col=0,
                    rule_id=_PARSE_ERROR_RULE,
                    severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                )
            )
            states.append(state)
            continue
        states.append(_make_state(path, source, module=None))
    result = _run_states(states, active_rules, flow=flow)
    if restrict_to is not None:
        allowed = {os.path.abspath(p) for p in restrict_to}
        result.findings = [
            f
            for f in result.findings
            if os.path.abspath(f.path) in allowed
            or f.rule_id == _PARSE_ERROR_RULE
        ]
    return result
