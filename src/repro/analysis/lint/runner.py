"""Lint driver: discover files, parse, run rules, apply suppressions.

The runner is deliberately import-free with respect to the linted code —
everything is a source-text pass, so a module with a runtime-only import
problem still gets linted (and a syntax error becomes an ``R000`` finding
rather than a crash).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.lint.findings import Finding, Severity
from repro.analysis.lint.registry import LintRule, ModuleContext, all_rules
from repro.analysis.lint.suppressions import SuppressionIndex

# Importing the rules module populates the registry.
from repro.analysis.lint import rules as _rules  # noqa: F401

__all__ = ["LintResult", "lint_paths", "lint_source", "iter_python_files"]

_PARSE_ERROR_RULE = "R000"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    """Findings muted by ``# repro-lint: disable`` comments."""

    @property
    def counts_by_rule(self) -> Dict[str, int]:
        """Finding counts per rule id (sorted keys)."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def counts_by_severity(self) -> Dict[str, int]:
        """Finding counts per severity."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            key = finding.severity.value
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def worst_severity(self) -> Optional[Severity]:
        """The most severe finding present, or None for a clean run."""
        if any(f.severity is Severity.ERROR for f in self.findings):
            return Severity.ERROR
        if self.findings:
            return Severity.WARNING
        return None

    def extend(self, other: "LintResult") -> None:
        """Merge another result into this one."""
        self.findings.extend(other.findings)
        self.files_checked += other.files_checked
        self.suppressed += other.suppressed


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen = set()
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        collected.append(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            collected.append(path)
    for path in sorted(collected):
        if path not in seen:
            seen.add(path)
            yield path


def _module_name(path: str) -> str:
    """Dotted module name derived from the path (rooted at ``repro``)."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    without_ext = normalized[:-3] if normalized.endswith(".py") else normalized
    parts = without_ext.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts)


def lint_source(
    source: str,
    path: str = "<string>",
    active_rules: Optional[Iterable[LintRule]] = None,
    module: Optional[str] = None,
) -> LintResult:
    """Lint one in-memory source blob (the testing entry point)."""
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=_PARSE_ERROR_RULE,
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
            )
        )
        return result
    context = ModuleContext(
        path=path,
        source=source,
        tree=tree,
        module=module if module is not None else _module_name(path),
        lines=source.splitlines(),
    )
    suppressions = SuppressionIndex.from_source(source)
    for rule in active_rules if active_rules is not None else all_rules():
        for finding in rule.check(context):
            if suppressions.is_suppressed(finding.rule_id, finding.line):
                result.suppressed += 1
            else:
                result.findings.append(finding)
    result.findings.sort(key=lambda finding: finding.sort_key)
    return result


def lint_paths(
    paths: Sequence[str],
    active_rules: Optional[Iterable[LintRule]] = None,
) -> LintResult:
    """Lint every Python file under ``paths``."""
    rules_list: Tuple[LintRule, ...] = (
        tuple(active_rules) if active_rules is not None else all_rules()
    )
    total = LintResult()
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            total.findings.append(
                Finding(
                    path=path,
                    line=1,
                    col=0,
                    rule_id=_PARSE_ERROR_RULE,
                    severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                )
            )
            total.files_checked += 1
            continue
        total.extend(lint_source(source, path=path, active_rules=rules_list))
    total.findings.sort(key=lambda finding: finding.sort_key)
    return total
