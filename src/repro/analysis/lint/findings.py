"""Structured linter findings.

A finding is one rule violation at one source location.  Findings are
value objects: reporters sort them (path, line, col, rule id) so text and
JSON output are deterministic across runs and platforms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Severity", "Finding"]


class Severity(str, enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break paper semantics (bit accounting, taxonomy
    exhaustiveness, reproducibility); ``WARNING`` findings break repo
    conventions that degrade gracefully.  The CLI's ``--fail-on`` flag
    chooses which level fails the build (default: any finding).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation: ``file:line:col rule-id message``."""

    path: str
    """Path of the offending file, as given to the runner."""
    line: int
    """1-based source line."""
    col: int
    """0-based column (matches ``ast`` node offsets)."""
    rule_id: str
    """Stable rule identifier (``R001`` ... ``R008``, ``R000`` for parse errors)."""
    severity: Severity
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        """Deterministic ordering: path, then position, then rule."""
        return (self.path, self.line, self.col, self.rule_id)

    def format(self) -> str:
        """The canonical one-line rendering."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-reporter row."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }
