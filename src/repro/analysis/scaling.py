"""Growth-law fitting for the reproduction benches.

The paper's claims are asymptotic (``O(n²)``, ``Θ(n log log n)``, ...), so
the benches validate *shape*: measure total bits over a sweep of ``n``,
then find which candidate growth law fits best.  Two tools:

* :func:`fit_power_law` — least-squares slope in log-log space (the
  empirical exponent of ``T(n) ≈ a n^b``);
* :func:`best_law` — per-candidate one-parameter fits (constant multiplier)
  ranked by relative RMS error, over the paper's menu of laws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.errors import AnalysisError

__all__ = ["GROWTH_LAWS", "LawFit", "PowerLawFit", "fit_power_law", "best_law"]


def _loglog(n: float) -> float:
    return math.log2(max(math.log2(max(n, 4.0)), 2.0))


GROWTH_LAWS: Dict[str, Callable[[float], float]] = {
    "1": lambda n: 1.0,
    "log n": lambda n: math.log2(max(n, 2.0)),
    "n": lambda n: n,
    "n log log n": lambda n: n * _loglog(n),
    "n log n": lambda n: n * math.log2(max(n, 2.0)),
    "n log^2 n": lambda n: n * math.log2(max(n, 2.0)) ** 2,
    "n^2": lambda n: n * n,
    "n^2 log n": lambda n: n * n * math.log2(max(n, 2.0)),
    "n^3": lambda n: float(n) ** 3,
}
"""The growth laws appearing in the paper's Table 1."""


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a log-log linear regression ``T(n) = a · n^b``."""

    exponent: float
    coefficient: float
    r_squared: float


def fit_power_law(ns: Sequence[float], values: Sequence[float]) -> PowerLawFit:
    """Fit ``T(n) = a n^b`` by least squares in log-log space."""
    if len(ns) != len(values) or len(ns) < 2:
        raise AnalysisError("need at least two (n, value) samples")
    if any(n <= 0 for n in ns) or any(v <= 0 for v in values):
        raise AnalysisError("power-law fitting needs positive samples")
    log_n = np.log(np.asarray(ns, dtype=float))
    log_v = np.log(np.asarray(values, dtype=float))
    slope, intercept = np.polyfit(log_n, log_v, 1)
    predicted = slope * log_n + intercept
    residual = float(np.sum((log_v - predicted) ** 2))
    total = float(np.sum((log_v - log_v.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(math.exp(intercept)),
        r_squared=r_squared,
    )


@dataclass(frozen=True)
class LawFit:
    """One candidate law fitted with its best constant multiplier."""

    law: str
    constant: float
    relative_rms_error: float


def best_law(
    ns: Sequence[float],
    values: Sequence[float],
    candidates: Sequence[str] | None = None,
) -> List[LawFit]:
    """Rank candidate growth laws by relative RMS error (best first).

    For each law ``g`` the constant ``c`` minimising ``Σ (T_i - c g(n_i))²``
    is ``Σ T g / Σ g²``; the reported error is the RMS of
    ``(T_i - c g(n_i)) / T_i``.
    """
    if len(ns) != len(values) or len(ns) < 2:
        raise AnalysisError("need at least two (n, value) samples")
    names = list(candidates) if candidates is not None else list(GROWTH_LAWS)
    unknown = [name for name in names if name not in GROWTH_LAWS]
    if unknown:
        raise AnalysisError(f"unknown growth laws: {unknown}")
    values_arr = np.asarray(values, dtype=float)
    fits = []
    for name in names:
        g = np.asarray([GROWTH_LAWS[name](n) for n in ns], dtype=float)
        constant = float(np.dot(values_arr, g) / np.dot(g, g))
        relative = (values_arr - constant * g) / values_arr
        fits.append(
            LawFit(
                law=name,
                constant=constant,
                relative_rms_error=float(np.sqrt(np.mean(relative**2))),
            )
        )
    fits.sort(key=lambda fit: fit.relative_rms_error)
    return fits
