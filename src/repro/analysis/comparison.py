"""Side-by-side scheme comparison on a single graph.

Used by the CLI's ``compare`` command and the examples: build several
schemes on the same topology, verify each, and tabulate measured size and
stretch.  Schemes whose model requirements or structural prerequisites the
graph does not meet are reported as refusals rather than hidden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core import build_scheme, verify_scheme
from repro.errors import ModelError, SchemeBuildError
from repro.graphs import LabeledGraph, get_context
from repro.models import Knowledge, Labeling, RoutingModel

__all__ = ["ComparisonRow", "compare_schemes", "format_comparison", "DEFAULT_MENU"]

DEFAULT_MENU: Tuple[Tuple[str, RoutingModel], ...] = (
    ("full-information", RoutingModel(Knowledge.II, Labeling.ALPHA)),
    ("full-table", RoutingModel(Knowledge.IA, Labeling.ALPHA)),
    ("multi-interval", RoutingModel(Knowledge.IA, Labeling.ALPHA)),
    ("thm1-two-level", RoutingModel(Knowledge.II, Labeling.ALPHA)),
    ("thm2-neighbor-labels", RoutingModel(Knowledge.II, Labeling.GAMMA)),
    ("thm3-centers", RoutingModel(Knowledge.II, Labeling.ALPHA)),
    ("thm4-hub", RoutingModel(Knowledge.II, Labeling.ALPHA)),
    ("thm5-probe", RoutingModel(Knowledge.II, Labeling.ALPHA)),
    ("interval", RoutingModel(Knowledge.II, Labeling.BETA)),
    ("tree-cover", RoutingModel(Knowledge.II, Labeling.GAMMA)),
)
"""Every registered scheme with its natural model."""


@dataclass(frozen=True)
class ComparisonRow:
    """One scheme's measured outcome on the comparison graph."""

    scheme: str
    model: RoutingModel
    built: bool
    total_bits: int = 0
    max_node_bits: int = 0
    max_stretch: float = 0.0
    mean_stretch: float = 0.0
    refusal: Optional[str] = None


def compare_schemes(
    graph: LabeledGraph,
    menu: Sequence[Tuple[str, RoutingModel]] = DEFAULT_MENU,
    sample_pairs: Optional[int] = 400,
    seed: int = 0,
) -> List[ComparisonRow]:
    """Build and verify every scheme in the menu on one graph.

    All ten builds and verifications share one :class:`GraphContext`:
    the distance matrix, port table and degree statistics are derived
    once for the whole menu, not once per scheme.
    """
    ctx = get_context(graph)
    rows = []
    for name, model in menu:
        try:
            scheme = build_scheme(name, graph, model, ctx=ctx)
        except (SchemeBuildError, ModelError) as exc:
            rows.append(
                ComparisonRow(
                    scheme=name, model=model, built=False, refusal=str(exc)
                )
            )
            continue
        report = scheme.space_report()
        verification = verify_scheme(
            scheme, sample_pairs=sample_pairs, seed=seed
        )
        if not verification.all_delivered:
            raise SchemeBuildError(
                f"{name} failed delivery during comparison: "
                f"{verification.failures[:2]}"
            )
        rows.append(
            ComparisonRow(
                scheme=name,
                model=model,
                built=True,
                total_bits=report.total_bits,
                max_node_bits=report.max_node_bits,
                max_stretch=verification.max_stretch,
                mean_stretch=verification.mean_stretch,
            )
        )
    return rows


def format_comparison(rows: Sequence[ComparisonRow]) -> str:
    """Human-readable comparison table."""
    lines = [
        f"{'scheme':22s} {'model':8s} {'total bits':>11s} {'max/node':>9s} "
        f"{'max stretch':>12s} {'mean':>6s}"
    ]
    for row in rows:
        if not row.built:
            lines.append(
                f"{row.scheme:22s} {str(row.model.labeling):8s} "
                f"{'—':>11s} {'—':>9s}  refused: {row.refusal}"
            )
            continue
        lines.append(
            f"{row.scheme:22s} {str(row.model.labeling):8s} "
            f"{row.total_bits:>11d} {row.max_node_bits:>9d} "
            f"{row.max_stretch:>12.2f} {row.mean_stretch:>6.2f}"
        )
    return "\n".join(lines)
