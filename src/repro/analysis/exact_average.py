"""Exact Definition 5 averages by exhaustive enumeration (tiny n).

Definition 5 averages ``T(G)`` uniformly over *all* ``2^{n(n-1)/2}``
labelled graphs on ``n`` nodes.  For tiny ``n`` that set is enumerable, so
the Monte-Carlo estimates used everywhere else can be validated against the
exact quantity — and the enumeration doubles as a check that a scheme
really is universal over its graph class (the paper's "universal routing
strategy").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.bitio import BitArray
from repro.errors import AnalysisError, SchemeBuildError
from repro.graphs import LabeledGraph, decode_graph, edge_code_length
from repro.models import RoutingModel
from repro.core.scheme import RoutingScheme

__all__ = ["ExactAverage", "all_graphs", "exact_average_bits"]

_MAX_EXACT_N = 5  # 2^10 = 1024 graphs; n = 6 would already be 32768.


def all_graphs(n: int, connected_only: bool = False) -> Iterator[LabeledGraph]:
    """Enumerate every labelled graph on ``n`` nodes (Definition 2 order)."""
    if n < 1:
        raise AnalysisError(f"n must be positive, got {n}")
    if n > _MAX_EXACT_N:
        raise AnalysisError(
            f"exhaustive enumeration is limited to n <= {_MAX_EXACT_N}; "
            f"use Monte-Carlo sweeps beyond that"
        )
    code_length = edge_code_length(n)
    for code in range(2**code_length):
        graph = decode_graph(BitArray.from_int(code, code_length), n)
        if connected_only and not graph.is_connected():
            continue
        yield graph


@dataclass(frozen=True)
class ExactAverage:
    """The exact uniform average of a scheme's total bits."""

    n: int
    graphs_total: int
    graphs_built: int
    """Graphs on which the builder succeeded (universal schemes: all)."""
    # Uniform average over graphs, deliberately real-valued.
    mean_total_bits: float  # repro-lint: disable=R001
    max_total_bits: int


def exact_average_bits(
    builder: Callable[[LabeledGraph, RoutingModel], RoutingScheme],
    model: RoutingModel,
    n: int,
    connected_only: bool = True,
    skip_unbuildable: bool = False,
) -> ExactAverage:
    """Compute Definition 5's average exactly for one scheme builder.

    ``connected_only`` restricts to connected graphs (routing between
    components is undefined).  With ``skip_unbuildable`` the average is
    taken over the graphs the construction supports — the conditioning the
    paper applies when a theorem only covers random-like graphs.
    """
    total = 0
    built = 0
    bits_sum = 0
    bits_max = 0
    for graph in all_graphs(n, connected_only=connected_only):
        total += 1
        try:
            scheme = builder(graph, model)
        except SchemeBuildError:
            if skip_unbuildable:
                continue
            raise
        built += 1
        bits = scheme.space_report().total_bits
        bits_sum += bits
        bits_max = max(bits_max, bits)
    if built == 0:
        raise AnalysisError(f"no buildable graphs on n={n}")
    return ExactAverage(
        n=n,
        graphs_total=total,
        graphs_built=built,
        mean_total_bits=bits_sum / built,  # repro-lint: disable=R001
        max_total_bits=bits_max,
    )
