"""Theorem 7 machinery: Claims 2 and 3, executable.

**Claim 2** is a combinatorial inequality: if ``x₁ + ... + x_k = n`` with
``x_i ≥ 1`` then ``Σ ⌈log x_i⌉ ≤ n - k``.

**Claim 3** turns a routing function into a description of a node's
interconnection pattern: apply ``F(u)`` to every label; each port ``i``
collects a list of ``z_i`` destinations, exactly one of which is the true
neighbour on that port, and naming it costs ``⌈log z_i⌉`` bits.  By
Claim 2 (with ``k = d(u) ≈ n/2``) the whole pattern costs only
``n/2 + o(n)`` extra bits beyond ``F(u)`` — but the pattern of a random
graph carries ``n - 1`` bits, so ``|F(u)| ≥ n/2 - o(n)`` when neighbours
are not known (models IA ∨ IB): Theorem 7's ``Ω(n²)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import ReproError
from repro.models import minimal_label_bits
from repro.core.full_table import FullTableScheme

__all__ = [
    "claim2_lhs",
    "claim2_holds",
    "port_destination_lists",
    "encode_neighbor_choices",
    "decode_neighbor_choices",
    "Theorem7NodeLedger",
    "theorem7_ledger",
]


def claim2_lhs(xs: Sequence[int]) -> int:
    """``Σ ⌈log₂ x_i⌉`` over positive integers."""
    if any(x < 1 for x in xs):
        raise ReproError(f"Claim 2 requires x_i >= 1, got {list(xs)}")
    return sum(math.ceil(math.log2(x)) for x in xs)


def claim2_holds(xs: Sequence[int]) -> bool:
    """Check ``Σ ⌈log x_i⌉ ≤ (Σ x_i) - k`` (Claim 2)."""
    return claim2_lhs(xs) <= sum(xs) - len(xs)


def port_destination_lists(
    scheme: FullTableScheme, u: int
) -> Dict[int, List[int]]:
    """Destinations grouped by the port ``F(u)`` routes them over.

    This is Claim 3's first step: "apply the local routing function to each
    of the labels of the nodes in turn".
    """
    function = scheme.function(u)
    lists: Dict[int, List[int]] = {}
    for w in scheme.graph.nodes:
        if w == u:
            continue
        lists.setdefault(function.port_for(w), []).append(w)
    return lists


def encode_neighbor_choices(scheme: FullTableScheme, u: int) -> BitArray:
    """Per port, the index of the true neighbour among its destinations.

    Port order is ``1..d(u)``; each index is written in ``⌈log₂ z_i⌉``
    bits, no separators (Claim 3: the ``z_i`` are derivable from ``F(u)``).
    """
    graph = scheme.graph
    ports = scheme.port_assignment
    lists = port_destination_lists(scheme, u)
    writer = BitWriter()
    for port in range(1, graph.degree(u) + 1):
        destinations = lists.get(port, [])
        neighbor = ports.neighbor(u, port)
        try:
            index = destinations.index(neighbor)
        except ValueError as exc:
            raise ReproError(
                f"port {port} at node {u} never routes its own neighbour "
                f"{neighbor} — not a shortest-path function"
            ) from exc
        width = max(len(destinations) - 1, 0).bit_length()
        writer.write_uint(index, width)
    return writer.getvalue()


def decode_neighbor_choices(
    bits: BitArray, destination_lists: Dict[int, List[int]]
) -> Tuple[int, ...]:
    """Recover the neighbour set from ``F(u)``'s groups plus the choice bits.

    Together with the routing function itself this reconstructs the node's
    interconnection pattern — the content of Claim 3.
    """
    reader = BitReader(bits)
    neighbors = []
    for port in sorted(destination_lists):
        destinations = destination_lists[port]
        width = max(len(destinations) - 1, 0).bit_length()
        neighbors.append(destinations[reader.read_uint(width)])
    return tuple(sorted(neighbors))


@dataclass(frozen=True)
class Theorem7NodeLedger:
    """Per-node bit accounting of the Theorem 7 argument."""

    node: int
    pattern_bits: int
    """Information content of the interconnection row (``n - 1`` literal bits)."""
    choice_bits: int
    """Measured ``Σ ⌈log z_i⌉`` — Claim 3's extra description cost."""
    claim2_budget: int
    """Claim 2's ceiling ``(n - 1) - d(u)`` on the choice bits."""
    implied_function_bound: int
    """``pattern - choices - O(log n)``: bits ``F(u)`` must itself contain."""


def theorem7_ledger(scheme: FullTableScheme, u: int) -> Theorem7NodeLedger:
    """Run the Claim 3 description for one node and do the arithmetic."""
    graph = scheme.graph
    n = graph.n
    choices = encode_neighbor_choices(scheme, u)
    lists = port_destination_lists(scheme, u)
    rebuilt = decode_neighbor_choices(choices, lists)
    if rebuilt != graph.neighbors(u):
        raise ReproError(
            f"Claim 3 reconstruction failed at node {u}"
        )
    zs = [len(destinations) for destinations in lists.values()]
    if not claim2_holds(zs):
        raise ReproError(f"Claim 2 violated at node {u}: {zs}")
    pattern_bits = n - 1
    overhead = 2 * minimal_label_bits(n)
    return Theorem7NodeLedger(
        node=u,
        pattern_bits=pattern_bits,
        choice_bits=len(choices),
        claim2_budget=(n - 1) - graph.degree(u),
        implied_function_bound=pattern_bits - len(choices) - overhead,
    )
