"""Lower-bound experiments (Theorems 7–9).

* :mod:`~repro.lowerbounds.port_permutation` — the Theorem 8 adversary:
  random port assignments force ``(n/2) log(n/2)`` bits per node under
  ``IA ∧ α``;
* :mod:`~repro.lowerbounds.claim23` — Claims 2 and 3 of Theorem 7: any
  routing function plus ``n/2 + o(n)`` choice bits reconstructs the
  interconnection pattern, so ``F(u)`` must hold ``Ω(n)`` bits when
  neighbours are unknown;
* :mod:`~repro.lowerbounds.explicit_graph` — the Figure 1 family of
  Theorem 9: stretch < 2 under model α forces ``k log k`` bits at each of
  the ``k = n/3`` inner nodes.
"""

from repro.lowerbounds.claim23 import (
    Theorem7NodeLedger,
    claim2_holds,
    claim2_lhs,
    decode_neighbor_choices,
    encode_neighbor_choices,
    port_destination_lists,
    theorem7_ledger,
)
from repro.lowerbounds.explicit_graph import (
    ExplicitLowerBoundScheme,
    detour_stretch,
    recover_outer_assignment,
    theorem9_theory_bits,
)
from repro.lowerbounds.port_permutation import (
    Theorem8Result,
    decode_port_permutation,
    encode_port_permutation,
    recover_port_permutation,
    run_theorem8_experiment,
)
from repro.lowerbounds.port_steganography import (
    embed_bits_in_ports,
    extract_bits_from_ports,
    node_port_capacity,
    total_port_capacity,
)

__all__ = [
    "ExplicitLowerBoundScheme",
    "Theorem7NodeLedger",
    "Theorem8Result",
    "claim2_holds",
    "claim2_lhs",
    "decode_neighbor_choices",
    "decode_port_permutation",
    "detour_stretch",
    "embed_bits_in_ports",
    "encode_neighbor_choices",
    "encode_port_permutation",
    "extract_bits_from_ports",
    "node_port_capacity",
    "port_destination_lists",
    "recover_outer_assignment",
    "recover_port_permutation",
    "run_theorem8_experiment",
    "theorem7_ledger",
    "theorem9_theory_bits",
    "total_port_capacity",
]
