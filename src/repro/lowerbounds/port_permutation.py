"""Theorem 8 — the port-assignment adversary (model IA ∧ α).

When neither relabelling nor port re-assignment is allowed, the adversary
wires each node's ports as a random permutation of its neighbours.  A
shortest-path routing function must route every neighbour over the correct
port (the direct edge *is* the unique shortest path), so ``F(u)`` contains
the whole permutation: ``log₂ d(u)! ≈ (n/2) log(n/2)`` bits per node and
``Ω(n² log n)`` in total — the full-table baseline is optimal here.

This module measures that: it Lehmer-codes the adversarial permutations
(the minimal possible representation), *recovers* each permutation from a
concrete routing scheme's tables, and compares against the freely
re-assignable model IB where the same information costs zero bits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bitio import (
    BitArray,
    decode_permutation,
    encode_permutation,
    log2_factorial,
)
from repro.errors import ReproError
from repro.graphs import LabeledGraph, PortAssignment
from repro.models import RoutingModel
from repro.core.full_table import FullTableScheme

__all__ = [
    "encode_port_permutation",
    "decode_port_permutation",
    "recover_port_permutation",
    "Theorem8Result",
    "run_theorem8_experiment",
]


def encode_port_permutation(ports: PortAssignment, u: int) -> BitArray:
    """Minimal (Lehmer) encoding of node ``u``'s port permutation."""
    return encode_permutation(ports.permutation_at(u))


def decode_port_permutation(bits: BitArray, degree: int) -> tuple[int, ...]:
    """Inverse of :func:`encode_port_permutation` given the degree."""
    return decode_permutation(bits, degree)


def recover_port_permutation(scheme: FullTableScheme, u: int) -> tuple[int, ...]:
    """Extract the port permutation out of a routing function's own tables.

    This is the proof's observation made executable: the shortest-path
    table at ``u`` maps each neighbour to its port, i.e. the function
    *contains* the adversary's permutation.
    """
    graph = scheme.graph
    function = scheme.function(u)
    return tuple(function.port_for(nb) - 1 for nb in graph.neighbors(u))


@dataclass(frozen=True)
class Theorem8Result:
    """Measured size of the adversarial permutations on one graph."""

    n: int
    total_permutation_bits: int
    """Σ_u ⌈log₂ d(u)!⌉ — bits forced into the scheme under IA ∧ α."""
    # Mean and the paper's real-valued (n/2) log(n/2) bound; the measured
    # total above stays int.
    mean_node_bits: float  # repro-lint: disable=R001
    theory_bits: float  # repro-lint: disable=R001
    """The paper's ``(n/2) log(n/2)`` per node, summed."""
    recovered_all: bool
    """True when every permutation was recovered from the routing tables."""


def run_theorem8_experiment(
    graph: LabeledGraph, model: RoutingModel, seed: int = 0
) -> Theorem8Result:
    """Wire adversarial ports, build a scheme, and recover the permutations."""
    rng = random.Random(seed)
    ports = PortAssignment.shuffled(graph, rng)
    scheme = FullTableScheme(graph, model, ports=ports)
    if scheme.port_assignment is not ports:
        raise ReproError(
            "Theorem 8 needs model IA: the scheme re-assigned the ports"
        )
    total = 0
    recovered_all = True
    for u in graph.nodes:
        encoded = encode_port_permutation(ports, u)
        total += len(encoded)
        decoded = decode_port_permutation(encoded, graph.degree(u))
        if decoded != ports.permutation_at(u):
            recovered_all = False
        if recover_port_permutation(scheme, u) != ports.permutation_at(u):
            recovered_all = False
    n = graph.n
    return Theorem8Result(
        n=n,
        total_permutation_bits=total,
        mean_node_bits=total / n,
        theory_bits=sum(log2_factorial(graph.degree(u)) for u in graph.nodes),
        recovered_all=recovered_all,
    )
