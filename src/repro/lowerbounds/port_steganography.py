"""Footnote 1, executable: port assignments as a covert storage channel.

The paper refuses to combine model II (neighbours known) with free port
assignment, because "the actual port assignment doesn't matter at all, and
can in fact be used to represent ``d(v) log d(v)`` bits of the routing
function: each assignment of ports corresponds to a permutation of the
ranks of the neighbours".

This module *performs* that trick: an arbitrary payload is embedded into a
graph's port assignment (``⌊log₂ d(v)!⌋`` bits per node, via Lehmer
unranking) and extracted back.  The total channel capacity on a random
graph is ``≈ (n²/2)(log(n/2) - log e)`` bits — a constant fraction of a
full routing table, free and uncharged — which is exactly why the model
combination would trivialise Table 1.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.bitio import (
    BitArray,
    BitReader,
    BitWriter,
    rank_permutation,
    unrank_permutation,
)
from repro.errors import ReproError
from repro.graphs import LabeledGraph, PortAssignment

__all__ = [
    "node_port_capacity",
    "total_port_capacity",
    "embed_bits_in_ports",
    "extract_bits_from_ports",
]


def node_port_capacity(degree: int) -> int:
    """Payload bits one node's port permutation can carry: ``⌊log₂ d!⌋``."""
    if degree < 0:
        raise ReproError(f"degree must be non-negative, got {degree}")
    if degree <= 1:
        return 0
    return math.factorial(degree).bit_length() - 1


def total_port_capacity(graph: LabeledGraph) -> int:
    """Total covert capacity of a graph's port assignments."""
    return sum(node_port_capacity(graph.degree(u)) for u in graph.nodes)


def embed_bits_in_ports(
    graph: LabeledGraph, payload: BitArray
) -> Tuple[PortAssignment, int]:
    """Hide ``payload`` inside a port assignment.

    Nodes are filled in label order; each node of degree ``d`` absorbs the
    next ``⌊log₂ d!⌋`` payload bits as the Lehmer rank of its neighbour
    permutation.  Returns the assignment and the number of bits embedded
    (payloads longer than the capacity raise
    :class:`~repro.errors.ReproError`).
    """
    capacity = total_port_capacity(graph)
    if len(payload) > capacity:
        raise ReproError(
            f"payload of {len(payload)} bits exceeds the port channel "
            f"capacity of {capacity} bits"
        )
    reader = BitReader(payload)
    port_of = {}
    for u in graph.nodes:
        degree = graph.degree(u)
        bits = min(node_port_capacity(degree), reader.remaining)
        rank = reader.read_uint(bits) if bits else 0
        perm = unrank_permutation(rank, degree) if degree else ()
        neighbors = graph.neighbors(u)
        port_of[u] = {nb: perm[i] + 1 for i, nb in enumerate(neighbors)}
    return PortAssignment(graph, port_of), len(payload)


def extract_bits_from_ports(
    ports: PortAssignment, length: int
) -> BitArray:
    """Read ``length`` payload bits back out of a port assignment."""
    graph = ports.graph
    if length > total_port_capacity(graph):
        raise ReproError("requested more bits than the channel can hold")
    writer = BitWriter()
    remaining = length
    for u in graph.nodes:
        if remaining <= 0:
            break
        degree = graph.degree(u)
        bits = min(node_port_capacity(degree), remaining)
        if bits == 0:
            continue
        rank = rank_permutation(ports.permutation_at(u))
        if rank >= (1 << bits):
            raise ReproError(
                f"node {u}: permutation rank {rank} does not fit the "
                f"declared {bits}-bit channel — not a payload assignment"
            )
        writer.write_uint(rank, bits)
        remaining -= bits
    if remaining > 0:
        raise ReproError(f"channel exhausted with {remaining} bits unread")
    return writer.getvalue()
