"""Theorem 9 — the explicit worst-case family of Figure 1 (model α).

``G_B`` has three layers of ``k`` nodes (``n = 3k``): inner nodes adjacent
to all middle nodes, and each middle node holding one pendant outer node.
The inner→outer shortest path runs through the unique middle partner
(length 2); every alternative has length ≥ 4, i.e. stretch ≥ 2.  So any
routing scheme with stretch < 2 must, at *every* inner node, map each outer
label to its correct middle neighbour — a full permutation of the outer
labels, ``log₂ k! = k log k - O(k)`` bits, at each of ``k = n/3`` nodes:
``Ω(n² log n)`` total, even though shortest-path routing on random graphs
needs only ``O(n²)``.

:class:`ExplicitLowerBoundScheme` is the *optimal* scheme for ``G_B``: its
inner tables are stored as Lehmer codes (the minimal representation), it
routes with stretch 1, and :func:`recover_outer_assignment` demonstrates
the proof's key step — reading the adversary's permutation back out of any
single inner node's routing function.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Sequence, Tuple

from repro.bitio import (
    BitArray,
    BitReader,
    BitWriter,
    decode_permutation,
    encode_permutation,
    log2_factorial,
)
from repro.errors import GraphError, RoutingError, SchemeBuildError
from repro.graphs import (
    GraphContext,
    LabeledGraph,
    get_context,
    lower_bound_graph,
    lower_bound_graph_variant,
)
from repro.models import RoutingModel
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme

__all__ = [
    "ExplicitLowerBoundScheme",
    "recover_outer_assignment",
    "detour_stretch",
    "theorem9_theory_bits",
]


class _InnerFunction(LocalRoutingFunction):
    """Inner-layer rule: the permutation-bearing table."""

    def __init__(
        self,
        node: int,
        middles: Tuple[int, ...],
        outer_to_middle: Dict[int, int],
    ) -> None:
        super().__init__(node)
        self._middles = middles
        self._middle_set = frozenset(middles)
        self._outer_to_middle = dict(outer_to_middle)

    @property
    def outer_to_middle(self) -> Dict[int, int]:
        """The full outer-label → middle-partner map (the permutation)."""
        return dict(self._outer_to_middle)

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        dest = int(destination)
        if dest in self._middle_set:
            return HopDecision(dest)
        if dest in self._outer_to_middle:
            return HopDecision(self._outer_to_middle[dest])
        # Another inner node: any middle node reaches it; take the least.
        return HopDecision(self._middles[0])


class _MiddleFunction(LocalRoutingFunction):
    """Middle-layer rule: pendant partner, inner fan, relay the rest."""

    def __init__(
        self, node: int, inners: Tuple[int, ...], partner: int
    ) -> None:
        super().__init__(node)
        self._inners = inners
        self._inner_set = frozenset(inners)
        self._partner = partner

    @property
    def partner(self) -> int:
        """This middle node's pendant outer node."""
        return self._partner

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        dest = int(destination)
        if dest == self._partner:
            return HopDecision(dest)
        if dest in self._inner_set:
            return HopDecision(dest)
        # Other middle or other outer: descend to the least inner node,
        # whose table knows every partner edge.
        return HopDecision(self._inners[0])


class _OuterFunction(LocalRoutingFunction):
    """Outer-layer rule: a pendant has exactly one way out."""

    def __init__(self, node: int, middle: int) -> None:
        super().__init__(node)
        self._middle = middle

    def next_hop(self, destination: Hashable, state: Any = None) -> HopDecision:
        return HopDecision(self._middle)


class ExplicitLowerBoundScheme(RoutingScheme):
    """The optimal (stretch 1) scheme for ``G_B`` with minimal inner tables."""

    scheme_name = "thm9-explicit"

    def __init__(
        self,
        graph: LabeledGraph,
        model: RoutingModel,
        k: int | None = None,
        inner_count: int | None = None,
        ctx: Optional[GraphContext] = None,
    ) -> None:
        super().__init__(graph, model, ctx=ctx)
        model.require(relabeling=False)  # Theorem 9 lives in model α
        if k is None:
            if graph.n % 3:
                raise SchemeBuildError(
                    f"G_B has n = 3k nodes, got n = {graph.n} "
                    f"(pass k/inner_count for the 3k-1 and 3k-2 variants)"
                )
            k = graph.n // 3
        if inner_count is None:
            inner_count = graph.n - 2 * k
        if inner_count < 1 or inner_count + 2 * k != graph.n:
            raise SchemeBuildError(
                f"inconsistent layers: n={graph.n}, k={k}, "
                f"inner_count={inner_count}"
            )
        self._k = k
        self._inner_count = inner_count
        self._outer_base = inner_count + k
        self._inner = tuple(range(1, inner_count + 1))
        self._middle = tuple(range(inner_count + 1, inner_count + k + 1))
        self._outer = tuple(range(self._outer_base + 1, graph.n + 1))
        self._partner_of_middle: Dict[int, int] = {}
        for m in self._middle:
            pendants = [
                nb for nb in graph.neighbors(m) if nb in set(self._outer)
            ]
            if len(pendants) != 1:
                raise SchemeBuildError(
                    f"middle node {m} must have exactly one outer pendant, "
                    f"got {pendants} — not a G_B graph"
                )
            self._partner_of_middle[m] = pendants[0]
        self._middle_of_outer = {
            outer: m for m, outer in self._partner_of_middle.items()
        }
        self._validate_layers()

    def _validate_layers(self) -> None:
        graph = self._graph
        inner_set = set(self._inner)
        for i in self._inner:
            if set(graph.neighbors(i)) != set(self._middle):
                raise SchemeBuildError(
                    f"inner node {i} must be adjacent to exactly the middle "
                    f"layer — not a G_B graph"
                )
        for o in self._outer:
            if graph.degree(o) != 1:
                raise SchemeBuildError(
                    f"outer node {o} must be a pendant — not a G_B graph"
                )
        if inner_set & set(self._middle):
            raise SchemeBuildError("layer ranges overlap")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_parameters(
        cls,
        k: int,
        model: RoutingModel,
        outer_assignment: Sequence[int] | None = None,
    ) -> "ExplicitLowerBoundScheme":
        """Build ``G_B(k)`` with a chosen adversarial relabelling and wrap it."""
        graph = lower_bound_graph(k, outer_assignment)
        return cls(graph, model, k=k)

    @classmethod
    def for_any_n(
        cls, n: int, model: RoutingModel
    ) -> "ExplicitLowerBoundScheme":
        """The paper's remark: "For n = 3k-1 or n = 3k-2 we can use G_B,
        dropping v_k and v_{k-1}" — i.e. shrink the inner layer."""
        graph, k, inner_count = lower_bound_graph_variant(n)
        return cls(graph, model, k=k, inner_count=inner_count)

    # -- layer accessors ----------------------------------------------------------

    @property
    def k(self) -> int:
        """Layer size; ``n = 3k``."""
        return self._k

    @property
    def inner_nodes(self) -> Tuple[int, ...]:
        """The ``k`` permutation-bearing nodes."""
        return self._inner

    def partner_of(self, middle: int) -> int:
        """The outer pendant of a middle node."""
        return self._partner_of_middle[middle]

    # -- RoutingScheme interface ------------------------------------------------

    def _build_function(self, u: int) -> LocalRoutingFunction:
        if u in set(self._inner):
            outer_to_middle = {
                outer: m for outer, m in self._middle_of_outer.items()
            }
            return _InnerFunction(u, self._middle, outer_to_middle)
        if u in set(self._middle):
            return _MiddleFunction(u, self._inner, self._partner_of_middle[u])
        return _OuterFunction(u, self._graph.neighbors(u)[0])

    def _assignment_permutation(self) -> Tuple[int, ...]:
        """Outer assignment as a 0-based permutation: position i ↦ label index.

        Entry ``i`` says which outer label (offset from ``2k+1``) hangs off
        middle node ``k+1+i``.
        """
        return tuple(
            self._partner_of_middle[m] - (self._outer_base + 1)
            for m in self._middle
        )

    def encode_function(self, u: int) -> BitArray:
        k = self._k
        writer = BitWriter()
        if u in set(self._inner):
            # The minimal representation of the outer → middle table is the
            # Lehmer rank of the adversary's permutation: log2(k!) bits.
            writer.write_bits(encode_permutation(self._assignment_permutation()))
            return writer.getvalue()
        if u in set(self._middle):
            width = max(k - 1, 0).bit_length()
            writer.write_uint(
                self._partner_of_middle[u] - (self._outer_base + 1), width
            )
            return writer.getvalue()
        return writer.getvalue()  # outer pendants: zero bits

    def decode_function(self, u: int, bits: BitArray) -> LocalRoutingFunction:
        k = self._k
        base = self._outer_base
        if u in set(self._inner):
            perm = decode_permutation(bits, k)
            outer_to_middle = {
                base + 1 + label_index: self._inner_count + 1 + position
                for position, label_index in enumerate(perm)
            }
            return _InnerFunction(u, self._middle, outer_to_middle)
        if u in set(self._middle):
            width = max(k - 1, 0).bit_length()
            reader = BitReader(bits)
            partner = base + 1 + reader.read_uint(width)
            return _MiddleFunction(u, self._inner, partner)
        return _OuterFunction(u, self._graph.neighbors(u)[0])

    def stretch_bound(self) -> float:
        return 1.0


def recover_outer_assignment(
    scheme: ExplicitLowerBoundScheme, inner_node: int
) -> Tuple[int, ...]:
    """Reconstruct the adversary's permutation from one inner node's table.

    The proof's pivotal step: "given such a local routing function we can
    reconstruct the permutation (by collecting the response of the local
    routing function for each of the nodes ... and grouping all pairs
    reached over the same edge)".
    """
    function = scheme.function(inner_node)
    if not isinstance(function, _InnerFunction):
        raise RoutingError(f"{inner_node} is not an inner node")
    k = scheme.k
    first_middle = scheme._inner_count + 1
    assignment = [0] * k
    for outer, middle in function.outer_to_middle.items():
        assignment[middle - first_middle] = outer
    return tuple(assignment)


def detour_stretch(k: int, inner: int = 1, wrong_offset: int = 1) -> float:
    """Length ratio of the best route through a *wrong* middle node.

    Routing inner → outer via any middle node other than the partner costs
    at least 4 hops against the shortest 2 — stretch 2.  Returned measured,
    not assumed: we compute the true shortest detour on the actual graph.
    """
    graph = lower_bound_graph(k)
    outer = 2 * k + 1  # partner of middle k+1
    wrong_middle = k + 1 + wrong_offset
    if wrong_middle > 2 * k:
        raise GraphError("wrong_offset exceeds the middle layer")
    # Best path from the wrong middle onwards (breadth-first search).
    dist = get_context(graph).distances()
    detour = 1 + int(dist[wrong_middle - 1, outer - 1])
    shortest = int(dist[inner - 1, outer - 1])
    return detour / shortest


def theorem9_theory_bits(k: int) -> float:
    """The paper's bound: ``k log₂ k!`` bits across the inner layer."""
    return k * log2_factorial(k)
