"""The knowledge axis: what a node knows before any table is installed.

The paper distinguishes (Section 1):

* **IA** — ports distinguish incident edges, the assignment is fixed and
  possibly adversarial, and neighbours' labels are unknown;
* **IB** — as IA, but the routing strategy may re-assign ports before
  building the scheme (a purely local action);
* **II** — each incident edge carries the label of the node it connects to,
  i.e. neighbours are known for free.

The paper explicitly rules out combining II with free port assignment: that
combination would hand every node ``d(v) log d(v)`` free bits of routing
information (footnote 1).
"""

from __future__ import annotations

import enum

__all__ = ["Knowledge"]


class Knowledge(enum.Enum):
    """Prior local knowledge available at every node."""

    IA = "IA"
    """Fixed (possibly adversarial) port assignment; neighbours unknown."""

    IB = "IB"
    """Re-assignable port assignment; neighbours unknown."""

    II = "II"
    """Neighbours known for free (edges carry the remote node's label)."""

    @property
    def neighbors_known(self) -> bool:
        """True when nodes see their neighbours' labels without charge."""
        return self is Knowledge.II

    @property
    def ports_reassignable(self) -> bool:
        """True when the scheme may pick the port assignment itself."""
        return self is Knowledge.IB

    def __str__(self) -> str:
        return self.value
