"""The label axis: how much freedom the strategy has over node names.

The paper distinguishes (Section 1):

* **α** — labels are fixed (``1..n``), no relabelling;
* **β** — labels may be permuted within ``1..n`` before building the scheme;
* **γ** — arbitrary labels may be assigned, but every bit of a node's label
  is added to that node's space requirement (otherwise routing information
  could be smuggled into uncharged names).
"""

from __future__ import annotations

import enum

__all__ = ["Labeling"]


class Labeling(enum.Enum):
    """Relabelling freedom granted to the routing strategy."""

    ALPHA = "alpha"
    """No relabelling; nodes keep their given labels ``1..n``."""

    BETA = "beta"
    """Labels may be permuted, but the range stays ``1..n``."""

    GAMMA = "gamma"
    """Arbitrary labels allowed; label bits are charged to each node."""

    @property
    def relabeling_allowed(self) -> bool:
        """True when the strategy may rename nodes at all."""
        return self is not Labeling.ALPHA

    @property
    def labels_charged(self) -> bool:
        """True when label bits count toward the space requirement."""
        return self is Labeling.GAMMA

    @property
    def symbol(self) -> str:
        """The Greek letter used in the paper's tables."""
        return {"alpha": "α", "beta": "β", "gamma": "γ"}[self.value]

    def __str__(self) -> str:
        return self.symbol
