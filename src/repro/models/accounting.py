"""Space accounting: the paper's definition of a scheme's size.

"The space requirement of a routing scheme is measured as the sum over all
nodes of the number of bits needed on each node to encode its routing
function", plus — when nodes are not labelled ``1..n`` (model γ) — the bits
of each node's label.  We additionally track *auxiliary* bits a scheme must
carry under models IA/IB where neighbour knowledge is not free (e.g. the
``n - 1``-bit interconnection vector the Theorem 1 scheme stores under IB).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ModelError
from repro.models.model import RoutingModel

__all__ = ["NodeSpace", "SpaceReport", "minimal_label_bits"]


def minimal_label_bits(n: int) -> int:
    """``⌈log(n + 1)⌉`` — bits to write one label from ``1..n``.

    The paper writes ``log n`` for ``⌈log(n + 1)⌉`` throughout (footnote 6);
    this helper is the exact version.
    """
    return (n).bit_length()


@dataclass(frozen=True)
class NodeSpace:
    """Charged bits at one node."""

    node: int
    routing_bits: int
    """Length of the serialised local routing function."""
    label_bits: int = 0
    """Charged label bits (non-zero only under model γ)."""
    aux_bits: int = 0
    """Auxiliary knowledge the scheme must store (e.g. neighbour vectors)."""
    integrity_bits: int = 0
    """Checksum framing bits protecting the routing function (CRC/parity).

    Charged explicitly — integrity overhead is never smuggled into
    ``routing_bits`` — and zero for unframed schemes."""

    @property
    def total(self) -> int:
        """All bits charged to this node."""
        return (
            self.routing_bits
            + self.label_bits
            + self.aux_bits
            + self.integrity_bits
        )


@dataclass
class SpaceReport:
    """Total space of one scheme on one graph under one model."""

    model: RoutingModel
    scheme_name: str
    n: int
    per_node: List[NodeSpace] = field(default_factory=list)
    notes: Dict[str, float] = field(default_factory=dict)

    def add(self, entry: NodeSpace) -> None:
        """Record one node's charges (each node exactly once)."""
        if any(existing.node == entry.node for existing in self.per_node):
            raise ModelError(f"node {entry.node} already accounted for")
        self.per_node.append(entry)

    @property
    def total_bits(self) -> int:
        """The paper's T(G): sum over all nodes of charged bits."""
        return sum(entry.total for entry in self.per_node)

    @property
    def routing_bits(self) -> int:
        """Total routing-function bits only."""
        return sum(entry.routing_bits for entry in self.per_node)

    @property
    def label_bits(self) -> int:
        """Total charged label bits (model γ)."""
        return sum(entry.label_bits for entry in self.per_node)

    @property
    def aux_bits(self) -> int:
        """Total auxiliary bits (neighbour vectors under IA/IB)."""
        return sum(entry.aux_bits for entry in self.per_node)

    @property
    def integrity_bits(self) -> int:
        """Total integrity-framing bits (0 for unframed schemes)."""
        return sum(entry.integrity_bits for entry in self.per_node)

    @property
    def max_node_bits(self) -> int:
        """Largest per-node charge."""
        return max((entry.total for entry in self.per_node), default=0)

    @property
    def mean_node_bits(self) -> float:
        """Average per-node charge."""
        if not self.per_node:
            return 0.0
        # Deliberate ratio diagnostic, not an accounted bit count.
        return self.total_bits / len(self.per_node)  # repro-lint: disable=R001

    def bits_per_n_squared(self) -> float:
        """``T(G) / n²`` — the constant in an O(n²) claim."""
        # Deliberate ratio diagnostic, not an accounted bit count.
        return self.total_bits / float(self.n * self.n)  # repro-lint: disable=R001

    def bits_per(self, growth: float) -> float:
        """``T(G)`` divided by an arbitrary growth value (for law fitting)."""
        if growth <= 0:
            raise ModelError(f"growth must be positive, got {growth}")
        # Deliberate ratio diagnostic, not an accounted bit count.
        return self.total_bits / growth  # repro-lint: disable=R001

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.scheme_name} on n={self.n} under {self.model}: "
            f"{self.total_bits} bits total "
            f"(routing {self.routing_bits}, labels {self.label_bits}, "
            f"aux {self.aux_bits}, integrity {self.integrity_bits}; "
            f"max/node {self.max_node_bits}, "
            f"mean/node {self.mean_node_bits:.1f}, "
            f"T/n² = {self.bits_per_n_squared():.3f})"
        )


def log2n(n: int) -> float:
    """Convenience ``log₂ n`` guarded for tiny n."""
    return math.log2(max(n, 2))
