"""The paper's nine routing models and space-accounting rules.

A model is the product of a :class:`~repro.models.knowledge.Knowledge`
level (IA, IB, II) and a :class:`~repro.models.labels.Labeling` freedom
(α, β, γ).  :class:`~repro.models.accounting.SpaceReport` implements the
paper's charging discipline: routing-function bits always count, label bits
count under γ, and auxiliary neighbour knowledge counts under IA/IB.
"""

from repro.models.accounting import NodeSpace, SpaceReport, minimal_label_bits
from repro.models.knowledge import Knowledge
from repro.models.labels import Labeling
from repro.models.model import RoutingModel, all_models

__all__ = [
    "Knowledge",
    "Labeling",
    "NodeSpace",
    "RoutingModel",
    "SpaceReport",
    "all_models",
    "minimal_label_bits",
]
