"""The nine routing models: a product of knowledge and label freedom.

Every routing scheme in :mod:`repro.core` declares which models it is valid
in; the builders refuse incompatible combinations (e.g. the Theorem 2
scheme needs both known neighbours and free relabelling, so it exists only
in ``II ∧ γ``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ModelError
from repro.models.knowledge import Knowledge
from repro.models.labels import Labeling

__all__ = ["RoutingModel", "all_models"]


@dataclass(frozen=True)
class RoutingModel:
    """One of the paper's nine models, e.g. ``II ∧ α``."""

    knowledge: Knowledge
    labeling: Labeling

    @property
    def neighbors_known(self) -> bool:
        """Neighbour labels available for free (model II)."""
        return self.knowledge.neighbors_known

    @property
    def ports_reassignable(self) -> bool:
        """Scheme may choose the port assignment (model IB)."""
        return self.knowledge.ports_reassignable

    @property
    def relabeling_allowed(self) -> bool:
        """Scheme may rename nodes (models β, γ)."""
        return self.labeling.relabeling_allowed

    @property
    def labels_charged(self) -> bool:
        """Label bits count toward the space requirement (model γ)."""
        return self.labeling.labels_charged

    def require(
        self,
        neighbors_known: bool | None = None,
        ports_reassignable: bool | None = None,
        relabeling: bool | None = None,
    ) -> None:
        """Assert model capabilities, raising :class:`ModelError` otherwise.

        ``None`` means "don't care"; ``True``/``False`` demand the exact
        capability.  Builders call this up front so misuse fails loudly.
        """
        checks = [
            ("neighbours known", neighbors_known, self.neighbors_known),
            ("ports reassignable", ports_reassignable, self.ports_reassignable),
            ("relabelling allowed", relabeling, self.relabeling_allowed),
        ]
        for name, wanted, actual in checks:
            if wanted is not None and wanted != actual:
                raise ModelError(
                    f"model {self} has {name}={actual}, but the scheme "
                    f"requires {name}={wanted}"
                )

    def __str__(self) -> str:
        return f"{self.knowledge} ∧ {self.labeling}"


def all_models() -> Iterator[RoutingModel]:
    """Iterate over all nine models in the paper's table order."""
    for knowledge in Knowledge:
        for labeling in Labeling:
            yield RoutingModel(knowledge, labeling)
