"""Labelled undirected graphs with nodes ``{1, ..., n}``.

The paper's networks are simple undirected graphs whose nodes carry the
minimal label set ``1..n`` (model assumptions α/β) unless a scheme buys
larger labels and is charged for them (model γ).  :class:`LabeledGraph` is
immutable after construction: the routing schemes, codecs and simulator all
treat the topology as static, matching the paper's static-network setting.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = ["LabeledGraph"]


class LabeledGraph:
    """An immutable simple undirected graph on nodes ``1..n``."""

    __slots__ = ("_n", "_adj_sets", "_adj_sorted", "_edge_count", "_matrix")

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]] = ()) -> None:
        if n < 1:
            raise GraphError(f"graph needs at least one node, got n={n}")
        self._n = n
        adj: list[set[int]] = [set() for _ in range(n + 1)]
        count = 0
        for u, v in edges:
            if not (1 <= u <= n and 1 <= v <= n):
                raise GraphError(f"edge ({u}, {v}) outside node range 1..{n}")
            if u == v:
                raise GraphError(f"self-loop at node {u} is not allowed")
            if v not in adj[u]:
                adj[u].add(v)
                adj[v].add(u)
                count += 1
        self._adj_sets = tuple(frozenset(s) for s in adj)
        self._adj_sorted = tuple(tuple(sorted(s)) for s in adj)
        self._edge_count = count
        self._matrix: np.ndarray | None = None

    # -- basic accessors ---------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return self._edge_count

    @property
    def nodes(self) -> range:
        """The node labels ``1..n``."""
        return range(1, self._n + 1)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """All edges ``(u, v)`` with ``u < v`` in lexicographic order."""
        for u in self.nodes:
            for v in self._adj_sorted[u]:
                if u < v:
                    yield (u, v)

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        self._check_node(u)
        return len(self._adj_sets[u])

    def neighbors(self, u: int) -> Tuple[int, ...]:
        """Neighbours of ``u`` in increasing label order.

        The paper's constructions repeatedly refer to the "least" adjacent
        nodes; this sorted tuple is that order.
        """
        self._check_node(u)
        return self._adj_sorted[u]

    def neighbor_set(self, u: int) -> frozenset[int]:
        """Neighbours of ``u`` as a set for O(1) membership tests."""
        self._check_node(u)
        return self._adj_sets[u]

    def has_edge(self, u: int, v: int) -> bool:
        """True when ``{u, v}`` is an edge."""
        self._check_node(u)
        self._check_node(v)
        return v in self._adj_sets[u]

    def non_neighbors(self, u: int) -> Tuple[int, ...]:
        """Nodes other than ``u`` not adjacent to ``u``, in increasing order.

        This is the set ``A₀`` of Theorem 1.
        """
        adjacent = self._adj_sets[u]
        return tuple(
            w for w in self.nodes if w != u and w not in adjacent
        )

    def _check_node(self, u: int) -> None:
        if not 1 <= u <= self._n:
            raise GraphError(f"node {u} outside range 1..{self._n}")

    # -- dense representation ----------------------------------------------

    def adjacency_matrix(self) -> np.ndarray:
        """Boolean adjacency matrix indexed ``[0..n-1]`` (node ``u`` ↦ row ``u-1``).

        Cached; used by the fast diameter/distance routines.
        """
        if self._matrix is None:
            matrix = np.zeros((self._n, self._n), dtype=bool)
            for u, v in self.edges():
                matrix[u - 1, v - 1] = True
                matrix[v - 1, u - 1] = True
            self._matrix = matrix
        return self._matrix

    # -- transformations -----------------------------------------------------

    def relabel(self, mapping: Dict[int, int]) -> "LabeledGraph":
        """Return a copy with nodes renamed by a bijection ``old ↦ new``.

        The mapping must be a permutation of ``1..n`` (model β's label
        permutations and Theorem 9's outer relabellings are both of this
        form).
        """
        if sorted(mapping) != list(self.nodes) or sorted(
            mapping.values()
        ) != list(self.nodes):
            raise GraphError("mapping must be a permutation of the node set")
        return LabeledGraph(
            self._n, ((mapping[u], mapping[v]) for u, v in self.edges())
        )

    def without_edge(self, u: int, v: int) -> "LabeledGraph":
        """Return a copy with one edge removed (used for failure injection)."""
        if not self.has_edge(u, v):
            raise GraphError(f"({u}, {v}) is not an edge")
        drop = frozenset((u, v))
        return LabeledGraph(
            self._n,
            (e for e in self.edges() if frozenset(e) != drop),
        )

    def with_edge(self, u: int, v: int) -> "LabeledGraph":
        """Return a copy with one edge added (used for live topology churn).

        The inverse of :meth:`without_edge`: the graph stays immutable and
        a mutated *successor* graph is returned, so every derivation keyed
        on the old structure stays valid for the old object.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self-loop at node {u} is not allowed")
        if self.has_edge(u, v):
            raise GraphError(f"({u}, {v}) is already an edge")
        return LabeledGraph(self._n, list(self.edges()) + [(u, v)])

    def without_node_edges(self, u: int) -> "LabeledGraph":
        """Return a copy with every edge incident to ``u`` removed.

        Models a node *leaving* the network under churn: the label stays
        (the node set is fixed ``1..n``) but the node becomes isolated.
        """
        self._check_node(u)
        return LabeledGraph(
            self._n, (e for e in self.edges() if u not in e)
        )

    def complement(self) -> "LabeledGraph":
        """The complement graph — every bit of ``E(G)`` flipped.

        ``G(n, 1/2)`` is closed under complement, and so is the Lemma 1
        degree band; handy for symmetry checks in tests and experiments.
        """
        return LabeledGraph(
            self._n,
            (
                (u, v)
                for u in self.nodes
                for v in range(u + 1, self._n + 1)
                if v not in self._adj_sets[u]
            ),
        )

    # -- connectivity --------------------------------------------------------

    def is_connected(self) -> bool:
        """True when the graph is connected (n = 1 counts as connected)."""
        seen = {1}
        stack = [1]
        while stack:
            u = stack.pop()
            for v in self._adj_sets[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self._n

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return self._n == other._n and self._adj_sets == other._adj_sets

    def __hash__(self) -> int:
        return hash((self._n, self._adj_sets))

    def __repr__(self) -> str:
        return f"LabeledGraph(n={self._n}, edges={self._edge_count})"
