"""Per-instance certification of Kolmogorov-randomness properties.

A sampled ``G(n, 1/2)`` graph is ``c log n``-random with probability at
least ``1 - 1/n^c``, but the compact constructions need three concrete
consequences (Lemmas 1–3), so instead of *assuming* randomness we *check*
the consequences on each instance:

1. every degree lies in the Lemma 1 band around ``(n-1)/2``;
2. the diameter is exactly 2 (Lemma 2);
3. from every node, the least-neighbour cover prefix is ``O(log n)``
   (Lemma 3).

The certificate also reports a compression-based randomness-deficiency
estimate of ``E(G)`` for the experiments that visualise incompressibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.encoding import edge_code_length, encode_graph
from repro.graphs.graph import LabeledGraph
from repro.graphs.properties import (
    cover_prefix_length,
    degree_statistics,
    is_diameter_two,
    lemma3_bound,
)
from repro.kolmogorov import best_estimate

__all__ = ["RandomnessCertificate", "certify_random_graph", "randomness_deficiency"]


@dataclass(frozen=True)
class RandomnessCertificate:
    """Results of checking the Lemma 1–3 properties on one graph."""

    n: int
    degrees_in_band: bool
    max_degree_deviation: int
    lemma1_scale: float
    diameter_two: bool
    max_cover_prefix: int
    lemma3_scale: float
    cover_within_bound: bool
    estimated_deficiency: int
    """``n(n-1)/2`` minus the best compressed size of ``E(G)`` (clamped ≥ 0)."""

    @property
    def certified(self) -> bool:
        """True when all three structural lemmas hold on this instance."""
        return self.degrees_in_band and self.diameter_two and self.cover_within_bound


def randomness_deficiency(graph: LabeledGraph) -> int:
    """Estimated deficiency ``n(n-1)/2 - C̃(E(G))``, clamped at zero.

    Small values mean the edge string resists compression, i.e. the graph
    *behaves* Kolmogorov random.  (Compression gives an upper bound on
    ``C``, hence a lower bound of 0 on the true deficiency; the clamp keeps
    header overheads from producing negative numbers.)
    """
    code = encode_graph(graph)
    estimate = best_estimate(code)
    return max(edge_code_length(graph.n) - estimate.bits, 0)


def certify_random_graph(
    graph: LabeledGraph, c: float = 3.0, slack: float = 1.0
) -> RandomnessCertificate:
    """Check Lemmas 1–3 on a concrete graph.

    ``c`` selects the randomness class ``c log n``; ``slack`` is the
    constant hidden in the O(·) of Lemmas 1 and 3 (the asymptotic statements
    fix no constant, so the certificate accepts deviations up to
    ``slack ×`` the respective scale).
    """
    n = graph.n
    stats = degree_statistics(graph, deficiency=c * max(n, 2).bit_length())
    diameter_ok = is_diameter_two(graph)
    if diameter_ok:
        prefixes = [cover_prefix_length(graph, u) for u in graph.nodes]
        max_prefix = max(prefixes)
    else:
        max_prefix = n
    scale3 = lemma3_bound(n, c)
    return RandomnessCertificate(
        n=n,
        degrees_in_band=stats.max_deviation <= slack * stats.lemma1_bound,
        max_degree_deviation=stats.max_deviation,
        lemma1_scale=stats.lemma1_bound,
        diameter_two=diameter_ok,
        max_cover_prefix=max_prefix,
        lemma3_scale=scale3,
        cover_within_bound=max_prefix <= slack * scale3,
        estimated_deficiency=randomness_deficiency(graph),
    )
