"""Optional networkx interoperability.

networkx is not a runtime dependency of the library; it is used by tests as
an independent cross-check of distances/diameters and offered to users who
already hold networkx graphs.  Import errors surface only when these
functions are actually called.
"""

from __future__ import annotations

from typing import Any

from repro.errors import GraphError
from repro.graphs.graph import LabeledGraph

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(graph: LabeledGraph) -> Any:
    """Convert to a :class:`networkx.Graph` with the same integer labels."""
    import networkx as nx

    result = nx.Graph()
    result.add_nodes_from(graph.nodes)
    result.add_edges_from(graph.edges())
    return result


def from_networkx(nx_graph: Any) -> LabeledGraph:
    """Convert from networkx; nodes must be exactly ``1..n``."""
    nodes = sorted(nx_graph.nodes())
    n = len(nodes)
    if nodes != list(range(1, n + 1)):
        raise GraphError(
            "networkx graph must be labelled 1..n; use networkx.relabel_nodes"
        )
    return LabeledGraph(n, ((int(u), int(v)) for u, v in nx_graph.edges()))
