"""Graph substrate: topologies, ports, encodings and random-graph structure.

The package implements the paper's network model from scratch:

* :class:`~repro.graphs.graph.LabeledGraph` — static undirected graphs on
  nodes ``1..n``;
* :class:`~repro.graphs.ports.PortAssignment` — the local edge labels of
  models IA/IB;
* :mod:`~repro.graphs.encoding` — the canonical ``E(G)`` bit string of
  Definition 2;
* :mod:`~repro.graphs.generators` — ``G(n, 1/2)`` samples, the Figure 1
  lower-bound family, and deterministic test families;
* :mod:`~repro.graphs.properties` — the structural consequences of
  randomness (Lemmas 1–3, Claim 1);
* :mod:`~repro.graphs.randomness` — per-instance certification;
* :mod:`~repro.graphs.context` — the shared per-graph memoisation layer
  (:class:`~repro.graphs.context.GraphContext`) every downstream consumer
  pulls derived objects from.
"""

from repro.graphs.context import (
    GraphContext,
    clear_context_cache,
    get_context,
    structural_fingerprint,
)
from repro.graphs.encoding import (
    decode_graph,
    edge_code_length,
    edge_index,
    encode_graph,
    index_to_edge,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    lower_bound_graph,
    lower_bound_graph_variant,
    lower_bound_inner_nodes,
    lower_bound_middle_nodes,
    lower_bound_outer_nodes,
    path_graph,
    random_graph_stream,
    random_tree,
    star_graph,
    torus_graph,
)
from repro.graphs.graph import LabeledGraph
from repro.graphs.ports import PortAssignment
from repro.graphs.properties import (
    DegreeStatistics,
    claim1_remainders,
    common_neighbors,
    cover_prefix_length,
    covering_sequence,
    degree_statistics,
    diameter,
    distance_matrix,
    eccentricity,
    min_common_neighbors,
    is_diameter_two,
    lemma3_bound,
)
from repro.graphs.randomness import (
    RandomnessCertificate,
    certify_random_graph,
    randomness_deficiency,
)

__all__ = [
    "DegreeStatistics",
    "GraphContext",
    "LabeledGraph",
    "PortAssignment",
    "RandomnessCertificate",
    "certify_random_graph",
    "claim1_remainders",
    "clear_context_cache",
    "common_neighbors",
    "min_common_neighbors",
    "complete_graph",
    "cover_prefix_length",
    "covering_sequence",
    "cycle_graph",
    "decode_graph",
    "degree_statistics",
    "diameter",
    "distance_matrix",
    "eccentricity",
    "edge_code_length",
    "edge_index",
    "encode_graph",
    "get_context",
    "gnp_random_graph",
    "grid_graph",
    "index_to_edge",
    "is_diameter_two",
    "lemma3_bound",
    "lower_bound_graph",
    "lower_bound_graph_variant",
    "lower_bound_inner_nodes",
    "lower_bound_middle_nodes",
    "lower_bound_outer_nodes",
    "path_graph",
    "random_graph_stream",
    "random_tree",
    "randomness_deficiency",
    "star_graph",
    "structural_fingerprint",
    "torus_graph",
]
