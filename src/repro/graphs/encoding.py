"""The canonical graph encoding ``E(G)`` of Definition 2.

A graph on ``n`` nodes is identified with the binary string of length
``n(n-1)/2`` whose i-th bit records the presence of the i-th possible edge
in standard lexicographic order ``(1,2), (1,3), ..., (1,n), (2,3), ...``.
Every incompressibility argument in the paper manipulates exactly this
string, so the codecs in :mod:`repro.incompressibility` are built on the
positional helpers exposed here.
"""

from __future__ import annotations

from repro.bitio import BitArray, BitWriter
from repro.errors import GraphError
from repro.graphs.graph import LabeledGraph

__all__ = [
    "edge_code_length",
    "edge_index",
    "index_to_edge",
    "encode_graph",
    "decode_graph",
]


def edge_code_length(n: int) -> int:
    """Length ``n(n-1)/2`` of ``E(G)`` for a graph on ``n`` nodes."""
    return n * (n - 1) // 2


def edge_index(u: int, v: int, n: int) -> int:
    """Position of edge ``{u, v}`` in the lexicographic enumeration.

    Positions are 0-based: edge ``(1, 2)`` has index 0 and edge
    ``(n-1, n)`` has index ``n(n-1)/2 - 1``.
    """
    if u == v:
        raise GraphError(f"no self-loop position for node {u}")
    if u > v:
        u, v = v, u
    if not (1 <= u and v <= n):
        raise GraphError(f"edge ({u}, {v}) outside node range 1..{n}")
    # Edges starting at nodes < u come first: sum_{i<u} (n - i).
    before = (u - 1) * n - u * (u - 1) // 2
    return before + (v - u - 1)


def index_to_edge(index: int, n: int) -> tuple[int, int]:
    """Inverse of :func:`edge_index`."""
    total = edge_code_length(n)
    if not 0 <= index < total:
        raise GraphError(f"edge index {index} out of range [0, {total})")
    u = 1
    remaining = index
    while remaining >= n - u:
        remaining -= n - u
        u += 1
    return (u, u + 1 + remaining)


def encode_graph(graph: LabeledGraph) -> BitArray:
    """Produce ``E(G)``: the ``n(n-1)/2``-bit edge-presence string."""
    n = graph.n
    writer = BitWriter()
    for u in range(1, n + 1):
        adjacent = graph.neighbor_set(u)
        for v in range(u + 1, n + 1):
            writer.write_bit(1 if v in adjacent else 0)
    return writer.getvalue()


def decode_graph(bits: BitArray, n: int) -> LabeledGraph:
    """Reconstruct a graph from its ``E(G)`` string."""
    expected = edge_code_length(n)
    if len(bits) != expected:
        raise GraphError(
            f"E(G) for n={n} must be {expected} bits, got {len(bits)}"
        )
    edges = []
    position = 0
    for u in range(1, n + 1):
        for v in range(u + 1, n + 1):
            if bits[position]:
                edges.append((u, v))
            position += 1
    return LabeledGraph(n, edges)
