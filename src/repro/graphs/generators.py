"""Graph generators for the paper's experiments.

* :func:`gnp_random_graph` — uniform random graphs.  ``G(n, 1/2)`` *is* the
  uniform distribution over all labelled graphs on ``n`` nodes, so seeded
  samples stand in for the paper's Kolmogorov random graphs (a fraction
  ``1 - 1/n^c`` of all graphs is ``c log n``-random); per-instance
  certification lives in :mod:`repro.graphs.randomness`.
* :func:`lower_bound_graph` — the explicit three-layer family of Figure 1
  used in Theorem 9's worst-case ``Ω(n² log n)`` bound.
* Assorted deterministic families (paths, cycles, stars, complete graphs,
  random trees) used by tests, the interval-routing extension and the
  simulator examples.
"""

from __future__ import annotations

import heapq
import random
import zlib
from typing import Iterator, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import LabeledGraph

__all__ = [
    "gnp_random_graph",
    "random_graph_stream",
    "lower_bound_graph",
    "lower_bound_graph_variant",
    "lower_bound_inner_nodes",
    "lower_bound_middle_nodes",
    "lower_bound_outer_nodes",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "torus_graph",
    "random_tree",
]


def gnp_random_graph(n: int, p: float = 0.5, seed: int | None = None) -> LabeledGraph:
    """Sample ``G(n, p)`` with a seeded generator.

    With the default ``p = 0.5`` every labelled graph on ``n`` nodes is
    equally likely, matching the paper's uniform average (Definition 5).
    """
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    upper = rng.random((n, n)) < p
    rows, cols = np.triu_indices(n, k=1)
    present = upper[rows, cols]
    edges = [
        (int(u) + 1, int(v) + 1)
        for u, v, keep in zip(rows, cols, present)
        if keep
    ]
    return LabeledGraph(n, edges)


def random_graph_stream(
    n: int, count: int, p: float = 0.5, seed: int = 0
) -> Iterator[LabeledGraph]:
    """Yield ``count`` independent seeded ``G(n, p)`` samples.

    Seeds are derived deterministically (CRC32, not salted ``hash``) from
    the base seed so Monte-Carlo averages (Corollary 1 benches) are exactly
    reproducible across processes.
    """
    for i in range(count):
        derived = zlib.crc32(f"{seed}|{n}|{p}|{i}".encode()) & 0x7FFFFFFF
        yield gnp_random_graph(n, p, seed=derived)


# -- the Theorem 9 family (Figure 1) ----------------------------------------


def lower_bound_graph(
    k: int, outer_assignment: Sequence[int] | None = None
) -> LabeledGraph:
    """Build the Figure 1 graph ``G_B`` on ``n = 3k`` nodes.

    Layers (with the default identity assignment):

    * inner nodes ``1..k`` — each adjacent to every middle node;
    * middle nodes ``k+1..2k`` — middle node ``k+i`` is also adjacent to one
      outer node;
    * outer nodes ``2k+1..3k`` — each a degree-1 pendant of its middle node.

    ``outer_assignment[i]`` (0-based over middle positions) chooses which
    outer *label* hangs off middle node ``k+1+i``; it must be a permutation
    of ``2k+1..3k``.  Because the shortest inner→outer path is forced
    through the unique middle partner, any stretch-<2 routing function at an
    inner node determines this permutation — Theorem 9's ``Ω(n² log n)``.
    """
    if k < 1:
        raise GraphError(f"lower-bound graph needs k >= 1, got {k}")
    outer_labels = list(range(2 * k + 1, 3 * k + 1))
    if outer_assignment is None:
        outer_assignment = outer_labels
    if sorted(outer_assignment) != outer_labels:
        raise GraphError(
            f"outer_assignment must be a permutation of {2 * k + 1}..{3 * k}"
        )
    edges = []
    for i in range(1, k + 1):
        middle = k + i
        for inner in range(1, k + 1):
            edges.append((inner, middle))
        edges.append((middle, outer_assignment[i - 1]))
    return LabeledGraph(3 * k, edges)


def lower_bound_graph_variant(n: int) -> tuple[LabeledGraph, int, int]:
    """The Figure 1 family for *any* ``n ≥ 4``.

    The paper: "For n = 3k−1 or n = 3k−2 we can use G_B dropping v_k and
    v_{k−1}" — i.e. shrink the inner layer while keeping ``k`` middle/outer
    pairs.  Returns ``(graph, k, inner_count)`` with contiguous labels:
    inner ``1..inner_count``, middle ``inner_count+1..inner_count+k``,
    outer ``inner_count+k+1..n``.
    """
    if n < 4:
        raise GraphError(f"variant family needs n >= 4, got {n}")
    k = (n + 2) // 3
    inner_count = n - 2 * k
    edges = []
    for i in range(1, k + 1):
        middle = inner_count + i
        for inner in range(1, inner_count + 1):
            edges.append((inner, middle))
        edges.append((middle, inner_count + k + i))
    return LabeledGraph(n, edges), k, inner_count


def lower_bound_inner_nodes(k: int) -> range:
    """Inner-layer labels ``1..k`` of :func:`lower_bound_graph`."""
    return range(1, k + 1)


def lower_bound_middle_nodes(k: int) -> range:
    """Middle-layer labels ``k+1..2k`` of :func:`lower_bound_graph`."""
    return range(k + 1, 2 * k + 1)


def lower_bound_outer_nodes(k: int) -> range:
    """Outer-layer labels ``2k+1..3k`` of :func:`lower_bound_graph`."""
    return range(2 * k + 1, 3 * k + 1)


# -- deterministic families ---------------------------------------------------


def path_graph(n: int) -> LabeledGraph:
    """The chain ``1 - 2 - ... - n`` (the paper's relabelling example)."""
    return LabeledGraph(n, ((i, i + 1) for i in range(1, n)))


def cycle_graph(n: int) -> LabeledGraph:
    """The n-cycle (requires ``n >= 3``)."""
    if n < 3:
        raise GraphError(f"cycle needs at least 3 nodes, got {n}")
    edges = [(i, i + 1) for i in range(1, n)]
    edges.append((n, 1))
    return LabeledGraph(n, edges)


def complete_graph(n: int) -> LabeledGraph:
    """The complete graph ``K_n`` — the only diameter-1 topology."""
    return LabeledGraph(
        n, ((u, v) for u in range(1, n + 1) for v in range(u + 1, n + 1))
    )


def star_graph(n: int) -> LabeledGraph:
    """A star with centre 1 and ``n - 1`` leaves."""
    return LabeledGraph(n, ((1, v) for v in range(2, n + 1)))


def grid_graph(rows: int, cols: int) -> LabeledGraph:
    """The ``rows × cols`` mesh (node ``(r, c)`` is labelled ``r·cols + c + 1``).

    A classic multiprocessor interconnect used by the simulator examples;
    its diameter ``rows + cols - 2`` puts it firmly outside the paper's
    random-graph class.
    """
    if rows < 1 or cols < 1:
        raise GraphError(f"grid needs positive dimensions, got {rows}x{cols}")

    def label(r: int, c: int) -> int:
        return r * cols + c + 1

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((label(r, c), label(r, c + 1)))
            if r + 1 < rows:
                edges.append((label(r, c), label(r + 1, c)))
    return LabeledGraph(rows * cols, edges)


def torus_graph(rows: int, cols: int) -> LabeledGraph:
    """The ``rows × cols`` torus (mesh with wrap-around links)."""
    if rows < 3 or cols < 3:
        raise GraphError(
            f"torus needs dimensions >= 3 (no duplicate wrap edges), "
            f"got {rows}x{cols}"
        )

    def label(r: int, c: int) -> int:
        return r * cols + c + 1

    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append((label(r, c), label(r, (c + 1) % cols)))
            edges.append((label(r, c), label((r + 1) % rows, c)))
    return LabeledGraph(rows * cols, edges)


def random_tree(n: int, seed: int | None = None) -> LabeledGraph:
    """A uniformly random labelled tree via a random Prüfer sequence."""
    if n < 1:
        raise GraphError(f"tree needs at least one node, got {n}")
    if n == 1:
        return LabeledGraph(1)
    if n == 2:
        return LabeledGraph(2, [(1, 2)])
    rng = random.Random(seed)
    pruefer = [rng.randrange(1, n + 1) for _ in range(n - 2)]
    degree = [1] * (n + 1)
    for node in pruefer:
        degree[node] += 1
    edges = []
    leaves = [u for u in range(1, n + 1) if degree[u] == 1]
    heapq.heapify(leaves)
    for node in pruefer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, node))
        degree[node] -= 1
        if degree[node] == 1:
            heapq.heappush(leaves, node)
    remaining = sorted(leaves)
    edges.append((remaining[0], remaining[1]))
    return LabeledGraph(n, edges)
