"""Structural properties behind the paper's three lemmas.

* **Lemma 1** — on random graphs every degree is ``(n-1)/2 ± O(√(n log n))``:
  :func:`degree_statistics` measures the deviation band.
* **Lemma 2** — random graphs have diameter 2: :func:`diameter` and the fast
  :func:`is_diameter_two` check via one boolean matrix product.
* **Lemma 3 / Claim 1** — from every node ``u`` all non-neighbours are
  reachable through the least ``(c+3) log n`` neighbours of ``u``, and each
  successive least neighbour covers ≥ 1/3 of what remains:
  :func:`covering_sequence` and :func:`claim1_remainders`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import LabeledGraph

__all__ = [
    "DegreeStatistics",
    "degree_statistics",
    "distance_matrix",
    "diameter",
    "is_diameter_two",
    "eccentricity",
    "covering_sequence",
    "cover_prefix_length",
    "claim1_remainders",
    "common_neighbors",
    "min_common_neighbors",
    "lemma3_bound",
]


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of a graph's degree sequence against the Lemma 1 band."""

    n: int
    min_degree: int
    max_degree: int
    mean_degree: float
    max_deviation: int
    """Largest ``|d(v) - (n-1)/2|`` over all nodes."""
    lemma1_bound: float
    """The ``√((δ + log n) n)`` scale the deviations should respect."""

    @property
    def within_band(self) -> bool:
        """True when every degree deviation is within the Lemma 1 scale.

        The scale ``√((δ + log n) n)`` already carries a comfortable
        constant: on ``G(n, 1/2)`` the worst deviation concentrates near
        ``√(n ln(2n) / 2)``, roughly a third of the scale, while skewed
        graphs (stars, the Figure 1 family) overshoot it.
        """
        return self.max_deviation <= self.lemma1_bound


def degree_statistics(
    graph: LabeledGraph, deficiency: float | None = None
) -> DegreeStatistics:
    """Measure the degree band of Lemma 1.

    ``deficiency`` is the randomness deficiency ``δ(n)`` (defaults to
    ``3 log n``, the class of graphs the paper's averages are taken over).
    """
    n = graph.n
    degrees = [graph.degree(u) for u in graph.nodes]
    center = (n - 1) / 2.0
    if deficiency is None:
        deficiency = 3.0 * math.log2(max(n, 2))
    bound = math.sqrt((deficiency + math.log2(max(n, 2))) * n)
    return DegreeStatistics(
        n=n,
        min_degree=min(degrees),
        max_degree=max(degrees),
        mean_degree=sum(degrees) / n,
        max_deviation=int(max(abs(d - center) for d in degrees) + 0.5),
        lemma1_bound=bound,
    )


def distance_matrix(graph: LabeledGraph, max_distance: int | None = None) -> np.ndarray:
    """All-pairs hop distances via repeated boolean matrix products.

    Unreached pairs get ``-1``.  For the diameter-2 graphs dominating this
    library the loop runs exactly twice, so the cost is two dense products —
    far faster than ``n`` BFS traversals in pure Python.
    """
    n = graph.n
    adjacency = graph.adjacency_matrix()
    dist = np.full((n, n), -1, dtype=np.int32)
    np.fill_diagonal(dist, 0)
    reach = np.eye(n, dtype=bool)
    frontier = np.eye(n, dtype=bool)
    hops = 0
    limit = max_distance if max_distance is not None else n
    work = adjacency.astype(np.float32)
    while frontier.any() and hops < limit:
        hops += 1
        expanded = (frontier.astype(np.float32) @ work) > 0
        frontier = expanded & ~reach
        dist[frontier] = hops
        reach |= frontier
    return dist


def diameter(graph: LabeledGraph) -> int:
    """The graph diameter (raises on disconnected graphs)."""
    dist = distance_matrix(graph)
    if (dist < 0).any():
        raise GraphError("diameter undefined: graph is disconnected")
    return int(dist.max())


def is_diameter_two(graph: LabeledGraph) -> bool:
    """Fast Lemma 2 check: every non-adjacent pair has a common neighbour."""
    n = graph.n
    if n == 1:
        return False
    adjacency = graph.adjacency_matrix()
    off_diagonal = adjacency.copy()
    np.fill_diagonal(off_diagonal, True)
    if off_diagonal.all():
        return False  # complete graph: diameter 1
    two_step = (adjacency.astype(np.float32) @ adjacency.astype(np.float32)) > 0
    covered = adjacency | two_step
    np.fill_diagonal(covered, True)
    return bool(covered.all())


def eccentricity(graph: LabeledGraph, u: int) -> int:
    """Largest hop distance from ``u`` (single-source BFS)."""
    seen = {u: 0}
    frontier = [u]
    depth = 0
    while frontier:
        depth += 1
        next_frontier = []
        for x in frontier:
            for y in graph.neighbor_set(x):
                if y not in seen:
                    seen[y] = depth
                    next_frontier.append(y)
        frontier = next_frontier
    if len(seen) != graph.n:
        raise GraphError("eccentricity undefined: graph is disconnected")
    return max(seen.values())


def covering_sequence(
    graph: LabeledGraph, u: int, strategy: str = "least"
) -> Tuple[List[int], List[List[int]]]:
    """Neighbours ``v₁..v_m`` of ``u`` covering every non-neighbour, plus
    the newly-covered sets ``A_t`` of Claim 1.

    ``strategy='least'`` replays the paper: take neighbours in increasing
    label order and stop once all of ``A₀`` is covered (Lemma 3 promises a
    prefix of length ``(c+3) log n`` on random graphs).  ``strategy='greedy'``
    picks the neighbour covering the most still-uncovered targets — the
    ablation considered in DESIGN.md.

    Raises :class:`~repro.errors.GraphError` when no full cover exists,
    i.e. some non-neighbour is at distance > 2 from ``u``.
    """
    remaining = set(graph.non_neighbors(u))
    sequence: List[int] = []
    newly_covered: List[List[int]] = []
    if strategy == "least":
        for v in graph.neighbors(u):
            if not remaining:
                break
            covered = sorted(remaining & graph.neighbor_set(v))
            sequence.append(v)
            newly_covered.append(covered)
            remaining -= set(covered)
    elif strategy == "greedy":
        candidates = set(graph.neighbors(u))
        while remaining and candidates:
            best = max(
                sorted(candidates),
                key=lambda v: len(remaining & graph.neighbor_set(v)),
            )
            covered = sorted(remaining & graph.neighbor_set(best))
            if not covered:
                break
            sequence.append(best)
            newly_covered.append(covered)
            remaining -= set(covered)
            candidates.discard(best)
    else:
        raise GraphError(f"unknown covering strategy {strategy!r}")
    if remaining:
        raise GraphError(
            f"node {u}: {len(remaining)} non-neighbours not coverable at "
            f"distance 2 (graph is not Lemma 3-like)"
        )
    return sequence, newly_covered


def cover_prefix_length(graph: LabeledGraph, u: int) -> int:
    """Length of the least-neighbour prefix needed to cover ``A₀`` (Lemma 3)."""
    sequence, _ = covering_sequence(graph, u, strategy="least")
    return len(sequence)


def claim1_remainders(graph: LabeledGraph, u: int, strategy: str = "least") -> List[int]:
    """The sequence ``m₀ ≥ m₁ ≥ ...`` of uncovered counts from Claim 1.

    ``m₀ = |A₀|`` and ``m_t = m_{t-1} - |A_t|``; Claim 1 says each step with
    ``m_{t-1} > n / log log n`` removes at least a third of the remainder.
    """
    _, newly_covered = covering_sequence(graph, u, strategy)
    remainders = [len(graph.non_neighbors(u))]
    for covered in newly_covered:
        remainders.append(remainders[-1] - len(covered))
    return remainders


def common_neighbors(graph: LabeledGraph, u: int, v: int) -> Tuple[int, ...]:
    """Nodes adjacent to both ``u`` and ``v``, in increasing order.

    On a diameter-2 graph this is the set of shortest-path intermediaries —
    exactly what a full-information function stores per non-adjacent pair,
    and what link-failure resilience draws on.
    """
    return tuple(
        sorted(graph.neighbor_set(u) & graph.neighbor_set(v))
    )


def min_common_neighbors(graph: LabeledGraph) -> int:
    """The worst shortest-path redundancy over non-adjacent pairs.

    On ``G(n, 1/2)`` every non-adjacent pair shares about ``n/4``
    neighbours, which is why full-information routing survives so many
    failures (the simulator benches measure the consequence).
    """
    n = graph.n
    adjacency = graph.adjacency_matrix()
    counts = adjacency.astype(np.float32) @ adjacency.astype(np.float32)
    worst = None
    for u in range(n):
        for v in range(u + 1, n):
            if adjacency[u, v]:
                continue
            shared = int(counts[u, v])
            if worst is None or shared < worst:
                worst = shared
    return worst if worst is not None else 0


def lemma3_bound(n: int, c: float = 3.0) -> float:
    """The ``(c+3) log n`` prefix-length bound of Lemma 3."""
    return (c + 3.0) * math.log2(max(n, 2))
