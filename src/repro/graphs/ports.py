"""Port assignments — the paper's local edge labels.

Edges incident to a node ``v`` of degree ``d(v)`` are connected to ports
labelled ``1..d(v)``.  Whether this assignment is an adversarial given
(model IA), freely re-assignable (model IB), or irrelevant because
neighbours are known (model II) is what separates the knowledge models.

Theorem 8's adversary exploits exactly this object: a random port
assignment is a random permutation of each node's neighbours, and any
shortest-path routing function must reproduce it.
"""

from __future__ import annotations

import random
from typing import Dict, Mapping

from repro.errors import PortAssignmentError
from repro.graphs.graph import LabeledGraph

__all__ = ["PortAssignment"]


class PortAssignment:
    """A per-node bijection from neighbours to ports ``1..d(v)``."""

    __slots__ = ("_graph", "_port_of", "_neighbor_at")

    def __init__(
        self, graph: LabeledGraph, port_of: Mapping[int, Mapping[int, int]]
    ) -> None:
        self._graph = graph
        frozen_ports: Dict[int, Dict[int, int]] = {}
        frozen_neighbors: Dict[int, Dict[int, int]] = {}
        for u in graph.nodes:
            local = dict(port_of.get(u, {}))
            neighbors = graph.neighbors(u)
            if sorted(local) != sorted(neighbors):
                raise PortAssignmentError(
                    f"node {u}: ports must be assigned to exactly the "
                    f"neighbours {neighbors}"
                )
            if sorted(local.values()) != list(range(1, len(neighbors) + 1)):
                raise PortAssignmentError(
                    f"node {u}: ports must be a bijection onto 1..{len(neighbors)}"
                )
            frozen_ports[u] = local
            frozen_neighbors[u] = {port: nb for nb, port in local.items()}
        self._port_of = frozen_ports
        self._neighbor_at = frozen_neighbors

    # -- constructors --------------------------------------------------------

    @classmethod
    def identity(cls, graph: LabeledGraph) -> "PortAssignment":
        """The canonical assignment: the i-th least neighbour sits on port i.

        This is the assignment a model-IB scheme chooses for itself — with it
        the port map is derivable from the neighbour set alone, so knowing
        the interconnection vector (``n - 1`` bits) suffices to route to any
        neighbour.
        """
        return cls(
            graph,
            {
                u: {nb: i + 1 for i, nb in enumerate(graph.neighbors(u))}
                for u in graph.nodes
            },
        )

    @classmethod
    def shuffled(cls, graph: LabeledGraph, rng: random.Random) -> "PortAssignment":
        """A uniformly random assignment (the Theorem 8 adversary)."""
        port_of = {}
        for u in graph.nodes:
            ports = list(range(1, graph.degree(u) + 1))
            rng.shuffle(ports)
            port_of[u] = dict(zip(graph.neighbors(u), ports))
        return cls(graph, port_of)

    # -- accessors -------------------------------------------------------------

    @property
    def graph(self) -> LabeledGraph:
        """The underlying topology."""
        return self._graph

    def port(self, u: int, neighbor: int) -> int:
        """Port at ``u`` leading to ``neighbor``."""
        try:
            return self._port_of[u][neighbor]
        except KeyError as exc:
            raise PortAssignmentError(
                f"{neighbor} is not a neighbour of {u}"
            ) from exc

    def neighbor(self, u: int, port: int) -> int:
        """Neighbour of ``u`` reached through ``port``."""
        try:
            return self._neighbor_at[u][port]
        except KeyError as exc:
            raise PortAssignmentError(
                f"node {u} has no port {port}"
            ) from exc

    def permutation_at(self, u: int) -> tuple[int, ...]:
        """Ports as a permutation relative to the sorted neighbour order.

        Entry ``i`` is ``port(u, i-th least neighbour) - 1``, a permutation
        of ``0..d(u)-1``.  Its Lehmer rank is the minimal description of the
        assignment, which is the quantity Theorem 8 charges for.
        """
        return tuple(
            self._port_of[u][nb] - 1 for nb in self._graph.neighbors(u)
        )

    def is_identity(self) -> bool:
        """True when every node's i-th least neighbour sits on port i."""
        return all(
            self.permutation_at(u) == tuple(range(self._graph.degree(u)))
            for u in self._graph.nodes
        )
