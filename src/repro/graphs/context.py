"""GraphContext — the shared derived-computation layer.

The paper's constructions (Theorems 1–5), the verifier, the simulator and
the lower-bound machinery all consume the same few derived objects:
all-pairs distances, per-root BFS trees, degree statistics, the identity
port table.  Before this layer existed every consumer recomputed them
independently — a build→verify→simulate pipeline paid for the ``O(n·m)``
distance matrix three times on the *same* immutable graph.  Compact-routing
practice (Thorup–Zwick landmark schemes and their descendants) hoists that
shared preprocessing into one reusable stage; :class:`GraphContext` is that
stage here.

One context exists per graph (see :func:`get_context`), keyed on a cheap
structural fingerprint so that *equal* graphs — not just the same object —
share their derivations.  Every accessor is memoised with hit/miss
counters in the process-wide :class:`~repro.observability.registry.
MetricsRegistry` (``repro_graph_ctx_total``) and an optional
:class:`~repro.observability.tracer.Tracer` receives ``ctx`` spans for
every fresh computation, so reuse is observable, not assumed.  The
corruption/heal path additionally sources its pristine table knowledge
from :meth:`GraphContext.pristine_bits` and can drop every memo with
:meth:`GraphContext.invalidate`.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import LabeledGraph
from repro.graphs.ports import PortAssignment
from repro.graphs.properties import (
    DegreeStatistics,
    degree_statistics,
    distance_matrix,
)
from repro.observability.profiling import profile_section
from repro.observability.registry import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports graphs)
    from repro.bitio import BitArray
    from repro.core.scheme import RoutingScheme
    from repro.observability.tracer import Tracer

__all__ = [
    "GraphContext",
    "Fingerprint",
    "structural_fingerprint",
    "get_context",
    "clear_context_cache",
    "context_cache_size",
]

Fingerprint = Tuple[int, int, int]

CTX_COUNTER = "repro_graph_ctx_total"
"""Counter name for per-accessor cache traffic (labels: ``kind``, ``op``)."""
CTX_INVALIDATIONS = "repro_graph_ctx_invalidations_total"
"""Counter name for explicit :meth:`GraphContext.invalidate` calls.

Full flushes increment the plain (unlabelled) counter; selective drops
increment it once per derivation ``kind`` actually dropped, labelled with
that kind, so dashboards can tell a targeted churn invalidation from an
all-or-nothing flush.
"""
CTX_STORE_COUNTER = "repro_graph_ctx_store_total"
"""Counter name for the process-wide context store (label: ``op``)."""

_NODE_OF_KEY: Dict[str, Callable[[Any], int]] = {
    "bfs_tree": lambda key: key,
    "eccentricity": lambda key: key,
    "sorted_adjacency": lambda key: key,
    "pristine_bits": lambda key: key[1],
}
"""Node-scoped derivation kinds and how to read the node out of their key.

Kinds absent here (``distances``, ``degree_stats``, ``port_table``) are
whole-graph derivations: a node-scoped invalidation only drops them when
their kind is requested explicitly.
"""


def structural_fingerprint(graph: LabeledGraph) -> Fingerprint:
    """A cheap structural key: ``(n, edge_count, crc32 of the adjacency bits)``.

    The CRC runs over the packed boolean adjacency matrix (which
    :class:`LabeledGraph` caches anyway), so the fingerprint costs
    ``O(n²/8)`` bytes of hashing — negligible next to any derivation it
    guards.  Equal graphs always produce equal fingerprints; the store in
    :func:`get_context` additionally confirms graph equality before
    aliasing two objects onto one context, so a CRC collision can never
    alias two *different* graphs.
    """
    packed = np.packbits(graph.adjacency_matrix())
    return (graph.n, graph.edge_count, zlib.crc32(packed.tobytes()))


class GraphContext:
    """Per-graph memoisation of every derivation the stack shares.

    Accessors (all memoised, all counted):

    * :meth:`distances` — all-pairs hop distances (optionally truncated);
    * :meth:`bfs_tree` / :meth:`ball` — per-root BFS parents and hop-balls;
    * :meth:`eccentricity` — single-source eccentricities;
    * :meth:`degree_stats` — the Lemma 1 degree band summary;
    * :meth:`sorted_adjacency` — the "least neighbour" order;
    * :meth:`port_table` — the canonical identity
      :class:`~repro.graphs.ports.PortAssignment` of model IB;
    * :meth:`pristine_bits` — a scheme's serialised local functions (the
      corruption self-healer's knowledge source).

    The context never observes graph mutation (graphs are immutable); the
    explicit :meth:`invalidate` exists for the corruption/heal path and for
    tests that must force recomputation.
    """

    __slots__ = ("_graph", "_fingerprint", "_cache", "_tracer", "_stats", "_aliases")

    def __init__(
        self,
        graph: LabeledGraph,
        fingerprint: Optional[Fingerprint] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self._graph = graph
        self._fingerprint = (
            fingerprint if fingerprint is not None else structural_fingerprint(graph)
        )
        self._cache: Dict[Hashable, Any] = {}
        self._tracer: Optional["Tracer"] = None
        self._stats: Dict[str, int] = {"hits": 0, "misses": 0, "invalidations": 0}
        self._aliases: List[LabeledGraph] = []
        self.set_tracer(tracer)

    # -- identity ------------------------------------------------------------

    @property
    def graph(self) -> LabeledGraph:
        """The graph every derivation belongs to."""
        return self._graph

    @property
    def fingerprint(self) -> Fingerprint:
        """The structural key this context is stored under."""
        return self._fingerprint

    def matches(self, graph: LabeledGraph) -> bool:
        """Whether ``graph`` is (structurally) the graph of this context."""
        return graph is self._graph or (
            structural_fingerprint(graph) == self._fingerprint
            and graph == self._graph
        )

    # -- observability -------------------------------------------------------

    def set_tracer(self, tracer: Optional["Tracer"]) -> None:
        """Attach a tracer for ``ctx`` spans (disabled tracers normalise to None)."""
        if tracer is not None and tracer.enabled:
            self._tracer = tracer
        elif tracer is None:
            # Explicit detach only on None; a disabled tracer is ignored so
            # simulators can pass their (possibly disabled) tracer blindly.
            self._tracer = None

    def cache_stats(self) -> Dict[str, int]:
        """Local hit/miss/invalidation counts (registry-independent view)."""
        return dict(self._stats)

    def cached_kinds(self) -> Set[str]:
        """The derivation kinds currently memoised (first key component)."""
        return {key[0] for key in self._cache}  # type: ignore[index]

    @property
    def has_cached_distances(self) -> bool:
        """Whether the full all-pairs matrix is memoised right now."""
        return ("distances", None) in self._cache

    # -- memoisation core ----------------------------------------------------

    def _memo(self, kind: str, key: Hashable, compute: Callable[[], Any]) -> Any:
        full_key = (kind, key)
        if full_key in self._cache:
            self._stats["hits"] += 1
            get_registry().counter(CTX_COUNTER, kind=kind, op="hit").inc()
            return self._cache[full_key]
        self._stats["misses"] += 1
        get_registry().counter(CTX_COUNTER, kind=kind, op="miss").inc()
        with profile_section(f"ctx.{kind}"):
            value = compute()
        self._cache[full_key] = value
        tracer = self._tracer
        if tracer is not None:
            tracer.ctx(kind=kind, op="miss")
        return value

    def invalidate(
        self,
        nodes: Optional[Iterable[int]] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> int:
        """Drop memoised derivations — wholesale or selectively.

        With no arguments every memo is dropped (the corruption/heal
        escape hatch, unchanged semantics).  With ``nodes`` and/or
        ``kinds`` only the matching entries go: a topology mutation that
        touches three nodes dirties their BFS trees, eccentricities,
        adjacency orders and pristine table bits while the rest of the
        cache survives.  Whole-graph derivations (``distances``,
        ``degree_stats``, ``port_table``) are dropped by a node-scoped
        call only when their kind is named explicitly in ``kinds``.

        Returns the number of cache entries dropped.  Selective drops
        increment the invalidation counter once per affected ``kind``
        (labelled), full flushes increment the unlabelled counter —
        see :data:`CTX_INVALIDATIONS`.
        """
        if nodes is None and kinds is None:
            dropped = len(self._cache)
            self._cache.clear()
            self._stats["invalidations"] += 1
            get_registry().counter(CTX_INVALIDATIONS).inc()
            tracer = self._tracer
            if tracer is not None:
                tracer.ctx(kind="*", op="invalidate")
            return dropped
        node_set = None if nodes is None else {int(v) for v in nodes}
        kind_set = None if kinds is None else set(kinds)
        doomed = [
            full_key
            for full_key in self._cache
            if self._invalidation_selects(full_key, node_set, kind_set)
        ]
        dropped_kinds: Dict[str, int] = {}
        for full_key in doomed:
            del self._cache[full_key]
            kind = full_key[0]  # type: ignore[index]
            dropped_kinds[kind] = dropped_kinds.get(kind, 0) + 1
        if doomed:
            self._stats["invalidations"] += 1
            registry = get_registry()
            tracer = self._tracer
            for kind in sorted(dropped_kinds):
                registry.counter(CTX_INVALIDATIONS, kind=kind).inc()
                if tracer is not None:
                    tracer.ctx(kind=kind, op="invalidate")
        return len(doomed)

    @staticmethod
    def _invalidation_selects(
        full_key: Hashable,
        node_set: Optional[Set[int]],
        kind_set: Optional[Set[str]],
    ) -> bool:
        """Whether a selective :meth:`invalidate` call drops ``full_key``."""
        kind, key = full_key  # type: ignore[misc]
        if kind_set is not None and kind not in kind_set:
            return False
        if node_set is None:
            return True
        node_of = _NODE_OF_KEY.get(kind)
        if node_of is None:
            # Whole-graph derivation: a node-scoped call drops it only
            # when the caller asked for the kind by name.
            return kind_set is not None
        return node_of(key) in node_set

    # -- churn carry-forward --------------------------------------------------

    def adopt_pristine_bits(
        self, scheme: "RoutingScheme", node: int, bits: "BitArray"
    ) -> None:
        """Seed the pristine-bits memo for ``(scheme, node)`` without encoding.

        The incremental repair path carries the serialised tables of nodes
        a topology mutation did *not* dirty into the successor graph's
        context, so the heal machinery's knowledge source stays warm and
        the untouched tables are provably the same bits — no re-encode
        ever happens for them.
        """
        self._cache[("pristine_bits", (id(scheme), node))] = (scheme, bits)
        get_registry().counter(CTX_COUNTER, kind="pristine_bits", op="adopt").inc()

    def inherit(self, other: "GraphContext", dirty: Iterable[int]) -> int:
        """Carry still-valid per-node derivations over from a predecessor.

        ``other`` is the context of the graph a topology mutation started
        from and ``dirty`` the nodes the mutation affected.  Entries are
        copied only when provably unchanged on *this* graph:

        * ``sorted_adjacency`` — revalidated against the new adjacency;
        * ``eccentricity`` — carried for clean nodes (a clean node's
          distance row is unchanged by the dirty-set closure rule);
        * ``bfs_tree`` — carried only when every tree edge still exists
          and the depth map equals the new distance row (validated).

        Whole-graph derivations and pristine bits are never inherited here
        (pristine bits are scheme-keyed; the repair layer adopts them per
        target scheme via :meth:`adopt_pristine_bits`).  Returns the
        number of entries carried; each carried entry counts as an
        ``op="adopt"`` on the cache-traffic counter.
        """
        dirty_set = {int(v) for v in dirty}
        graph = self._graph
        new_dist = self.distances()
        registry = get_registry()
        carried = 0
        for full_key, value in other._cache.items():
            kind, key = full_key  # type: ignore[misc]
            if full_key in self._cache:
                continue
            if kind == "sorted_adjacency":
                if value != graph.neighbors(key):
                    continue
            elif kind == "eccentricity":
                if key in dirty_set:
                    continue
            elif kind == "bfs_tree":
                if not self._bfs_tree_still_valid(key, value, new_dist):
                    continue
            else:
                continue
            self._cache[full_key] = value
            registry.counter(CTX_COUNTER, kind=kind, op="adopt").inc()
            carried += 1
        return carried

    def _bfs_tree_still_valid(
        self,
        root: int,
        value: Tuple[Dict[int, int], Dict[int, int]],
        new_dist: np.ndarray,
    ) -> bool:
        """Whether a predecessor graph's BFS tree is a BFS tree here too.

        True iff the tree covers exactly the nodes reachable from the
        root, every parent edge still exists, and every depth equals the
        new distance row — i.e. the memo is indistinguishable from a
        fresh traversal.
        """
        parent, depth = value
        row = new_dist[root - 1]
        if len(parent) != int((row >= 0).sum()):
            return False
        graph = self._graph
        for v, p in parent.items():
            if depth[v] != row[v - 1]:
                return False
            if v != root and not graph.has_edge(v, p):
                return False
        return True

    # -- derivations ---------------------------------------------------------

    def distances(self, max_distance: Optional[int] = None) -> np.ndarray:
        """All-pairs hop distances (``-1`` for unreached pairs), memoised.

        A bounded request (``max_distance=k``) is derived from the full
        matrix for free whenever the full matrix is already cached — the
        common case in a pipeline that builds a shortest-path scheme first.
        The returned array is marked read-only: it is shared by every
        consumer of this graph.
        """

        def _freeze(matrix: np.ndarray) -> np.ndarray:
            matrix.setflags(write=False)
            return matrix

        if max_distance is None:
            return self._memo(
                "distances", None, lambda: _freeze(distance_matrix(self._graph))
            )
        if self.has_cached_distances:
            # Truncating the cached full matrix is O(n²) masking — count it
            # as a derivation of its own so the reuse stays visible.
            def _truncate() -> np.ndarray:
                full = self._cache[("distances", None)]
                bounded = full.copy()
                bounded[(full > max_distance) | (full < 0)] = -1
                return _freeze(bounded)

            return self._memo("distances", max_distance, _truncate)
        return self._memo(
            "distances",
            max_distance,
            lambda: _freeze(distance_matrix(self._graph, max_distance=max_distance)),
        )

    def _bfs(self, root: int) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Parents and depths of the BFS tree rooted at ``root`` (memoised).

        Covers the reachable component only; callers needing connectivity
        check ``len(parents) == graph.n`` themselves.
        """

        def _compute() -> Tuple[Dict[int, int], Dict[int, int]]:
            graph = self._graph
            parent = {root: root}
            depth = {root: 0}
            frontier = [root]
            level = 0
            while frontier:
                level += 1
                next_frontier: List[int] = []
                for u in frontier:
                    for v in graph.neighbors(u):
                        if v not in parent:
                            parent[v] = u
                            depth[v] = level
                            next_frontier.append(v)
                frontier = next_frontier
            return parent, depth

        return self._memo("bfs_tree", root, _compute)

    def bfs_tree(self, root: int) -> Dict[int, int]:
        """Parent pointers of the BFS tree at ``root`` (``parent[root] = root``).

        Returns a copy — BFS trees are handed to callers that decorate
        them; the memoised original stays pristine.
        """
        parent, _ = self._bfs(root)
        return dict(parent)

    def ball(self, center: int, radius: int) -> Set[int]:
        """Nodes within hop distance ``radius`` of ``center``.

        Derived from the memoised BFS depths, so regional fault generators
        probing several radii around one epicentre pay for one traversal.
        """
        if radius < 0:
            raise GraphError(f"radius must be >= 0, got {radius}")
        _, depth = self._bfs(center)
        return {v for v, d in depth.items() if d <= radius}

    def eccentricity(self, u: int) -> int:
        """Largest hop distance from ``u`` (raises on disconnected graphs).

        Served from the full distance matrix when it is already cached;
        otherwise one BFS from ``u``.
        """

        def _compute() -> int:
            if self.has_cached_distances:
                row = self._cache[("distances", None)][u - 1]
                if (row < 0).any():
                    raise GraphError(
                        "eccentricity undefined: graph is disconnected"
                    )
                return int(row.max())
            parent, depth = self._bfs(u)
            if len(parent) != self._graph.n:
                raise GraphError("eccentricity undefined: graph is disconnected")
            return max(depth.values())

        return self._memo("eccentricity", u, _compute)

    def degree_stats(self, deficiency: Optional[float] = None) -> DegreeStatistics:
        """The Lemma 1 degree-band summary (memoised per deficiency)."""
        return self._memo(
            "degree_stats",
            deficiency,
            lambda: degree_statistics(self._graph, deficiency=deficiency),
        )

    def sorted_adjacency(self, u: int) -> Tuple[int, ...]:
        """Neighbours of ``u`` in increasing label order (the "least" order)."""
        return self._memo(
            "sorted_adjacency", u, lambda: self._graph.neighbors(u)
        )

    def port_table(self) -> PortAssignment:
        """The canonical identity port assignment of model IB (memoised).

        Every scheme that normalises its ports builds this same object;
        sharing it collapses ``O(Σ d(v))`` of per-scheme setup into one.
        """
        return self._memo(
            "port_table", None, lambda: PortAssignment.identity(self._graph)
        )

    def pristine_bits(self, scheme: "RoutingScheme", node: int) -> "BitArray":
        """``node``'s serialised pristine function under ``scheme`` (memoised).

        This is the graph+model knowledge the corruption self-healer
        rebuilds from (:meth:`~repro.simulator.network.Network.heal_table`):
        the first corruption of a node pays for the encode, every repeat
        corruption or heal of that node is a context hit.  Keyed on the
        scheme *instance* (two same-named schemes may encode differently,
        e.g. under different port assignments); a strong reference pins the
        instance so its id cannot be recycled while memoised.
        """

        def _compute() -> Tuple["RoutingScheme", "BitArray"]:
            return (scheme, scheme.encode_function(node))

        held, bits = self._memo("pristine_bits", (id(scheme), node), _compute)
        if held is not scheme:  # pragma: no cover - defensive (id collision)
            raise GraphError("pristine-bits cache keyed a recycled scheme id")
        return bits

    def port_matrix(self) -> np.ndarray:
        """The identity port table as a dense C-contiguous ``int32`` array.

        ``matrix[u - 1, p]`` is the neighbour that port ``p`` of node ``u``
        leads to, padded with ``-1`` past ``degree(u)``.  Shape is
        ``[n, max_degree]`` (at least one column), derived from
        :meth:`port_table` and frozen read-only so the batch kernel can
        gather from it without per-step copies.
        """

        def _compute() -> np.ndarray:
            graph = self._graph
            table = self.port_table()
            width = max((graph.degree(u) for u in graph.nodes), default=0)
            matrix = np.full((graph.n, max(width, 1)), -1, dtype=np.int32)
            for u in graph.nodes:
                for port in range(graph.degree(u)):
                    matrix[u - 1, port] = table.neighbor(u, port)
            matrix = np.ascontiguousarray(matrix)
            matrix.setflags(write=False)
            return matrix

        return self._memo("port_matrix", None, _compute)

    def next_hop_matrix(self, scheme: "RoutingScheme") -> Optional[np.ndarray]:
        """A dense next-hop lookup for ``scheme``, or None if not derivable.

        ``matrix[u - 1, d - 1]`` is the next node on ``scheme``'s route
        from ``u`` towards destination ``d`` whenever the scheme's local
        function at ``u`` answers with a stateless single-neighbour
        decision; ``-1`` marks a :class:`~repro.errors.RoutingError`
        ("no route"), ``-2`` marks entries a vectorised consumer must
        resolve through the scalar path (self-routing, non-neighbour or
        non-integer decisions).  The whole matrix degrades to ``None``
        when any decision carries header state, the scheme wraps detour
        functions, or evaluation fails in a scheme-specific way — batch
        consumers then fall back to scalar routing wholesale.

        Keyed on the scheme *instance* (like :meth:`pristine_bits`) with a
        strong reference pinning it against id recycling; the array is
        C-contiguous ``int32`` and frozen read-only.
        """

        def _compute() -> Tuple["RoutingScheme", Optional[np.ndarray]]:
            # Imported lazily: core imports graphs, so graphs cannot import
            # core at module scope.
            from repro.core.detour import DetourFunction
            from repro.errors import ReproError, RoutingError

            graph = self._graph
            n = graph.n
            matrix = np.full((n, n), -2, dtype=np.int32)
            for u in graph.nodes:
                try:
                    function = scheme.function(u)
                except (ReproError, KeyError, IndexError, TypeError, ValueError):
                    return (scheme, None)
                if isinstance(function, DetourFunction):
                    return (scheme, None)
                for d in graph.nodes:
                    if d == u:
                        continue
                    address = scheme.address_of(d)
                    try:
                        decision = function.next_hop(address)
                    except RoutingError:
                        matrix[u - 1, d - 1] = -1
                        continue
                    except (ReproError, KeyError, IndexError, TypeError, ValueError):
                        return (scheme, None)
                    if decision.state is not None:
                        return (scheme, None)
                    nxt = decision.next_node
                    if (
                        isinstance(nxt, int)
                        and nxt != u
                        and scheme.graph.has_edge(u, nxt)
                    ):
                        matrix[u - 1, d - 1] = nxt
            matrix = np.ascontiguousarray(matrix)
            matrix.setflags(write=False)
            return (scheme, matrix)

        held, matrix = self._memo("next_hop_matrix", id(scheme), _compute)
        if held is not scheme:  # pragma: no cover - defensive (id collision)
            raise GraphError("next-hop cache keyed a recycled scheme id")
        return matrix

    def __repr__(self) -> str:
        return (
            f"GraphContext(n={self._graph.n}, edges={self._graph.edge_count}, "
            f"cached={sorted(self.cached_kinds())})"
        )


# -- process-wide store -------------------------------------------------------
#
# One context per structurally-distinct graph, LRU-bounded.  Strong refs are
# deliberate: LabeledGraph uses __slots__ without __weakref__, and pinning
# the handful of live graphs is exactly what makes identity keys safe.

_CTX_CACHE: "OrderedDict[Fingerprint, GraphContext]" = OrderedDict()
_CTX_BY_ID: Dict[int, GraphContext] = {}
_CTX_CACHE_SIZE = 8


def context_cache_size() -> int:
    """The LRU capacity of the process-wide context store."""
    return _CTX_CACHE_SIZE


def get_context(graph: LabeledGraph) -> GraphContext:
    """The shared :class:`GraphContext` of ``graph`` (created on first use).

    Keyed on :func:`structural_fingerprint`, so two equal graph objects
    (e.g. the same seeded sample drawn twice) share one context; an
    identity fast path skips the fingerprint for the overwhelmingly common
    same-object case.
    """
    registry = get_registry()
    ctx = _CTX_BY_ID.get(id(graph))
    if ctx is not None and (ctx.graph is graph or any(g is graph for g in ctx._aliases)):
        _CTX_CACHE.move_to_end(ctx.fingerprint)
        registry.counter(CTX_STORE_COUNTER, op="hit").inc()
        return ctx
    fingerprint = structural_fingerprint(graph)
    ctx = _CTX_CACHE.get(fingerprint)
    if ctx is not None and ctx.graph == graph:
        # A structurally-equal graph object: alias it onto the shared
        # context (the strong ref keeps its id stable while cached).
        ctx._aliases.append(graph)
        _CTX_BY_ID[id(graph)] = ctx
        _CTX_CACHE.move_to_end(fingerprint)
        registry.counter(CTX_STORE_COUNTER, op="hit").inc()
        return ctx
    ctx = GraphContext(graph, fingerprint=fingerprint)
    _CTX_CACHE[fingerprint] = ctx
    _CTX_BY_ID[id(graph)] = ctx
    registry.counter(CTX_STORE_COUNTER, op="miss").inc()
    while len(_CTX_CACHE) > _CTX_CACHE_SIZE:
        _, evicted = _CTX_CACHE.popitem(last=False)
        for key in [k for k, v in _CTX_BY_ID.items() if v is evicted]:
            del _CTX_BY_ID[key]
        registry.counter(CTX_STORE_COUNTER, op="eviction").inc()
    return ctx


def clear_context_cache() -> None:
    """Empty the process-wide store (tests and fresh experiment runs)."""
    _CTX_CACHE.clear()
    _CTX_BY_ID.clear()
