"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class BitstreamError(ReproError):
    """Raised on malformed bit streams (truncation, bad prefix codes)."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or node/edge lookups."""


class PortAssignmentError(GraphError):
    """Raised when a port assignment is not a valid local bijection."""


class ModelError(ReproError):
    """Raised when a scheme is built or charged under an incompatible model."""


class SchemeBuildError(ReproError):
    """Raised when a routing-scheme construction cannot be completed.

    The compact constructions of the paper rely on structural properties of
    Kolmogorov random graphs (diameter 2, logarithmic neighbour covers).  On
    graphs lacking those properties the builders raise this error rather than
    silently producing an incorrect scheme.
    """


class RoutingError(ReproError):
    """Raised when routing a message fails (no port, loop, hop limit)."""


class CodecError(ReproError):
    """Raised when an incompressibility codec cannot encode or decode."""


class IntegrityError(ReproError):
    """Raised when a framed routing table fails its integrity check.

    Deliberately *not* a :class:`RoutingError`: a corrupted table is a
    storage fault, not a routing dead end, and the simulators map it to
    ``DropReason.TABLE_CORRUPT`` (quarantine + heal) rather than
    ``NO_ROUTE``.
    """


class AnalysisError(ReproError):
    """Raised for invalid analysis inputs (e.g. empty scaling samples)."""


class StoreError(ReproError):
    """Raised when the durable scheme store cannot complete an operation.

    Covers I/O failures surfaced by the filesystem layer (a rename that
    did not land, an unreadable journal) and logical failures (a missing
    generation, a hot-swap candidate that failed verification).  Corrupt
    *records* do not raise: recovery quarantines them and reports the
    damage in its :class:`~repro.store.recovery.RecoveryReport`."""
