"""repro — a reproduction of *Optimal Routing Tables* (PODC 1996).

Buhrman, Hoepman and Vitányi determine the optimal space needed to store
routing schemes in static networks, in nine models and both worst-case and
on average, using the incompressibility method.  This library makes every
object in that paper executable:

* :mod:`repro.graphs` — labelled graphs, port assignments, the canonical
  ``E(G)`` encoding, random and explicit lower-bound families;
* :mod:`repro.models` — the nine models (IA/IB/II × α/β/γ) and the space
  accounting rules;
* :mod:`repro.core` — the routing schemes of Theorems 1–5, the baselines,
  full-information routing and verification;
* :mod:`repro.incompressibility` — the proofs of Lemmas 1–3 and Theorems
  6/10 as runnable graph codecs with exact bit accounting;
* :mod:`repro.lowerbounds` — the Theorem 8 port adversary and the Theorem 9
  explicit worst-case family;
* :mod:`repro.simulator` — a message-level network simulator with failure
  injection;
* :mod:`repro.analysis` — growth-law fitting and the Table 1 reproduction.

Quickstart::

    from repro import (
        Knowledge, Labeling, RoutingModel, build_scheme,
        gnp_random_graph, verify_scheme,
    )

    graph = gnp_random_graph(128, seed=1)
    model = RoutingModel(Knowledge.II, Labeling.ALPHA)
    scheme = build_scheme("thm1-two-level", graph, model)
    print(scheme.space_report().summary())
    assert verify_scheme(scheme, sample_pairs=500).ok()
"""

from repro.core import (
    CenterScheme,
    FullInformationScheme,
    FullTableScheme,
    HubScheme,
    IntervalRoutingScheme,
    NeighborLabelScheme,
    ProbeScheme,
    RoutingScheme,
    TwoLevelScheme,
    available_schemes,
    build_scheme,
    route_message,
    verify_scheme,
)
from repro.errors import (
    AnalysisError,
    BitstreamError,
    CodecError,
    GraphError,
    ModelError,
    PortAssignmentError,
    ReproError,
    RoutingError,
    SchemeBuildError,
)
from repro.graphs import (
    LabeledGraph,
    PortAssignment,
    certify_random_graph,
    gnp_random_graph,
    lower_bound_graph,
)
from repro.models import Knowledge, Labeling, RoutingModel, SpaceReport, all_models

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "BitstreamError",
    "CenterScheme",
    "CodecError",
    "FullInformationScheme",
    "FullTableScheme",
    "GraphError",
    "HubScheme",
    "IntervalRoutingScheme",
    "Knowledge",
    "LabeledGraph",
    "Labeling",
    "ModelError",
    "NeighborLabelScheme",
    "PortAssignment",
    "PortAssignmentError",
    "ProbeScheme",
    "ReproError",
    "RoutingError",
    "RoutingModel",
    "RoutingScheme",
    "SchemeBuildError",
    "SpaceReport",
    "TwoLevelScheme",
    "all_models",
    "available_schemes",
    "build_scheme",
    "certify_random_graph",
    "gnp_random_graph",
    "lower_bound_graph",
    "route_message",
    "verify_scheme",
    "__version__",
]
