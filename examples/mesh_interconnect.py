"""Routing a multiprocessor mesh: where the paper's schemes stop, and what then.

Run:  python examples/mesh_interconnect.py [rows] [cols]

A ``rows × cols`` torus interconnect has diameter ``(rows + cols) // 2`` —
far above the diameter-2 world of Kolmogorov random graphs, so the
Theorem 1–5 builders refuse it (correctly).  This example shows the
refusal, then routes the mesh with the library's general-graph layer
(interval routing and tree cover), and finally runs a permutation-traffic
workload through the queueing simulator to expose contention.
"""

from __future__ import annotations

import sys

from repro import Knowledge, Labeling, RoutingModel, build_scheme, verify_scheme
from repro.errors import SchemeBuildError
from repro.graphs import diameter, torus_graph
from repro.simulator import EventDrivenSimulator, summarize
from repro.simulator.workloads import permutation_traffic


def main(rows: int = 8, cols: int = 8) -> None:
    graph = torus_graph(rows, cols)
    print(f"{rows}x{cols} torus: {graph.n} nodes, {graph.edge_count} links, "
          f"diameter {diameter(graph)}")

    ii_alpha = RoutingModel(Knowledge.II, Labeling.ALPHA)
    try:
        build_scheme("thm1-two-level", graph, ii_alpha)
        print("unexpected: Theorem 1 accepted a torus!")
    except SchemeBuildError as exc:
        print(f"\nTheorem 1 correctly refuses: {exc}")

    print("\n== General-graph schemes ==")
    menu = [
        ("full-table", RoutingModel(Knowledge.IA, Labeling.ALPHA), {}),
        ("interval", RoutingModel(Knowledge.II, Labeling.BETA), {}),
        ("tree-cover", RoutingModel(Knowledge.II, Labeling.GAMMA),
         {"num_trees": 4}),
    ]
    for name, model, params in menu:
        scheme = build_scheme(name, graph, model, **params)
        report = scheme.space_report()
        verification = verify_scheme(scheme, sample_pairs=500, seed=1)
        assert verification.all_delivered
        print(f"  {name:12s} {report.total_bits:8d} bits  "
              f"max stretch {verification.max_stretch:5.2f}  "
              f"mean {verification.mean_stretch:.2f}")

    print("\n== Permutation traffic with per-node forwarding queues ==")
    scheme = build_scheme(
        "tree-cover", graph, RoutingModel(Knowledge.II, Labeling.GAMMA),
        num_trees=4,
    )
    sim = EventDrivenSimulator(scheme, link_latency=1.0, node_service_time=0.25)
    for i, (source, dest) in enumerate(permutation_traffic(graph, seed=3)):
        sim.inject(source, dest, at_time=i * 0.02)
    records = sim.run()
    metrics = summarize(records, graph)
    hottest = max(sim.forward_counts.values()) if sim.forward_counts else 0
    print(f"  delivered {metrics.delivered}/{metrics.messages}, "
          f"mean latency {metrics.mean_latency:.2f}, "
          f"mean hops {metrics.mean_hops:.2f}, "
          f"hottest node forwarded {hottest} messages")
    print("\nThe library degrades gracefully: exact-but-large, or compact "
          "with measured stretch — and the simulator quantifies both.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
